#!/usr/bin/env python3
"""Static-analysis driver: simlint + (when installed) ruff and mypy.

``make analyze`` runs this.  The repo-specific simlint pass
(:mod:`tools.simlint`) always runs — it has no dependencies beyond the
standard library — and covers the full SIM001-SIM015 battery including
the whole-program engine.  ruff and mypy are development-environment
tools that may not be installed (the simulator itself needs nothing
outside the stdlib); when one is missing it is *skipped with a notice*
rather than failing, so ``make analyze`` is useful on a bare checkout.
CI passes ``--require ruff,mypy`` to turn those skips into failures —
the gate is only as good as the tools that actually ran.

The exit code aggregates across every stage: any stage that ran and
failed (or was required and missing) fails the driver, regardless of
what later stages report.

Usage::

    PYTHONPATH=src python tools/analyze.py            # all available tools
    PYTHONPATH=src python tools/analyze.py --only simlint
    PYTHONPATH=src python tools/analyze.py --require ruff,mypy \\
        --sarif simlint.sarif --github                # what CI runs
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.simlint import cli as simlint_cli  # noqa: E402

#: Modules mypy checks (the typed core; the harness layer is exempt).
MYPY_TARGETS = [
    "src/repro/mem",
    "src/repro/obs",
    "src/repro/analysis",
]

#: Paths ruff lints (same set as ``make lint``).
RUFF_TARGETS = ["src", "tests", "tools", "benchmarks"]


def run_simlint(args: argparse.Namespace) -> int:
    print("== simlint ==")
    argv = ["src/repro", "--jobs", str(args.jobs)]
    if args.sarif:
        argv += ["--sarif", args.sarif]
    if args.github:
        argv.append("--github")
    return simlint_cli.main(argv)


def _run_external(tool: str, argv: list[str], required: bool) -> int | None:
    """Run an optional external tool; ``None`` means skipped-and-allowed."""
    if shutil.which(tool) is None:
        if required:
            print(f"== {tool} == REQUIRED but not installed (pip install {tool})")
            return 1
        print(f"== {tool} == not installed, skipped (pip install {tool})")
        return None
    print(f"== {tool} ==")
    proc = subprocess.run([tool, *argv], cwd=REPO_ROOT)
    return proc.returncode


def run_ruff(args: argparse.Namespace) -> int | None:
    return _run_external("ruff", ["check", *RUFF_TARGETS], "ruff" in args.require)


def run_mypy(args: argparse.Namespace) -> int | None:
    return _run_external("mypy", MYPY_TARGETS, "mypy" in args.require)


TOOLS = {
    "simlint": run_simlint,
    "ruff": run_ruff,
    "mypy": run_mypy,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        choices=sorted(TOOLS),
        help="run a single tool instead of the full battery",
    )
    parser.add_argument(
        "--require",
        default="",
        metavar="TOOLS",
        help="comma-separated external tools that must be installed "
        "(CI passes ruff,mypy; missing ones then fail instead of skipping)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="simlint parse parallelism (default: 4)",
    )
    parser.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="write the simlint SARIF report to FILE",
    )
    parser.add_argument(
        "--github", action="store_true",
        help="emit GitHub ::error annotations for simlint findings",
    )
    args = parser.parse_args(argv)
    args.require = {t.strip() for t in args.require.split(",") if t.strip()}
    unknown = args.require - set(TOOLS)
    if unknown:
        parser.error(f"--require names unknown tools: {', '.join(sorted(unknown))}")

    names = [args.only] if args.only else list(TOOLS)
    failed: list[str] = []
    for name in names:
        status = TOOLS[name](args)
        if status is not None and status != 0:
            failed.append(name)
    if failed:
        print(f"analyze: FAIL ({', '.join(failed)})")
        return 1
    print("analyze: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
