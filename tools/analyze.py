#!/usr/bin/env python3
"""Static-analysis driver: simlint + (when installed) ruff and mypy.

``make analyze`` runs this.  The repo-specific simlint pass
(:mod:`tools.simlint`) always runs — it has no dependencies beyond the
standard library.  ruff and mypy are development-environment tools that
may not be installed (the simulator itself needs nothing outside the
stdlib); when one is missing it is *skipped with a notice* rather than
failing, so `make analyze` is useful both on a bare checkout and in CI
(where the workflow installs both and every tool really runs).

Exit status is non-zero iff any tool that actually ran reported
problems.  mypy is scoped to the strictly-typed subset
(``repro.mem``/``repro.obs``/``repro.analysis``); ruff covers the whole
tree with the pyproject configuration.

Usage::

    PYTHONPATH=src python tools/analyze.py          # all available tools
    PYTHONPATH=src python tools/analyze.py --only simlint
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.simlint import cli as simlint_cli  # noqa: E402

#: Modules mypy checks (the typed core; the harness layer is exempt).
MYPY_TARGETS = [
    "src/repro/mem",
    "src/repro/obs",
    "src/repro/analysis",
]

#: Paths ruff lints (same set as ``make lint``).
RUFF_TARGETS = ["src", "tests", "tools", "benchmarks"]


def run_simlint() -> int:
    print("== simlint ==")
    return simlint_cli.main(["src/repro"])


def _run_external(tool: str, argv: list[str]) -> int | None:
    """Run an optional external tool; ``None`` means it is not installed."""
    if shutil.which(tool) is None:
        print(f"== {tool} == not installed, skipped (pip install {tool})")
        return None
    print(f"== {tool} ==")
    proc = subprocess.run([tool, *argv], cwd=REPO_ROOT)
    return proc.returncode


def run_ruff() -> int | None:
    return _run_external("ruff", ["check", *RUFF_TARGETS])


def run_mypy() -> int | None:
    return _run_external("mypy", MYPY_TARGETS)


TOOLS = {
    "simlint": run_simlint,
    "ruff": run_ruff,
    "mypy": run_mypy,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        choices=sorted(TOOLS),
        help="run a single tool instead of the full battery",
    )
    args = parser.parse_args(argv)

    names = [args.only] if args.only else list(TOOLS)
    failed: list[str] = []
    for name in names:
        status = TOOLS[name]()
        if status is not None and status != 0:
            failed.append(name)
    if failed:
        print(f"analyze: FAIL ({', '.join(failed)})")
        return 1
    print("analyze: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
