#!/usr/bin/env python
"""tenants-smoke: the multi-tenant isolation gate behind ``make tenants-smoke``.

Runs the 2-tenant noisy-neighbor pack under DDIO, IDIO, and IOCA with
checked mode on (way-quota invariant armed), then asserts the property
the tenant tier exists to deliver: at the highest aggressor intensity
the victim's p99 must *improve under partitioning* — IOCA's per-tenant
way masks must beat the shared DDIO partition.  Exits nonzero (with the
full matrix) on any cell failure, invariant violation, or if the
isolation win ever disappears.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.policies import ddio, idio, ioca  # noqa: E402
from repro.tenants.sweep import run_tenants  # noqa: E402

INTENSITIES = (0.25, 2.0)


def main() -> int:
    summary = run_tenants(
        policies=[ddio(), idio(), ioca()],
        mix="noisy-neighbor",
        tenants=2,
        intensities=INTENSITIES,
        duration_us=150.0,
        jobs=2,
        checked=True,
    )
    print(summary.render())
    print(f"sweep fingerprint: {summary.fingerprint}")
    if summary.exit_code != 0:
        print(f"tenants-smoke: FAIL (sweep exit code {summary.exit_code})")
        return summary.exit_code
    top = max(INTENSITIES)
    ddio_p99 = summary.victim_p99("ddio", top)
    ioca_p99 = summary.victim_p99("ioca", top)
    if not (0 < ioca_p99 < ddio_p99):
        print(
            "tenants-smoke: FAIL (partitioning did not improve the victim: "
            f"ioca p99 {ioca_p99:.1f} us vs ddio p99 {ddio_p99:.1f} us "
            f"at intensity {top:g})"
        )
        return 1
    print(
        "tenants-smoke: OK (victim p99 under partitioning "
        f"{ioca_p99:.1f} us vs {ddio_p99:.1f} us shared, intensity {top:g})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
