#!/usr/bin/env python
"""serve-smoke: boot the ``repro serve`` daemon and prove warm-cache serving.

The CI gate behind ``make serve-smoke``:

1. start the daemon (``python -m repro.cache.serve``) on a fresh Unix
   socket with an empty cache directory;
2. submit a small sweep — every experiment must *miss* and be stored;
3. submit the identical sweep again — every experiment must be served
   from the warm cache (hit count == sweep size, zero misses) with
   fingerprints byte-identical to the first pass;
4. shut the daemon down and check it exits cleanly.

Exits nonzero (with a diagnostic) on any deviation.  Stdlib-only, like
the daemon itself.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.cache.serve import submit  # noqa: E402

#: A sweep that is tiny (sub-second cold) but exercises both policies.
SWEEP = {
    "op": "sweep",
    "experiments": [
        {"name": "smoke-ddio", "policy": "ddio", "ring": 128,
         "rate": 25.0, "duration_us": 150.0},
        {"name": "smoke-idio", "policy": "idio", "ring": 128,
         "rate": 25.0, "duration_us": 150.0},
    ],
}


def _wait_for_socket(socket_path: Path, proc, deadline_s: float = 30.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if proc.poll() is not None:
            raise SystemExit(f"daemon exited early with code {proc.returncode}")
        if socket_path.exists():
            try:
                submit(socket_path, {"op": "ping"}, timeout=5.0)
                return
            except OSError:
                pass
        time.sleep(0.05)
    raise SystemExit(f"daemon socket {socket_path} never came up")


def _terminal(lines, label):
    if not lines:
        raise SystemExit(f"{label}: daemon sent no response")
    last = lines[-1]
    if last.get("event") == "error":
        raise SystemExit(f"{label}: daemon error: {last.get('message')}")
    return last


def _fingerprints(lines):
    return {
        line["name"]: line["fingerprint"]
        for line in lines
        if line.get("event") == "result"
    }


def main() -> int:
    n = len(SWEEP["experiments"])
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        socket_path = Path(tmp) / "serve.sock"
        cache_dir = Path(tmp) / "cache"
        # ping + 2 sweeps + shutdown = 4 requests; --max-requests is the
        # backstop in case the shutdown line is lost.
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", str(socket_path),
             "--cache-dir", str(cache_dir),
             "--max-requests", "4"],
            cwd=str(REPO),
            env=env,
        )
        try:
            _wait_for_socket(socket_path, proc)

            cold = submit(socket_path, SWEEP)
            done = _terminal(cold, "cold sweep")
            if done.get("misses") != n or done.get("hits") != 0:
                raise SystemExit(
                    f"cold sweep should miss {n}/{n}, got {done}"
                )

            warm = submit(socket_path, SWEEP)
            done = _terminal(warm, "warm sweep")
            if done.get("hits") != n or done.get("misses") != 0:
                raise SystemExit(
                    f"warm sweep should be served from cache ({n} hits), "
                    f"got {done}"
                )
            if _fingerprints(warm) != _fingerprints(cold):
                raise SystemExit(
                    "warm fingerprints diverged from the cold run:\n"
                    f"  cold: {_fingerprints(cold)}\n"
                    f"  warm: {_fingerprints(warm)}"
                )

            bye = _terminal(submit(socket_path, {"op": "shutdown"}), "shutdown")
            if bye.get("event") != "bye":
                raise SystemExit(f"shutdown should answer bye, got {bye}")
            # "bye" is sent before the daemon tears down; give it a grace
            # period to exit on its own rather than racing a terminate().
            code = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=30)
        if code != 0:
            raise SystemExit(f"daemon exited with code {code}")
    print(f"serve-smoke OK: {n}/{n} experiments served from warm cache")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
