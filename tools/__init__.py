"""Developer tooling for the reproduction (not shipped with the package).

``tools.simlint`` is the repo-specific static-analysis pass wired into
``make analyze``; ``tools/bench.py`` is the benchmark harness and
``tools/analyze.py`` the driver that sequences ruff + simlint + mypy.
"""
