"""AST rule engine for simlint.

One :class:`_Checker` pass per file.  Every rule is scoped by the file's
dotted module name (derived from its path, or passed explicitly by
tests), so fixture snippets can masquerade as any module they like.

Suppression: append ``# simlint: disable=SIM003`` (comma-separated rule
ids, or ``all``) to the offending line.  The clean-tree guarantee of
``make analyze`` is that ``src/repro`` needs *no* suppressions.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple

#: rule id -> one-line description (shown by ``--list-rules``).
RULES: Dict[str, str] = {
    "SIM001": "wall-clock or host-time call in simulation code",
    "SIM002": "unseeded or module-global randomness in simulation code",
    "SIM003": "iteration over a set or id()-keyed mapping in simulation code",
    "SIM004": "hot-path class without __slots__ (or dataclass without slots=True)",
    "SIM005": "legacy memory-wrapper call; route through MemoryHierarchy.access()",
    "SIM006": "EventBus subscriber signature does not match the subscribed event type",
    "SIM007": "tick-vs-wall-time unit suffix mismatch (sim.units conventions)",
    "SIM008": "unguarded top-level numpy import; route through repro.mem._vec",
    "SIM009": "shared or module-level RNG in rack/fleet code; use seeded per-server streams",
    "SIM010": "cache write outside the atomic store helper (repro.cache)",
    "SIM016": "shared or module-level RNG in tenant code; use seeded per-tenant streams",
}

#: Packages whose modules count as simulation code (SIM001/002/003/007).
SIM_SCOPE = ("repro.sim", "repro.mem", "repro.core", "repro.nic", "repro.cpu", "repro.pcie")

#: Packages whose modules count as rack/fleet code (SIM009).  Fleet code
#: fans per-server work across processes, so any randomness must come
#: from a seeded per-server stream (``repro.rack.server_rng``) — shared
#: module-level RNG state silently decorrelates serial and sharded runs.
RACK_SCOPE = ("repro.rack",)

#: Packages whose modules count as tenant code (SIM016).  A tenant's
#: stochastic draws (traffic shapes, antagonist walks) must come from a
#: seeded per-tenant stream (``repro.tenants.tenant_rng``) so adding or
#: reordering tenants never perturbs another tenant's arrivals; shared
#: or module-level RNG state couples the tenants and breaks the
#: serial-vs-pool fingerprint guarantee.
TENANT_SCOPE = ("repro.tenants",)

#: Packages whose modules count as result-cache code (SIM010).  The
#: cache's correctness rests on readers never seeing a torn entry, so
#: every on-disk write must go through the one atomic helper (temp file
#: + same-directory ``os.replace``); any other write shape — ``open`` in
#: a write mode, ``Path.write_bytes``/``write_text``, a bare
#: ``os.replace`` — is a torn-write hazard.
CACHE_SCOPE = ("repro.cache",)

#: The one function allowed to write cache files (SIM010).
ATOMIC_WRITE_HELPER = "_atomic_write_bytes"

#: ``repro.sim.kernel`` owns the wall-seconds diagnostics (events/sec);
#: it is the one simulation module allowed to read the host clock.
WALLCLOCK_EXEMPT = {"repro.sim.kernel"}

#: Modules whose classes are on the per-transaction hot path (SIM004).
SLOTS_MODULES = {"repro.mem.line", "repro.mem.cache", "repro.sim.event", "repro.pcie.tlp"}

#: The one module allowed to import numpy at top level (inside its guard):
#: everything else branches on ``repro.mem._vec.HAVE_NUMPY`` so a missing
#: numpy can never break ``import repro`` (SIM008).
NUMPY_GATE_MODULES = {"repro.mem._vec"}

#: ``time`` module functions that read the host clock.
_TIME_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
}
#: ``datetime``/``date`` constructors that read the host clock.
_DATETIME_FUNCS = {"now", "utcnow", "today"}

#: Methods documented to return ``set`` objects (directory owner sets).
_SET_RETURNING_METHODS = {"owners"}
#: Attributes documented to hold ``set`` objects.
_SET_ATTRIBUTES = {"owners"}

#: The legacy per-kind wrappers on MemoryHierarchy (SIM005).  ``invalidate``
#: is only flagged when the receiver chain mentions a hierarchy, because the
#: name is too generic to flag on any object.
_LEGACY_WRAPPERS = {"cpu_access", "pcie_write", "pcie_read", "prefetch_fill"}

#: ``(module, wrapper name)`` pairs exempt from SIM005.  Deliberately
#: empty: every internal caller is routed through
#: ``MemoryHierarchy.access``; an entry here is a documented regression
#: that must carry a justification in the adding commit.
SIM005_ALLOWLIST: frozenset = frozenset()

#: ``sim.units`` helpers producing tick values vs converting ticks to
#: wall-time units (SIM007 suffix hygiene).
_TICK_PRODUCING = {
    "picoseconds", "nanoseconds", "microseconds", "milliseconds",
    "seconds", "cycles", "transfer_time",
}
_WALL_PRODUCING = {"to_nanoseconds", "to_microseconds", "to_milliseconds", "to_seconds"}
_WALL_SUFFIXES = ("_ns", "_us", "_ms")
_TICK_SUFFIXES = ("_ticks", "_tick")

_PRAGMA_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")


class Violation(NamedTuple):
    """One finding: where, which rule, and what is wrong."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package.

    Files outside a ``repro`` tree lint under their bare stem, which
    keeps them out of the simulation-scope rules by default.
    """
    parts = list(Path(path).parts)
    name = Path(path).stem
    if "repro" in parts:
        idx = parts.index("repro")
        dotted = [p for p in parts[idx:-1]] + ([] if name == "__init__" else [name])
        return ".".join(dotted)
    return name


def _in_sim_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".") for p in SIM_SCOPE)


def _in_rack_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".") for p in RACK_SCOPE)


def _in_tenant_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".") for p in TENANT_SCOPE)


def _in_cache_scope(module: str) -> bool:
    return any(module == p or module.startswith(p + ".") for p in CACHE_SCOPE)


def _suppressions(source: str) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(line)
        if m:
            rules = {r.strip().upper() for r in m.group(1).split(",") if r.strip()}
            out[lineno] = rules
    return out


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """First identifier of a Name/Attribute chain (``a.b.c`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _chain_names(node: ast.AST) -> List[str]:
    """All identifiers along a Name/Attribute chain."""
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    return names


class _Checker(ast.NodeVisitor):
    def __init__(self, module: str, path: str) -> None:
        self.module = module
        self.path = path
        self.violations: List[Violation] = []
        self.sim_scope = _in_sim_scope(module)
        self.rack_scope = _in_rack_scope(module)
        self.tenant_scope = _in_tenant_scope(module)
        self.cache_scope = _in_cache_scope(module)
        self.slots_scope = module in SLOTS_MODULES
        self.wallclock_exempt = module in WALLCLOCK_EXEMPT
        self.numpy_gate = module in NUMPY_GATE_MODULES
        #: >0 while inside a try: whose handlers catch an import failure.
        self._import_guard_depth = 0
        #: >0 while inside any function body (lazy imports are fine).
        self._function_depth = 0
        # import tracking (filled during the walk; imports precede uses
        # in any module that parses, except pathological late imports,
        # which still resolve because visit order is source order).
        self.time_aliases: Set[str] = set()
        self.time_func_names: Set[str] = set()  # from time import perf_counter
        self.random_aliases: Set[str] = set()
        self.random_func_names: Set[str] = set()  # from random import random, ...
        self.random_class_names: Set[str] = set()  # from random import Random
        self.datetime_aliases: Set[str] = set()
        self.units_func_names: Dict[str, str] = {}  # from ..sim.units import cycles
        #: Names of the functions currently being visited (innermost last);
        #: SIM010 exempts code lexically inside the atomic write helper.
        self._function_name_stack: List[str] = []
        # per-function set-typed local names (simple forward dataflow).
        self._set_name_stack: List[Set[str]] = [set()]
        self._class_stack: List[str] = []
        # module-level function table for SIM006 handler resolution.
        self.functions: Dict[str, Tuple[ast.AST, bool]] = {}

    # -- plumbing ------------------------------------------------------

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, node.lineno, node.col_offset, rule, message)
        )

    def _setish(self, node: ast.AST) -> bool:
        """True when ``node`` syntactically evaluates to a set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fname = _terminal_name(node.func)
            if isinstance(node.func, ast.Name) and fname in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) and fname in _SET_RETURNING_METHODS:
                return True
            return False
        if isinstance(node, ast.Attribute) and node.attr in _SET_ATTRIBUTES:
            return True
        if isinstance(node, ast.Name):
            return any(node.id in names for names in self._set_name_stack)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._setish(node.left) or self._setish(node.right)
        return False

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name in ("datetime",):
                self.datetime_aliases.add(bound)
            elif alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name.split(".")[0] == "numpy":
                self._check_numpy_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if mod.split(".")[0] == "numpy":
            self._check_numpy_import(node)
        for alias in node.names:
            bound = alias.asname or alias.name
            if mod == "time" and alias.name in _TIME_FUNCS:
                self.time_func_names.add(bound)
            elif mod == "datetime" and alias.name in ("datetime", "date"):
                self.datetime_aliases.add(bound)
            elif mod == "random":
                if alias.name == "Random":
                    self.random_class_names.add(bound)
                else:
                    self.random_func_names.add(bound)
            elif mod.endswith("units") and alias.name in (_TICK_PRODUCING | _WALL_PRODUCING):
                self.units_func_names[bound] = alias.name
        self.generic_visit(node)

    # -- SIM008: unguarded top-level numpy imports ---------------------

    def _check_numpy_import(self, node: ast.AST) -> None:
        if not self.sim_scope or self.numpy_gate:
            return
        if self._function_depth or self._import_guard_depth:
            return
        self._emit(
            node,
            "SIM008",
            "top-level numpy import outside repro.mem._vec; branch on "
            "_vec.HAVE_NUMPY so a numpy-free host still imports cleanly",
        )

    def visit_Try(self, node: ast.Try) -> None:
        guards = False
        for handler in node.handlers:
            t = handler.type
            names = (
                [_terminal_name(t)]
                if t is not None and not isinstance(t, ast.Tuple)
                else [_terminal_name(e) for e in t.elts]
                if isinstance(t, ast.Tuple)
                else [None]  # bare except
            )
            if any(
                n is None or n in ("ImportError", "ModuleNotFoundError", "Exception")
                for n in names
            ):
                guards = True
        if guards:
            self._import_guard_depth += 1
            for stmt in node.body:
                self.visit(stmt)
            self._import_guard_depth -= 1
            for part in (node.handlers, node.orelse, node.finalbody):
                for stmt in part:
                    self.visit(stmt)
        else:
            self.generic_visit(node)

    # -- SIM004: __slots__ on hot-path classes -------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        if self.slots_scope:
            self._check_slots(node)
        self.generic_visit(node)
        self._class_stack.pop()

    def _check_slots(self, node: ast.ClassDef) -> None:
        base_names = {_terminal_name(b) for b in node.bases}
        exempt_bases = {"NamedTuple", "Enum", "IntEnum", "Protocol", "TypedDict"}
        if base_names & exempt_bases:
            return
        if any(n and (n.endswith("Error") or n.endswith("Exception")) for n in base_names):
            return
        for deco in node.decorator_list:
            name = _terminal_name(deco.func if isinstance(deco, ast.Call) else deco)
            if name == "dataclass":
                if isinstance(deco, ast.Call):
                    for kw in deco.keywords:
                        if kw.arg == "slots" and isinstance(kw.value, ast.Constant):
                            if kw.value.value is True:
                                return
                self._emit(
                    node,
                    "SIM004",
                    f"hot-path dataclass {node.name!r} must pass slots=True",
                )
                return
        has_slots = any(
            isinstance(stmt, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            )
            for stmt in node.body
        )
        if not has_slots:
            self._emit(
                node, "SIM004", f"hot-path class {node.name!r} must define __slots__"
            )

    # -- function scopes (set-name dataflow + SIM006 tables) -----------

    def _visit_function(self, node) -> None:
        is_method = bool(self._class_stack)
        self.functions.setdefault(node.name, (node, is_method))
        self._set_name_stack.append(set())
        self._function_name_stack.append(node.name)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1
        self._function_name_stack.pop()
        self._set_name_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- assignments: set-name tracking + SIM007 -----------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            scope = self._set_name_stack[-1]
            if self._setish(node.value):
                scope.add(name)
            else:
                scope.discard(name)
        if self.sim_scope:
            for target in node.targets:
                self._check_unit_suffix(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and self.sim_scope:
            self._check_unit_suffix(node.target, node.value)
        self.generic_visit(node)

    def _units_kind(self, value: ast.AST) -> Optional[str]:
        """'tick' / 'wall' when ``value`` is a recognized units call."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = _terminal_name(func)
        if isinstance(func, ast.Attribute) and _root_name(func) == "units":
            if name in _TICK_PRODUCING:
                return "tick"
            if name in _WALL_PRODUCING:
                return "wall"
        if isinstance(func, ast.Name) and func.id in self.units_func_names:
            original = self.units_func_names[func.id]
            return "tick" if original in _TICK_PRODUCING else "wall"
        return None

    def _check_unit_suffix(self, target: ast.AST, value: ast.AST) -> None:
        name = _terminal_name(target)
        if name is None:
            return
        kind = self._units_kind(value)
        if kind == "tick" and name.endswith(_WALL_SUFFIXES):
            self._emit(
                value,
                "SIM007",
                f"{name!r} is wall-time-suffixed but assigned a tick value; "
                "name it *_ticks or convert with units.to_*()",
            )
        elif kind == "wall" and name.endswith(_TICK_SUFFIXES):
            self._emit(
                value,
                "SIM007",
                f"{name!r} is tick-suffixed but assigned a wall-time value; "
                "drop the conversion or rename",
            )

    def visit_keyword(self, node: ast.keyword) -> None:
        if self.sim_scope and node.arg is not None:
            kind = self._units_kind(node.value)
            if kind == "tick" and node.arg.endswith(_WALL_SUFFIXES):
                self._emit(
                    node.value,
                    "SIM007",
                    f"keyword {node.arg!r} is wall-time-suffixed but passed a tick value",
                )
            elif kind == "wall" and node.arg.endswith(_TICK_SUFFIXES):
                self._emit(
                    node.value,
                    "SIM007",
                    f"keyword {node.arg!r} is tick-suffixed but passed a wall-time value",
                )
        self.generic_visit(node)

    # -- SIM003: iteration over sets / id()-keyed mappings -------------

    def visit_For(self, node: ast.For) -> None:
        if self.sim_scope and self._setish(node.iter):
            self._emit(
                node.iter,
                "SIM003",
                "iteration over a set is order-nondeterministic across "
                "processes; iterate sorted(...) instead",
            )
        self.generic_visit(node)

    def _visit_comprehension_host(self, node) -> None:
        if self.sim_scope:
            for gen in node.generators:
                if self._setish(gen.iter):
                    self._emit(
                        gen.iter,
                        "SIM003",
                        "comprehension over a set is order-nondeterministic "
                        "across processes; iterate sorted(...) instead",
                    )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension_host
    visit_SetComp = _visit_comprehension_host
    visit_DictComp = _visit_comprehension_host
    visit_GeneratorExp = _visit_comprehension_host

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.sim_scope:
            sl = node.slice
            if (
                isinstance(sl, ast.Call)
                and isinstance(sl.func, ast.Name)
                and sl.func.id == "id"
            ):
                self._emit(
                    node,
                    "SIM003",
                    "id()-keyed mapping: key order and values vary across "
                    "processes; key by a stable field instead",
                )
        self.generic_visit(node)

    # -- calls: SIM001 / SIM002 / SIM005 / SIM006 ----------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = _terminal_name(func)

        if self.sim_scope and not self.wallclock_exempt:
            self._check_wallclock(node, func, name)
        if self.sim_scope:
            self._check_randomness(node, func, name)
        if self.rack_scope:
            self._check_rack_randomness(node, func, name)
        if self.tenant_scope:
            self._check_tenant_randomness(node, func, name)
        if self.cache_scope:
            self._check_cache_write(node, func, name)
        if self.module.startswith("repro.") and not self.module.startswith("repro.mem"):
            self._check_legacy_wrapper(node, func, name)
        if name == "subscribe" and isinstance(func, ast.Attribute) and len(node.args) == 2:
            self._check_subscriber(node)
        self.generic_visit(node)

    def _check_wallclock(self, node: ast.Call, func: ast.AST, name: Optional[str]) -> None:
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.time_aliases
            and name in _TIME_FUNCS
        ):
            self._emit(
                node,
                "SIM001",
                f"time.{name}() reads the host clock; simulation code must "
                "use the simulator's virtual clock (sim.now)",
            )
            return
        if isinstance(func, ast.Name) and func.id in self.time_func_names:
            self._emit(
                node,
                "SIM001",
                f"{func.id}() reads the host clock; simulation code must "
                "use the simulator's virtual clock (sim.now)",
            )
            return
        if (
            isinstance(func, ast.Attribute)
            and name in _DATETIME_FUNCS
            and _root_name(func) in self.datetime_aliases
        ):
            self._emit(
                node,
                "SIM001",
                f"datetime .{name}() reads the host clock; simulation code "
                "must use the simulator's virtual clock (sim.now)",
            )

    def _check_randomness(self, node: ast.Call, func: ast.AST, name: Optional[str]) -> None:
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.random_aliases
        ):
            if name == "Random":
                if not node.args and not node.keywords:
                    self._emit(
                        node,
                        "SIM002",
                        "random.Random() without a seed is nondeterministic; "
                        "pass an explicit seed",
                    )
            elif name == "SystemRandom":
                self._emit(node, "SIM002", "SystemRandom is inherently unseeded")
            else:
                self._emit(
                    node,
                    "SIM002",
                    f"module-global random.{name}() shares state across the "
                    "process; use an injected seeded random.Random instance",
                )
            return
        if isinstance(func, ast.Name):
            if func.id in self.random_func_names:
                self._emit(
                    node,
                    "SIM002",
                    f"module-global {func.id}() shares state across the "
                    "process; use an injected seeded random.Random instance",
                )
            elif func.id in self.random_class_names and not node.args and not node.keywords:
                self._emit(
                    node,
                    "SIM002",
                    "Random() without a seed is nondeterministic; pass an "
                    "explicit seed",
                )

    def _check_rack_randomness(
        self, node: ast.Call, func: ast.AST, name: Optional[str]
    ) -> None:
        """SIM009: fleet code must derive randomness per server, per seed.

        Three shapes are rejected: module-global ``random.*()`` calls
        (one shared stream for the whole rack), unseeded ``Random()``
        construction, and ``Random(seed)`` created at module level (a
        shared instance every server would consume from).  The blessed
        shape is a seeded ``Random`` built *inside* a function from a
        value mixed with the server index (``repro.rack.server_rng``).
        """
        advice = (
            "rack code must draw from a seeded per-server stream "
            "(see repro.rack.server_rng)"
        )
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.random_aliases
        ):
            if name == "Random":
                if not node.args and not node.keywords:
                    self._emit(
                        node, "SIM009", f"random.Random() without a seed; {advice}"
                    )
                elif self._function_depth == 0:
                    self._emit(
                        node,
                        "SIM009",
                        f"module-level random.Random(...) is one shared "
                        f"stream for every server; {advice}",
                    )
            elif name == "SystemRandom":
                self._emit(
                    node, "SIM009", f"SystemRandom is inherently unseeded; {advice}"
                )
            else:
                self._emit(
                    node,
                    "SIM009",
                    f"module-global random.{name}() shares one stream "
                    f"across the fleet; {advice}",
                )
            return
        if isinstance(func, ast.Name):
            if func.id in self.random_func_names:
                self._emit(
                    node,
                    "SIM009",
                    f"module-global {func.id}() shares one stream across "
                    f"the fleet; {advice}",
                )
            elif func.id in self.random_class_names:
                if not node.args and not node.keywords:
                    self._emit(
                        node, "SIM009", f"Random() without a seed; {advice}"
                    )
                elif self._function_depth == 0:
                    self._emit(
                        node,
                        "SIM009",
                        f"module-level Random(...) is one shared stream "
                        f"for every server; {advice}",
                    )

    def _check_tenant_randomness(
        self, node: ast.Call, func: ast.AST, name: Optional[str]
    ) -> None:
        """SIM016: tenant code must derive randomness per tenant, per seed.

        Mirrors SIM009 for the tenant tier: module-global ``random.*()``
        calls (one stream coupling every tenant), unseeded ``Random()``
        construction, and module-level ``Random(seed)`` (a shared
        instance every tenant would consume from) are all rejected.  The
        blessed shape is a seeded ``Random`` built *inside* a function
        from the sweep seed mixed with the tenant id
        (``repro.tenants.tenant_rng``).
        """
        advice = (
            "tenant code must draw from a seeded per-tenant stream "
            "(see repro.tenants.tenant_rng)"
        )
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.random_aliases
        ):
            if name == "Random":
                if not node.args and not node.keywords:
                    self._emit(
                        node, "SIM016", f"random.Random() without a seed; {advice}"
                    )
                elif self._function_depth == 0:
                    self._emit(
                        node,
                        "SIM016",
                        f"module-level random.Random(...) is one shared "
                        f"stream for every tenant; {advice}",
                    )
            elif name == "SystemRandom":
                self._emit(
                    node, "SIM016", f"SystemRandom is inherently unseeded; {advice}"
                )
            else:
                self._emit(
                    node,
                    "SIM016",
                    f"module-global random.{name}() couples every tenant's "
                    f"draws; {advice}",
                )
            return
        if isinstance(func, ast.Name):
            if func.id in self.random_func_names:
                self._emit(
                    node,
                    "SIM016",
                    f"module-global {func.id}() couples every tenant's "
                    f"draws; {advice}",
                )
            elif func.id in self.random_class_names:
                if not node.args and not node.keywords:
                    self._emit(
                        node, "SIM016", f"Random() without a seed; {advice}"
                    )
                elif self._function_depth == 0:
                    self._emit(
                        node,
                        "SIM016",
                        f"module-level Random(...) is one shared stream "
                        f"for every tenant; {advice}",
                    )

    def _check_cache_write(
        self, node: ast.Call, func: ast.AST, name: Optional[str]
    ) -> None:
        """SIM010: cache entries must be written via the atomic helper.

        Readers of the result cache validate entries at load time and
        treat any torn or partial file as corruption; the only write
        shape that can never be observed torn is a same-directory temp
        file renamed into place, which is exactly what
        ``repro.cache.store._atomic_write_bytes`` does.  Inside the
        cache package, every other write shape is flagged: ``open`` (or
        ``os.fdopen`` / ``Path.open``) in a write mode,
        ``Path.write_bytes`` / ``Path.write_text``, and bare
        ``os.replace`` / ``os.rename`` (a hand-rolled rename protocol).
        Read-mode opens and ``os.unlink`` (eviction) stay legal.
        """
        if ATOMIC_WRITE_HELPER in self._function_name_stack:
            return
        advice = (
            f"route cache writes through {ATOMIC_WRITE_HELPER} "
            "(temp file + same-directory os.replace)"
        )

        def mode_node(pos: int) -> Optional[ast.AST]:
            if len(node.args) > pos:
                return node.args[pos]
            for kw in node.keywords:
                if kw.arg == "mode":
                    return kw.value
            return None

        def write_mode(arg: Optional[ast.AST]) -> bool:
            return (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and any(ch in arg.value for ch in "wax+")
            )

        if isinstance(func, ast.Name):
            if func.id == "open" and write_mode(mode_node(1)):
                self._emit(
                    node, "SIM010", f"open() in a write mode; {advice}"
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        if name in ("write_bytes", "write_text"):
            self._emit(
                node,
                "SIM010",
                f".{name}() writes a cache file non-atomically; {advice}",
            )
        elif name == "open" and write_mode(mode_node(0)):
            self._emit(node, "SIM010", f".open() in a write mode; {advice}")
        elif name == "fdopen" and write_mode(mode_node(1)):
            self._emit(
                node, "SIM010", f"os.fdopen() in a write mode; {advice}"
            )
        elif (
            name in ("replace", "rename")
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        ):
            self._emit(
                node,
                "SIM010",
                f"os.{name}() outside the helper is a hand-rolled "
                f"rename protocol; {advice}",
            )

    def _check_legacy_wrapper(self, node: ast.Call, func: ast.AST, name: Optional[str]) -> None:
        if not isinstance(func, ast.Attribute):
            return
        if (self.module, name) in SIM005_ALLOWLIST:
            return
        if name in _LEGACY_WRAPPERS:
            self._emit(
                node,
                "SIM005",
                f"legacy wrapper .{name}(); build a MemoryTransaction and "
                "call MemoryHierarchy.access() so typed subscribers see it",
            )
        elif name == "invalidate" and "hierarchy" in _chain_names(func.value):
            self._emit(
                node,
                "SIM005",
                "legacy wrapper .invalidate(); build an INVALIDATE "
                "MemoryTransaction and call MemoryHierarchy.access()",
            )

    def _check_subscriber(self, node: ast.Call) -> None:
        event_arg, handler_arg = node.args
        event_name = _terminal_name(event_arg)
        if event_name is None:
            return
        if isinstance(handler_arg, ast.Lambda):
            self._check_handler_params(node, handler_arg.args, False, event_name, "<lambda>")
            return
        handler_name = _terminal_name(handler_arg)
        if handler_name is None or handler_name not in self.functions:
            return  # dynamic / cross-module handler: not resolvable here
        fn, is_method = self.functions[handler_name]
        self._check_handler_params(node, fn.args, is_method, event_name, handler_name)

    def _check_handler_params(
        self,
        node: ast.Call,
        args: ast.arguments,
        is_method: bool,
        event_name: str,
        handler_name: str,
    ) -> None:
        params = list(args.args)
        if is_method and params and params[0].arg in ("self", "cls"):
            params = params[1:]
        required = len(params) - len(args.defaults)
        if args.vararg is None and required != 1:
            self._emit(
                node,
                "SIM006",
                f"handler {handler_name!r} takes {required} required "
                f"argument(s); bus handlers receive exactly one event",
            )
            return
        if params:
            ann = params[0].annotation
            ann_name = None
            if isinstance(ann, (ast.Name, ast.Attribute)):
                ann_name = _terminal_name(ann)
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                ann_name = ann.value.split(".")[-1].strip()
            if ann_name is not None and ann_name != event_name:
                self._emit(
                    node,
                    "SIM006",
                    f"handler {handler_name!r} annotates its event as "
                    f"{ann_name!r} but subscribes to {event_name!r}",
                )


def lint_source(
    source: str, module: str, path: str = "<string>"
) -> List[Violation]:
    """Lint one module's source under the rules for ``module``."""
    tree = ast.parse(source, filename=path)
    return lint_tree(tree, source, module, path)


def lint_tree(
    tree: ast.Module, source: str, module: str, path: str = "<string>"
) -> List[Violation]:
    """Lint an already-parsed module (the shared-AST entry point).

    The whole-program driver (:func:`tools.simlint.lint_project`) parses
    every file exactly once through the engine's cached parser and hands
    the same tree to the per-file rule pack here and to the
    cross-module passes — no rule re-parses.
    """
    checker = _Checker(module, path)
    # Pre-pass: record every function definition so subscribe() calls that
    # lexically precede their handler's def still resolve.
    for n in ast.walk(tree):
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)):
            checker.functions.setdefault(n.name, (n, _is_method(tree, n)))
    checker.visit(tree)
    suppressed = _suppressions(source)
    out = []
    for v in checker.violations:
        rules = suppressed.get(v.line, set())
        if "ALL" in rules or v.rule in rules:
            continue
        out.append(v)
    out.sort(key=lambda v: (v.line, v.col, v.rule))
    return out


def _is_method(tree: ast.Module, fn: ast.AST) -> bool:
    for n in ast.walk(tree):
        if isinstance(n, ast.ClassDef) and fn in n.body:
            return True
    return False


_FIXTURE_RE = re.compile(r"^#\s*simlint-fixture-module:\s*(\S+)")


def lint_file(path: str, module: Optional[str] = None) -> List[Violation]:
    """Lint one file; the module name is derived from the path by default.

    A leading ``# simlint-fixture-module: <dotted.name>`` comment
    overrides the derived name, so the self-test fixtures lint under the
    module they masquerade as from the CLI too.
    """
    source = Path(path).read_text()
    if module is None:
        m = _FIXTURE_RE.match(source)
        module = m.group(1) if m else module_name_for(path)
    return lint_source(source, module, path)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for p in paths:
        path = Path(p)
        if path.is_dir():
            yield from (str(f) for f in sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            yield str(path)


def lint_paths(paths: Sequence[str]) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path))
    return violations
