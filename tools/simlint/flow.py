"""Taint-style dataflow: provenance tracking for determinism (SIM011).

The reproduction's correctness story rests on byte-identical
determinism: serial, warm-pool, rack-sharded, and cache-hit runs of the
same seeded experiment must produce equal fingerprints.  The per-file
rules forbid *calling* wall-clock and unseeded-RNG functions inside
simulation modules, but they cannot see a nondeterministic value flowing
*through* a helper into fingerprint-relevant state — which is exactly
how such bugs arrive in practice.

This pass tracks three taint kinds from their sources::

    wallclock   time.time()/perf_counter()/datetime.now()/...
    rng         module-global random.*(), unseeded Random(),
                SystemRandom(), os.urandom(), uuid.uuid4(), secrets.*
    unordered   iteration order of a set/frozenset (hash-randomized
                across processes; ``sorted(...)`` launders it)

through assignments, expressions, and **function and module boundaries**
(summaries over the project call graph, iterated to a fixpoint), into
the sinks that feed the determinism fingerprint:

* ``ExperimentSummary(...)`` construction — except the documented
  wall-clock diagnostic fields (:data:`SUMMARY_FIELD_ALLOWLIST`), which
  the fingerprint deliberately excludes;
* ``fingerprint_digest(...)`` / ``config_digest(...)`` arguments;
* ``<cache>.put(...)`` stores in modules that use ``repro.cache``;
* the return value of any function named ``fingerprint``.

A hit means: a value whose bits can differ between two runs of the same
config reaches state two runs are promised to agree on — SIM011.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import FunctionInfo, Project, dotted_chain
from .rules import _DATETIME_FUNCS, _TIME_FUNCS, WALLCLOCK_EXEMPT, Violation

#: Taint kinds (the concrete strings used as labels).
WALLCLOCK = "wallclock"
RNG = "rng"
UNORDERED = "unordered"

#: ``ExperimentSummary`` fields that are wall-clock diagnostics *by
#: design*: the fingerprint excludes them (see ``ExperimentSummary.
#: fingerprint``), so host-time taint reaching them is not a hazard.
#: ``status``/``attempts`` are runner bookkeeping, mutated on retries
#: and cache hits, likewise excluded from the fingerprint.
SUMMARY_FIELD_ALLOWLIST = frozenset(
    {"wall_seconds", "events_per_second", "status", "attempts"}
)

#: Functions whose arguments feed a determinism digest directly.
DIGEST_SINK_FUNCS = frozenset({"fingerprint_digest", "config_digest"})

#: The result-cache package: modules importing these names get their
#: two-argument ``.put(...)`` calls treated as cache-store sinks.
_CACHE_MARKER_IMPORTS = ("repro.cache", "repro.cache.store")

_KINDS = frozenset({WALLCLOCK, RNG, UNORDERED})

_KIND_DESCRIPTIONS = {
    WALLCLOCK: "host wall-clock time",
    RNG: "unseeded randomness",
    UNORDERED: "unordered-collection iteration order",
}

Label = object  # a kind string, or ("param", index)


@dataclass
class FunctionSummary:
    """What one function does with taint, seen from its call sites."""

    #: Labels reaching a ``return`` (kinds given clean args; ``("param",
    #: i)`` when argument ``i`` flows to the return value).
    returns: Set = field(default_factory=set)
    #: Parameter indices whose value reaches a sink inside this function
    #: (possibly through further calls), mapped to the sink description.
    param_sinks: Dict[int, str] = field(default_factory=dict)

    def copy(self) -> "FunctionSummary":
        return FunctionSummary(set(self.returns), dict(self.param_sinks))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionSummary)
            and self.returns == other.returns
            and self.param_sinks == other.param_sinks
        )


class TaintPass:
    """Project-wide taint propagation and SIM011 sink checking."""

    def __init__(self, project: Project):
        self.project = project
        self.summaries: Dict[Tuple[str, str], FunctionSummary] = {}
        self.violations: List[Violation] = []

    # -- public entry --------------------------------------------------

    def run(self) -> List[Violation]:
        """Fixpoint the summaries, then report sink hits."""
        functions = [
            (module, qual, fn)
            for module, facts in sorted(self.project.modules.items())
            for qual, fn in sorted(facts.functions.items())
        ]
        for module, qual, _ in functions:
            self.summaries[(module, qual)] = FunctionSummary()
        for _ in range(10):  # bounded fixpoint over the call graph
            changed = False
            for module, qual, fn in functions:
                summary = self._analyze(module, qual, fn, report=False)
                if summary != self.summaries[(module, qual)]:
                    self.summaries[(module, qual)] = summary
                    changed = True
            if not changed:
                break
        self.violations = []
        for module, qual, fn in functions:
            self._analyze(module, qual, fn, report=True)
        for module, facts in sorted(self.project.modules.items()):
            self._analyze_module_level(module, facts.file.tree)
        # The body is walked twice per function (loop-carried taint), so
        # each finding is seen twice; dedupe before presenting.
        self.violations = sorted(
            set(self.violations), key=lambda v: (v.path, v.line, v.col, v.message)
        )
        return self.violations

    # -- analysis of one function --------------------------------------

    def _analyze(
        self, module: str, qual: str, fn: FunctionInfo, report: bool
    ) -> FunctionSummary:
        analyzer = _BodyAnalyzer(self, module, qual, fn, report)
        return analyzer.run()

    def _analyze_module_level(self, module: str, tree: ast.Module) -> None:
        analyzer = _BodyAnalyzer(self, module, "<module>", None, report=True)
        analyzer.run_statements(tree.body)

    # -- shared lookups ------------------------------------------------

    def dotted_origin(self, module: str, chain: Sequence[str]) -> str:
        """Textual absolute name for a chain, through the import table."""
        facts = self.project.modules.get(module)
        head = chain[0]
        if facts is not None and head in facts.imports:
            return ".".join([facts.imports[head]] + list(chain[1:]))
        return ".".join(chain)

    def module_uses_cache(self, module: str) -> bool:
        facts = self.project.modules.get(module)
        if facts is None:
            return False
        return any(
            origin.startswith(_CACHE_MARKER_IMPORTS)
            for origin in facts.imports.values()
        )


def _is_setish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _BodyAnalyzer:
    """One pass over one function body (or the module level)."""

    def __init__(
        self,
        owner: TaintPass,
        module: str,
        qual: str,
        fn: Optional[FunctionInfo],
        report: bool,
    ):
        self.owner = owner
        self.project = owner.project
        self.module = module
        self.qual = qual
        self.fn = fn
        self.report = report
        self.cls_name = qual.split(".")[0] if "." in qual else None
        self.path = self.project.modules[module].file.path
        self.env: Dict[str, Set] = {}
        self.summary = FunctionSummary()
        self.wallclock_exempt = module in WALLCLOCK_EXEMPT

    # -- driver --------------------------------------------------------

    def run(self) -> FunctionSummary:
        assert self.fn is not None
        node = self.fn.node
        params = [a.arg for a in node.args.posonlyargs + node.args.args]
        if self.fn.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
            offset = 1
        else:
            offset = 0
        for i, name in enumerate(params):
            self.env[name] = {("param", i)}
        self._offset = offset
        # Two passes over the body approximate loop-carried taint.
        self.run_statements(node.body)
        self.run_statements(node.body)
        return self.summary

    def run_statements(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    # -- statements ----------------------------------------------------

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            labels = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env[stmt.target.id] = self.env.get(stmt.target.id, set()) | labels
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                labels = self._eval(stmt.value)
                self.summary.returns |= labels
                if self.report and self.qual.split(".")[-1] == "fingerprint":
                    self._report_kinds(
                        stmt,
                        labels,
                        "the return value of fingerprint()",
                    )
        elif isinstance(stmt, ast.For):
            labels = self._eval(stmt.iter)
            if _is_setish(stmt.iter):
                labels = labels | {UNORDERED}
            self._bind(stmt.target, labels)
            self.run_statements(stmt.body)
            self.run_statements(stmt.orelse)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self.run_statements(stmt.body)
            self.run_statements(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            self.run_statements(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.run_statements(stmt.body)
            for handler in stmt.handlers:
                self.run_statements(handler.body)
            self.run_statements(stmt.orelse)
            self.run_statements(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)

    def _bind(self, target: ast.AST, labels: Set) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, labels)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)
        # attribute/subscript stores drop out of the local env on purpose

    # -- expressions ---------------------------------------------------

    def _eval(self, node: Optional[ast.AST]) -> Set:
        if node is None or isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.Lambda):
            return set()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            out: Set = set()
            for gen in node.generators:
                labels = self._eval(gen.iter)
                if _is_setish(gen.iter):
                    labels = labels | {UNORDERED}
                self._bind(gen.target, labels)
                out |= labels
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    out |= self._eval(child)
            return out
        out = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self._eval(child)
        return out

    def _eval_call(self, call: ast.Call) -> Set:
        arg_labels = [self._eval(a) for a in call.args]
        kw_labels = {kw.arg: self._eval(kw.value) for kw in call.keywords}
        all_labels: Set = set()
        for labels in arg_labels:
            all_labels |= labels
        for labels in kw_labels.values():
            all_labels |= labels
        # A method call on a tainted receiver yields a tainted result
        # (``os.urandom(8).hex()``, ``wallclock_value.as_integer_ratio()``).
        if isinstance(call.func, ast.Attribute):
            all_labels |= self._eval(call.func.value)

        # sorted() launders iteration-order nondeterminism.
        if isinstance(call.func, ast.Name) and call.func.id == "sorted":
            return all_labels - {UNORDERED}

        source = self._source_kind(call)
        if source is not None:
            return all_labels | {source}

        self._check_sinks(call, arg_labels, kw_labels)

        target = self.project.resolve_call(self.module, call, self.cls_name)
        if target is not None and target in self.owner.summaries:
            summary = self.owner.summaries[target]
            out = set()
            for label in summary.returns:
                if label in _KINDS:
                    out.add(label)
                elif isinstance(label, tuple) and label[0] == "param":
                    index = label[1]
                    out |= self._labels_for_param(index, arg_labels, kw_labels, target)
            if self.report:
                for index, sink in sorted(summary.param_sinks.items()):
                    labels = self._labels_for_param(
                        index, arg_labels, kw_labels, target
                    )
                    self._report_kinds(call, labels, sink, via=target)
                    for label in labels:
                        if isinstance(label, tuple) and label[0] == "param":
                            self.summary.param_sinks.setdefault(label[1], sink)
            else:
                for index, sink in summary.param_sinks.items():
                    for label in self._labels_for_param(
                        index, arg_labels, kw_labels, target
                    ):
                        if isinstance(label, tuple) and label[0] == "param":
                            self.summary.param_sinks.setdefault(label[1], sink)
            return out
        # Unresolved call: conservative pass-through of argument taint.
        return all_labels

    def _labels_for_param(
        self,
        index: int,
        arg_labels: List[Set],
        kw_labels: Dict[Optional[str], Set],
        target: Tuple[str, str],
    ) -> Set:
        if index < len(arg_labels):
            return arg_labels[index]
        # keyword-passed: match by parameter name on the callee.
        mod, qual = target
        fn = self.project.modules[mod].functions.get(qual)
        if fn is None:
            return set()
        node = fn.node
        params = [a.arg for a in node.args.posonlyargs + node.args.args]
        if fn.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        if index < len(params):
            return kw_labels.get(params[index], set())
        return set()

    # -- taint sources -------------------------------------------------

    def _source_kind(self, call: ast.Call) -> Optional[str]:
        chain = dotted_chain(call.func)
        if chain is None:
            return None
        origin = self.owner.dotted_origin(self.module, chain)
        parts = origin.split(".")
        root, terminal = parts[0], parts[-1]
        if not self.wallclock_exempt:
            if root == "time" and terminal in _TIME_FUNCS:
                return WALLCLOCK
            if root == "datetime" and terminal in _DATETIME_FUNCS:
                return WALLCLOCK
        if origin == "os.urandom" or origin == "uuid.uuid4" or root == "secrets":
            return RNG
        if root == "random":
            if terminal == "Random":
                return None if (call.args or call.keywords) else RNG
            if terminal == "SystemRandom":
                return RNG
            if len(parts) == 2:  # module-global random.random()/randint()/...
                return RNG
        return None

    # -- sinks ---------------------------------------------------------

    def _check_sinks(
        self,
        call: ast.Call,
        arg_labels: List[Set],
        kw_labels: Dict[Optional[str], Set],
    ) -> None:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr

        if name == "ExperimentSummary":
            for labels in arg_labels:
                self._sink_hit(call, labels, "an ExperimentSummary field")
            for kw, labels in kw_labels.items():
                if kw in SUMMARY_FIELD_ALLOWLIST:
                    continue
                self._sink_hit(
                    call, labels, f"ExperimentSummary field {kw!r}"
                )
        elif name in DIGEST_SINK_FUNCS:
            for labels in list(arg_labels) + list(kw_labels.values()):
                self._sink_hit(call, labels, f"a {name}() argument")
        elif (
            name == "put"
            and isinstance(func, ast.Attribute)
            and len(call.args) + len(call.keywords) >= 2
            and self.owner.module_uses_cache(self.module)
        ):
            for labels in list(arg_labels) + list(kw_labels.values()):
                self._sink_hit(call, labels, "a result-cache .put() payload")

    def _sink_hit(self, node: ast.AST, labels: Set, sink: str) -> None:
        self._report_kinds(node, labels, sink)
        for label in labels:
            if isinstance(label, tuple) and label[0] == "param":
                self.summary.param_sinks.setdefault(label[1], sink)

    def _report_kinds(
        self,
        node: ast.AST,
        labels: Set,
        sink: str,
        via: Optional[Tuple[str, str]] = None,
    ) -> None:
        if not self.report:
            return
        kinds = sorted(label for label in labels if label in _KINDS)
        if not kinds:
            return
        route = f" via {via[0]}.{via[1]}()" if via is not None else ""
        what = " and ".join(_KIND_DESCRIPTIONS[k] for k in kinds)
        self.owner.violations.append(
            Violation(
                self.path,
                node.lineno,
                node.col_offset,
                "SIM011",
                f"{what} reaches {sink}{route}; fingerprint-relevant state "
                "must be a pure function of the seeded config",
            )
        )


def check_taint(project: Project) -> List[Violation]:
    """Run the whole-program taint pass; returns SIM011 violations."""
    return TaintPass(project).run()
