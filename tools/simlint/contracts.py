"""Cross-module contract rules SIM012-SIM015.

Each rule here needs the whole-program model (:class:`~tools.simlint.
engine.Project`): the hazards they catch are invisible to any single
file.

SIM012 — bus wiring: every event type constructed into ``.publish(...)``
(or pre-cached via ``.live(T)``) must have a typed ``.subscribe(T, ...)``
somewhere in the project, and every subscription must have a publisher.
A mismatch is dead observability wiring: a recorder that silently sees
nothing, or events paid for that nobody consumes.  Cross-module handler
signatures are also checked (the per-file SIM006 stops at module scope).

SIM013 — digest coverage: the result cache keys entries by walking the
whole ``Experiment`` (``cache/digest.py``) into a canonical tuple.  A
config field whose type that walk cannot canonicalize makes experiments
silently uncacheable — or worse, a field excluded from the walk would
let two *different* configs share a cache entry (a stale-hit bug).  Every
field of the config dataclasses must therefore have a provably
canonicalizable annotation, and every ``ExperimentSummary`` field must be
read by ``fingerprint()`` or be an explicitly allowlisted diagnostic.

SIM014 — facade drift: ``repro/__init__`` and ``repro.api`` must export
the same ``__all__``, every exported name must be bound in ``api.py``
and re-imported from it, every name must appear in ``docs/api.md``, and
the facade must carry no deprecated wrappers.

SIM015 — worker-path hygiene: functions reachable from a process-pool
entry point (initializer / mapped / applied) run in worker processes;
module globals they mutate are per-process copies.  The repo convention
is that such state is ``_worker*``-prefixed (documented process-local);
mutating anything else from a worker path is a shared-state illusion.
On-disk writes on concurrent paths must stage + ``os.replace`` in the
same function (the atomic idiom) so a reader can never observe a torn
file.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .engine import ClassInfo, Project, dotted_chain
from .rules import Violation

#: rule id -> one-line description (merged into ``--list-rules``).
PROGRAM_RULES: Dict[str, str] = {
    "SIM011": "nondeterministic taint reaches fingerprint-relevant state",
    "SIM012": "bus event published without a subscriber, or vice versa",
    "SIM013": "config/summary field invisible to the cache digest or fingerprint",
    "SIM014": "repro.api facade drift (exports, docs, deprecated wrappers)",
    "SIM015": "worker-path mutation of shared module state or non-atomic write",
}

# ----------------------------------------------------------------------
# SIM012: bus pub/sub contract
# ----------------------------------------------------------------------


def _event_class_of(
    project: Project, module: str, node: ast.AST
) -> Optional[Tuple[str, str]]:
    """Resolve an expression naming (or constructing) a project class."""
    if isinstance(node, ast.Call):
        node = node.func
    chain = dotted_chain(node)
    if chain is None:
        return None
    resolved = project.resolve(module, chain)
    if resolved is None:
        return None
    mod, symbol = resolved
    if symbol in project.modules[mod].classes:
        return (mod, symbol)
    return None


def check_bus_contracts(project: Project) -> List[Violation]:
    publishers: Dict[Tuple[str, str], List[Tuple[str, ast.AST]]] = {}
    subscribers: Dict[Tuple[str, str], List[Tuple[str, ast.AST]]] = {}
    violations: List[Violation] = []

    for module, facts in sorted(project.modules.items()):
        path = facts.file.path
        for node in ast.walk(facts.file.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            if method == "publish" and len(node.args) == 1:
                event = _event_class_of(project, module, node.args[0])
                if event is not None:
                    publishers.setdefault(event, []).append((path, node))
            elif method == "live" and len(node.args) == 1:
                # live(T) is the hot-path publish shape: the caller caches
                # the subscriber list and fans events into it directly.
                event = _event_class_of(project, module, node.args[0])
                if event is not None:
                    publishers.setdefault(event, []).append((path, node))
            elif method == "subscribe" and len(node.args) == 2:
                event = _event_class_of(project, module, node.args[0])
                if event is not None:
                    subscribers.setdefault(event, []).append((path, node))
                    violations.extend(
                        _check_cross_module_handler(
                            project, module, path, node, event
                        )
                    )

    for event, sites in sorted(publishers.items()):
        if event in subscribers:
            continue
        for path, node in sites:
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "SIM012",
                    f"{event[1]} is published here but no typed subscriber "
                    "exists anywhere in the project (dead obs wiring)",
                )
            )
    for event, sites in sorted(subscribers.items()):
        if event in publishers:
            continue
        for path, node in sites:
            violations.append(
                Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "SIM012",
                    f"subscribed to {event[1]} but nothing in the project "
                    "publishes it (dead obs wiring)",
                )
            )
    return violations


def _check_cross_module_handler(
    project: Project,
    module: str,
    path: str,
    node: ast.Call,
    event: Tuple[str, str],
) -> List[Violation]:
    """Signature-check a handler imported from another module.

    Handlers defined in the subscribing module (including methods) are
    the per-file SIM006's job; this covers the one shape it cannot see.
    """
    handler = node.args[1]
    if not isinstance(handler, ast.Name):
        return []
    facts = project.modules[module]
    if handler.id in facts.functions:
        return []  # local: SIM006 territory
    found = project.find_function(module, handler.id)
    if found is None:
        return []
    mod, info = found
    if mod == module:
        return []
    fn = info.node
    params = list(fn.args.posonlyargs) + list(fn.args.args)
    if info.is_method and params and params[0].arg in ("self", "cls"):
        params = params[1:]
    required = len(params) - len(fn.args.defaults)
    if fn.args.vararg is None and required != 1:
        return [
            Violation(
                path,
                node.lineno,
                node.col_offset,
                "SIM012",
                f"handler {handler.id!r} (from {mod}) takes {required} "
                "required argument(s); bus handlers receive exactly one event",
            )
        ]
    if params:
        ann = params[0].annotation
        ann_name = None
        if isinstance(ann, (ast.Name, ast.Attribute)):
            ann_name = ann.attr if isinstance(ann, ast.Attribute) else ann.id
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            ann_name = ann.value.split(".")[-1].strip()
        if ann_name is not None and ann_name != event[1]:
            return [
                Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "SIM012",
                    f"handler {handler.id!r} (from {mod}) annotates its "
                    f"event as {ann_name!r} but subscribes to {event[1]!r}",
                )
            ]
    return []


# ----------------------------------------------------------------------
# SIM013: digest / fingerprint coverage
# ----------------------------------------------------------------------

#: Config dataclasses whose every field must survive the canonical walk.
DIGEST_ROOT_CLASSES = ("Experiment", "ServerConfig", "RackConfig")

#: ``(class name, field name)`` pairs deliberately excluded from digest
#: coverage.  Empty on purpose: an entry here is a documented decision
#: that two configs differing only in that field may share a cache
#: entry, and must carry a justification in the adding commit.
DIGEST_IRRELEVANT: frozenset = frozenset()

#: Annotation heads the canonical walk handles structurally.
_CANONICAL_PRIMITIVES = {"int", "float", "str", "bool", "bytes", "None"}
_CANONICAL_CONTAINERS = {"Optional", "List", "Dict", "Tuple", "Sequence", "Mapping", "list", "dict", "tuple"}
_UNCANONICAL_HEADS = {"Set", "FrozenSet", "set", "frozenset", "Callable", "Any"}

#: ``ExperimentSummary`` fields ``fingerprint()`` deliberately excludes:
#: the experiment itself (it *keys* the comparison), the wall-clock
#: diagnostics, and the sweep-runner bookkeeping mutated on retries.
FINGERPRINT_EXEMPT_FIELDS = frozenset(
    {"experiment", "wall_seconds", "events_per_second", "status", "attempts"}
)


def _annotation_problem(
    project: Project,
    module: str,
    node: Optional[ast.AST],
    seen: Set[Tuple[str, str]],
) -> Optional[str]:
    """Why this annotation defeats ``canonical()`` (None = provably fine)."""
    if node is None:
        return "missing annotation"
    if isinstance(node, ast.Constant):
        if node.value is None:
            return None
        if isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return f"unparsable string annotation {node.value!r}"
            return _annotation_problem(project, module, node, seen)
        return f"unsupported annotation {ast.dump(node)}"
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.attr if isinstance(head, ast.Attribute) else (
            head.id if isinstance(head, ast.Name) else None
        )
        if head_name in _UNCANONICAL_HEADS:
            return f"{head_name}[...] cannot be canonicalized (unordered or opaque)"
        if head_name in _CANONICAL_CONTAINERS:
            elts = (
                node.slice.elts
                if isinstance(node.slice, ast.Tuple)
                else [node.slice]
            )
            for elt in elts:
                if isinstance(elt, ast.Constant) and elt.value is Ellipsis:
                    continue
                problem = _annotation_problem(project, module, elt, seen)
                if problem is not None:
                    return problem
            return None
        return f"unrecognized container {head_name!r}"
    chain = dotted_chain(node)
    if chain is None:
        return f"unsupported annotation shape {type(node).__name__}"
    name = chain[-1]
    if name in _CANONICAL_PRIMITIVES:
        return None
    if name in _UNCANONICAL_HEADS:
        return f"{name} cannot be canonicalized (unordered or opaque)"
    resolved = project.resolve(module, chain)
    if resolved is None:
        return f"type {'.'.join(chain)!r} is not resolvable in the project"
    mod, symbol = resolved
    info = project.modules[mod].classes.get(symbol)
    if info is None:
        return f"type {'.'.join(chain)!r} is not a class the project defines"
    if not info.is_dataclass:
        return (
            f"{info.name} is not a dataclass; canonical() raises TypeError "
            "on it (experiment becomes uncacheable)"
        )
    key = (mod, symbol)
    if key in seen:
        return None  # already checked (or being checked) elsewhere
    seen.add(key)
    for field_name, ann in info.fields:
        if (info.name, field_name) in DIGEST_IRRELEVANT:
            continue
        problem = _annotation_problem(project, mod, ann, seen)
        if problem is not None:
            return f"field {info.name}.{field_name}: {problem}"
    return None


def check_digest_coverage(project: Project) -> List[Violation]:
    violations: List[Violation] = []
    seen: Set[Tuple[str, str]] = set()
    for root in DIGEST_ROOT_CLASSES:
        for mod, info in project.classes_named(root):
            if not info.is_dataclass:
                continue
            seen.add((mod, root))
            path = project.modules[mod].file.path
            for field_name, ann in info.fields:
                if (root, field_name) in DIGEST_IRRELEVANT:
                    continue
                problem = _annotation_problem(project, mod, ann, seen)
                if problem is not None:
                    site = ann if ann is not None else info.node
                    violations.append(
                        Violation(
                            path,
                            site.lineno,
                            site.col_offset,
                            "SIM013",
                            f"{root}.{field_name} is invisible to the cache "
                            f"digest: {problem}",
                        )
                    )
    violations.extend(_check_fingerprint_coverage(project))
    return violations


def _check_fingerprint_coverage(project: Project) -> List[Violation]:
    """Every summary field participates in fingerprint() or is exempt."""
    violations: List[Violation] = []
    for mod, info in project.classes_named("ExperimentSummary"):
        if not info.is_dataclass:
            continue
        facts = project.modules[mod]
        fingerprint = facts.functions.get("ExperimentSummary.fingerprint")
        if fingerprint is None:
            violations.append(
                Violation(
                    facts.file.path,
                    info.node.lineno,
                    info.node.col_offset,
                    "SIM013",
                    "ExperimentSummary defines no fingerprint() method",
                )
            )
            continue
        read: Set[str] = set()
        for node in ast.walk(fingerprint.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                read.add(node.attr)
        for field_name, ann in info.fields:
            if field_name in FINGERPRINT_EXEMPT_FIELDS or field_name in read:
                continue
            site = ann if ann is not None else info.node
            violations.append(
                Violation(
                    facts.file.path,
                    site.lineno,
                    site.col_offset,
                    "SIM013",
                    f"ExperimentSummary.{field_name} is never read by "
                    "fingerprint(): two differing runs would compare equal; "
                    "fold it in or add it to FINGERPRINT_EXEMPT_FIELDS",
                )
            )
    return violations


# ----------------------------------------------------------------------
# SIM014: repro.api facade drift
# ----------------------------------------------------------------------

#: The facade pair: the package front door and the module it re-exports.
FACADE_INIT = "repro"
FACADE_API = "repro.api"


def check_api_facade(project: Project) -> List[Violation]:
    init = project.modules.get(FACADE_INIT)
    api = project.modules.get(FACADE_API)
    if init is None or api is None:
        return []  # facade not in the linted path set
    violations: List[Violation] = []

    def v(facts, node, message) -> None:
        site = node if node is not None else facts.file.tree
        line = getattr(site, "lineno", 1)
        col = getattr(site, "col_offset", 0)
        violations.append(Violation(facts.file.path, line, col, "SIM014", message))

    for facts in (init, api):
        if facts.all_names is None:
            v(facts, None, f"{facts.module} must declare a literal __all__")
    if init.all_names is None or api.all_names is None:
        return violations

    if init.all_names != api.all_names:
        only_init = sorted(set(init.all_names) - set(api.all_names))
        only_api = sorted(set(api.all_names) - set(init.all_names))
        detail = "; ".join(
            part
            for part in (
                f"only in repro/__init__: {', '.join(only_init)}" if only_init else "",
                f"only in repro.api: {', '.join(only_api)}" if only_api else "",
                "same names, different order" if not (only_init or only_api) else "",
            )
            if part
        )
        v(init, init.all_node, f"__all__ drift between repro and repro.api ({detail})")

    bound = set(api.imports) | set(api.functions) | set(api.classes)
    for name in api.all_names:
        if name not in bound:
            v(api, api.all_node, f"__all__ exports {name!r} but repro.api never binds it")

    for name in init.all_names:
        origin = init.imports.get(name)
        if origin is None or not origin.startswith(FACADE_API + "."):
            v(
                init,
                init.all_node,
                f"repro/__init__ must re-export {name!r} from repro.api "
                f"(currently {'unbound' if origin is None else origin!r})",
            )

    violations.extend(_check_deprecated_wrappers(api))
    violations.extend(_check_api_docs(api))
    return violations


def _check_deprecated_wrappers(api) -> List[Violation]:
    """The facade may not carry deprecated shims: stale names are removed
    (with a major bump), never kept as warning trampolines."""
    out: List[Violation] = []
    for qual, fn in sorted(api.functions.items()):
        for node in ast.walk(fn.node):
            deprecated = (
                isinstance(node, ast.Name) and node.id == "DeprecationWarning"
            ) or (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "warn"
            )
            if deprecated:
                out.append(
                    Violation(
                        api.file.path,
                        fn.node.lineno,
                        fn.node.col_offset,
                        "SIM014",
                        f"deprecated wrapper {qual!r} on the stable facade; "
                        "remove the name instead of shimming it",
                    )
                )
                break
    return out


def _check_api_docs(api) -> List[Violation]:
    """Every stable name must appear in docs/api.md (when present)."""
    path = Path(api.file.path).resolve()
    doc = None
    for ancestor in path.parents:
        candidate = ancestor / "docs" / "api.md"
        if candidate.is_file():
            doc = candidate
            break
    if doc is None or api.all_names is None:
        return []  # fixture projects carry no docs tree: nothing to check
    text = doc.read_text()
    missing = [name for name in api.all_names if name not in text]
    if not missing:
        return []
    site = api.all_node if api.all_node is not None else api.file.tree
    return [
        Violation(
            api.file.path,
            getattr(site, "lineno", 1),
            getattr(site, "col_offset", 0),
            "SIM014",
            "stable names missing from docs/api.md: " + ", ".join(missing),
        )
    ]


# ----------------------------------------------------------------------
# SIM015: worker-path concurrency hygiene
# ----------------------------------------------------------------------

#: Module globals with this prefix are the documented *process-local*
#: worker state convention (see ``repro.harness.runner``).
WORKER_LOCAL_PREFIX = "_worker"

#: Pool dispatch methods whose first argument is a worker entry point.
_POOL_DISPATCH = {"map", "imap", "imap_unordered", "starmap", "apply", "apply_async"}


def _module_globals(facts) -> Set[str]:
    names: Set[str] = set()
    for stmt in facts.file.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    return names


def _worker_entries(project: Project) -> Tuple[Set[Tuple[str, str]], Set[str]]:
    """Functions handed to a process pool, and the modules doing the handing.

    The second set — modules that *own* pool machinery (create a Pool or
    dispatch work into one) — scopes the atomic-write facet: a module
    whose functions merely run inside workers does not write files
    concurrently unless it also orchestrates them.
    """
    entries: Set[Tuple[str, str]] = set()
    pool_modules: Set[str] = set()
    for module, facts in project.modules.items():
        for node in ast.walk(facts.file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            terminal = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if terminal == "Pool":
                pool_modules.add(module)
                for kw in node.keywords:
                    if kw.arg == "initializer" and isinstance(kw.value, ast.Name):
                        found = project.find_function(module, kw.value.id)
                        if found is not None:
                            entries.add((found[0], found[1].qualname))
            elif terminal in _POOL_DISPATCH and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name):
                    found = project.find_function(module, first.id)
                    if found is not None:
                        entries.add((found[0], found[1].qualname))
                        pool_modules.add(module)
    return entries, pool_modules


def _worker_closure(project: Project) -> Tuple[Set[Tuple[str, str]], Set[str]]:
    graph = project.call_graph()
    entries, pool_modules = _worker_entries(project)
    closure = set(entries)
    frontier = list(closure)
    while frontier:
        node = frontier.pop()
        for callee in graph.get(node, ()):
            if callee not in closure:
                closure.add(callee)
                frontier.append(callee)
    return closure, pool_modules


def check_concurrency(project: Project) -> List[Violation]:
    violations: List[Violation] = []
    closure, pool_modules = _worker_closure(project)

    for module, qual in sorted(closure):
        facts = project.modules[module]
        fn = facts.functions[qual]
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if not name.startswith(WORKER_LOCAL_PREFIX):
                        violations.append(
                            Violation(
                                facts.file.path,
                                node.lineno,
                                node.col_offset,
                                "SIM015",
                                f"worker-path function {qual!r} mutates module "
                                f"global {name!r}: workers hold per-process "
                                "copies, so this is a shared-state illusion; "
                                f"use the {WORKER_LOCAL_PREFIX}* convention or "
                                "return state to the parent",
                            )
                        )

    # Non-atomic writes on concurrent paths: any function in a module
    # that participates in pool machinery which opens a file for writing
    # must also swap it into place (os.replace / Path.replace) in that
    # same function, or be the atomic helper itself.
    for module in sorted(pool_modules):
        facts = project.modules[module]
        for qual, fn in sorted(facts.functions.items()):
            writes: List[ast.Call] = []
            swaps = False
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                terminal = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None
                )
                if terminal == "open":
                    mode: Optional[ast.AST] = None
                    pos = 1 if isinstance(func, ast.Name) else 0
                    if len(node.args) > pos:
                        mode = node.args[pos]
                    for kw in node.keywords:
                        if kw.arg == "mode":
                            mode = kw.value
                    if (
                        isinstance(mode, ast.Constant)
                        and isinstance(mode.value, str)
                        and any(ch in mode.value for ch in "wax+")
                    ):
                        writes.append(node)
                elif terminal in ("write_bytes", "write_text"):
                    writes.append(node)
                elif terminal == "replace" or terminal == "_atomic_write_bytes":
                    swaps = True
            if writes and not swaps:
                for node in writes:
                    violations.append(
                        Violation(
                            facts.file.path,
                            node.lineno,
                            node.col_offset,
                            "SIM015",
                            f"{qual!r} writes a file on a concurrent path "
                            "without an atomic swap; stage to a temp name "
                            "and os.replace() it in the same function",
                        )
                    )
    return violations


def check_contracts(project: Project) -> List[Violation]:
    """Run SIM012-SIM015; SIM011 lives in :mod:`tools.simlint.flow`."""
    violations: List[Violation] = []
    violations.extend(check_bus_contracts(project))
    violations.extend(check_digest_coverage(project))
    violations.extend(check_api_facade(project))
    violations.extend(check_concurrency(project))
    return violations
