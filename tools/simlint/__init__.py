"""simlint: repo-specific AST lint rules for the IDIO simulator.

The rules encode the determinism and modeling contracts the simulator
depends on (see ``docs/analysis.md``):

=======  ==============================================================
SIM001   no wall-clock / host-time calls in simulation code
SIM002   no unseeded or module-global randomness in simulation code
SIM003   no iteration over sets or ``id()``-keyed mappings
SIM004   ``__slots__`` required on hot-path classes
SIM005   memory traffic goes through ``MemoryHierarchy.access(txn)``
SIM006   EventBus subscriber signatures must match the event type
SIM007   tick-vs-wall-time suffix hygiene (``sim.units`` conventions)
=======  ==============================================================

Use :func:`lint_source` / :func:`lint_file` programmatically, or run
``python -m tools.simlint src/repro`` (what ``make analyze`` does).
"""

from .rules import RULES, Violation, lint_file, lint_paths, lint_source, module_name_for

__all__ = [
    "RULES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_name_for",
]
