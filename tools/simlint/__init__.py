"""simlint: repo-specific whole-program lint for the IDIO simulator.

Two layers (see ``docs/analysis.md``):

**Per-file rules** (syntactic, one AST at a time):

=======  ==============================================================
SIM001   no wall-clock / host-time calls in simulation code
SIM002   no unseeded or module-global randomness in simulation code
SIM003   no iteration over sets or ``id()``-keyed mappings
SIM004   ``__slots__`` required on hot-path classes
SIM005   memory traffic goes through ``MemoryHierarchy.access(txn)``
SIM006   EventBus subscriber signatures must match the event type
SIM007   tick-vs-wall-time suffix hygiene (``sim.units`` conventions)
SIM008   numpy imports gated behind ``repro.mem._vec``
SIM009   rack code draws from seeded per-server RNG streams
SIM010   cache writes go through the atomic store helper
SIM016   tenant code draws from seeded per-tenant RNG streams
=======  ==============================================================

**Whole-program rules** (module graph + call graph + taint dataflow,
:mod:`tools.simlint.engine` / :mod:`.flow` / :mod:`.contracts`):

=======  ==============================================================
SIM011   nondeterministic taint must not reach fingerprint state
SIM012   bus publish/subscribe wiring must pair up, typed
SIM013   config/summary fields must be digest- and fingerprint-visible
SIM014   the ``repro.api`` facade must not drift
SIM015   worker paths keep module state process-local and writes atomic
=======  ==============================================================

Use :func:`lint_project` programmatically, or run
``python -m tools.simlint src/repro`` (what ``make analyze`` does).
"""

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .contracts import PROGRAM_RULES, check_contracts
from .engine import Project
from .flow import check_taint
from .rules import (
    RULES,
    Violation,
    _suppressions,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
    module_name_for,
)

#: Every rule the full battery runs, per-file and whole-program alike.
ALL_RULES: Dict[str, str] = {**RULES, **PROGRAM_RULES}


def lint_project(
    paths: Sequence[str],
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    program: bool = True,
) -> List[Violation]:
    """Run the full rule battery over ``paths``, parsing each file once.

    Every file is parsed exactly once (optionally in parallel and
    through the on-disk AST cache); the same trees feed the per-file
    rule pack and, when ``program`` is true, the whole-program passes
    (taint flow + contract rules).  ``# simlint: disable=`` pragmas
    suppress both layers.
    """
    project = Project.load(paths, jobs=jobs, cache_dir=cache_dir)
    violations: List[Violation] = []
    for file in project.files:
        violations.extend(lint_tree(file.tree, file.source, file.module, file.path))
    if program:
        program_violations = check_taint(project) + check_contracts(project)
        by_path: Dict[str, Dict[int, set]] = {}
        for file in project.files:
            by_path[file.path] = _suppressions(file.source)
        for v in program_violations:
            rules_on_line = by_path.get(v.path, {}).get(v.line, set())
            if "ALL" in rules_on_line or v.rule in rules_on_line:
                continue
            violations.append(v)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


__all__ = [
    "ALL_RULES",
    "PROGRAM_RULES",
    "Project",
    "RULES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "lint_tree",
    "module_name_for",
]
