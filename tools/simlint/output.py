"""Machine-readable simlint output: JSON, SARIF 2.1.0, CI annotations.

Three consumers, three shapes:

* ``--json`` — a stable object for scripts and the self-tests;
* ``--sarif`` — SARIF 2.1.0 for code-scanning upload and the CI artifact;
* ``--github`` — ``::error`` workflow commands so findings annotate the
  diff in a pull request.

The suppression *baseline* also lives here: a committed JSON file of
finding keys (``path::rule::message`` — line-free, so the baseline
survives unrelated edits) that are reported as suppressed instead of
failing the run.  The tree guarantee is that ``src/repro`` needs an
*empty* baseline; a non-empty one is a visible debt list, not a dumping
ground.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .rules import Violation

BASELINE_VERSION = 1

#: The committed default baseline location (relative to the repo root).
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def violation_key(v: Violation) -> str:
    """Line-free identity of a finding (stable across unrelated edits)."""
    return f"{v.path}::{v.rule}::{v.message}"


def load_baseline(path: Path) -> List[str]:
    data = json.loads(path.read_text())
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline format in {path}")
    entries = data.get("entries", [])
    if not isinstance(entries, list) or not all(isinstance(e, str) for e in entries):
        raise ValueError(f"baseline entries in {path} must be strings")
    return entries


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "entries": sorted({violation_key(v) for v in violations}),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    violations: Sequence[Violation], entries: Sequence[str]
) -> Tuple[List[Violation], List[Violation], List[str]]:
    """Split into (reported, suppressed, stale-baseline-entries)."""
    known = set(entries)
    reported: List[Violation] = []
    suppressed: List[Violation] = []
    hit: set = set()
    for v in violations:
        key = violation_key(v)
        if key in known:
            suppressed.append(v)
            hit.add(key)
        else:
            reported.append(v)
    stale = sorted(known - hit)
    return reported, suppressed, stale


def to_json(
    violations: Sequence[Violation], suppressed: Sequence[Violation] = ()
) -> str:
    return json.dumps(
        {
            "violations": [
                {
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "rule": v.rule,
                    "message": v.message,
                }
                for v in violations
            ],
            "suppressed": len(suppressed),
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )


def to_sarif(
    violations: Sequence[Violation], rule_descriptions: Dict[str, str]
) -> str:
    """SARIF 2.1.0 document covering every rule, with one result per finding."""
    results = [
        {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": v.line,
                            # SARIF columns are 1-based; AST cols are 0-based.
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    document = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "docs/analysis.md",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {"text": desc},
                            }
                            for rule, desc in sorted(rule_descriptions.items())
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def github_annotations(violations: Sequence[Violation]) -> List[str]:
    """``::error`` workflow commands: one per finding, annotating the diff."""
    return [
        f"::error file={v.path},line={v.line},col={v.col + 1},"
        f"title=simlint {v.rule}::{v.message}"
        for v in violations
    ]
