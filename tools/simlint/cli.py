"""Command-line front end: ``python -m tools.simlint [paths...]``."""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .rules import RULES, lint_paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="repo-specific determinism/modeling lint for the IDIO simulator",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0

    violations = lint_paths(args.paths)
    for v in violations:
        print(v.render())
    if violations:
        print(f"simlint: {len(violations)} violation(s)")
        return 1
    print("simlint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
