"""Command-line front end: ``python -m tools.simlint [paths...]``.

Runs the full SIM001-SIM015 battery (per-file rules + whole-program
engine) with the committed suppression baseline applied.  Machine
consumers use ``--json`` (stdout) and ``--sarif FILE``; CI adds
``--github`` so findings annotate the pull-request diff.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import ALL_RULES, lint_project
from .engine import DEFAULT_CACHE_DIR
from .output import (
    DEFAULT_BASELINE,
    apply_baseline,
    github_annotations,
    load_baseline,
    to_json,
    to_sarif,
    write_baseline,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="repo-specific determinism/modeling lint for the IDIO simulator",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse files with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--no-program", action="store_true",
        help="per-file rules only (skip the whole-program engine)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON on stdout",
    )
    parser.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="also write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--github", action="store_true",
        help="emit ::error workflow commands (GitHub diff annotations)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"suppression baseline (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to accept every current finding, then exit 0",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help=f"parsed-AST cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk AST cache"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(ALL_RULES.items()):
            print(f"{rule}  {desc}")
        return 0

    cache_dir = None if args.no_cache else Path(args.cache_dir)
    violations = lint_project(
        args.paths,
        jobs=args.jobs,
        cache_dir=cache_dir,
        program=not args.no_program,
    )

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    if args.write_baseline:
        write_baseline(baseline_path, violations)
        print(f"simlint: baseline written to {baseline_path} "
              f"({len(violations)} entr{'y' if len(violations) == 1 else 'ies'})")
        return 0
    entries = (
        load_baseline(baseline_path) if baseline_path.is_file() else []
    )
    reported, suppressed, stale = apply_baseline(violations, entries)

    if args.sarif:
        Path(args.sarif).write_text(to_sarif(reported, ALL_RULES) + "\n")
    if args.as_json:
        print(to_json(reported, suppressed))
    else:
        for v in reported:
            print(v.render())
        if args.github:
            for line in github_annotations(reported):
                print(line)
        if suppressed:
            print(f"simlint: {len(suppressed)} finding(s) suppressed by baseline")
        if stale:
            print(
                f"simlint: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} (fixed findings — prune "
                f"with --write-baseline)",
                file=sys.stderr,
            )
        if reported:
            print(f"simlint: {len(reported)} violation(s)")
        else:
            print("simlint: clean")
    return 1 if reported else 0


if __name__ == "__main__":
    raise SystemExit(main())
