"""Whole-program analysis engine: the project model behind simlint 2.0.

The per-file rules (SIM001-SIM010, :mod:`tools.simlint.rules`) see one
AST at a time, which is exactly as far as syntax can go.  The hazards
that actually threaten the reproduction's determinism story cross file
boundaries: an unseeded value flowing *through* a helper into a
fingerprint, a bus event published in one module with no subscriber in
any other, a config field that reaches the simulator but not the cache
digest.  This module builds the shared project model those rules need:

* every file parsed **once** (optionally in parallel, ``jobs > 1``),
  with the parsed tree cached on disk keyed by source hash so repeated
  ``make analyze`` runs skip the parse entirely;
* a **module graph** (who imports what, with relative imports resolved
  against the package layout);
* a **symbol table** (functions, classes, dataclass fields, ``__all__``
  literals per module) with cross-module name resolution that follows
  imports and one-hop re-exports;
* a **call graph** over plain-name and ``self.method`` calls, which the
  taint pass (:mod:`tools.simlint.flow`) iterates to a fixpoint.

Everything downstream — the taint pass and the contract rules
(:mod:`tools.simlint.contracts`) — consumes a :class:`Project` and never
re-parses.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .rules import _FIXTURE_RE, iter_python_files, module_name_for

#: Bumped whenever the pickled-AST layout or the fact extraction changes;
#: cache entries from another engine version are ignored, not trusted.
ENGINE_CACHE_VERSION = 1

#: Default on-disk parse-cache location (gitignored; CI restores it via
#: actions/cache keyed on the source hash of the tree).
DEFAULT_CACHE_DIR = ".simlint-cache"


def _cache_key(source: str) -> str:
    """Cache key for one file: content hash + engine + python version."""
    tag = f"{ENGINE_CACHE_VERSION}:{sys.version_info[0]}.{sys.version_info[1]}:"
    return hashlib.sha256((tag + source).encode("utf-8")).hexdigest()


def _load_cached_tree(cache_dir: Path, key: str) -> Optional[ast.Module]:
    try:
        with open(cache_dir / (key + ".ast"), "rb") as fh:
            tree = pickle.load(fh)
    except (OSError, Exception):
        return None
    return tree if isinstance(tree, ast.Module) else None


def _store_cached_tree(cache_dir: Path, key: str, tree: ast.Module) -> None:
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        staged = cache_dir / (key + ".tmp")
        with open(staged, "wb") as fh:
            pickle.dump(tree, fh, protocol=pickle.HIGHEST_PROTOCOL)
        staged.replace(cache_dir / (key + ".ast"))
    except OSError:
        pass  # cache is advisory; a read-only tree just parses every time


@dataclass
class SourceFile:
    """One parsed file: the unit the project model is built from."""

    path: str
    module: str
    source: str
    tree: ast.Module
    #: Whether the path is a package ``__init__`` (relative imports in a
    #: package resolve against the package itself, not its parent).
    is_package: bool


def _module_for_source(path: str, source: str) -> str:
    """Module name for ``path``, honoring the fixture-module header."""
    m = _FIXTURE_RE.match(source)
    if m:
        return m.group(1)
    return module_name_for(path)


def parse_source_file(path: str, cache_dir: Optional[Path] = None) -> SourceFile:
    """Parse one file (through the on-disk AST cache when available)."""
    source = Path(path).read_text()
    tree: Optional[ast.Module] = None
    key = ""
    if cache_dir is not None:
        key = _cache_key(source)
        tree = _load_cached_tree(cache_dir, key)
    if tree is None:
        tree = ast.parse(source, filename=path)
        if cache_dir is not None:
            _store_cached_tree(cache_dir, key, tree)
    return SourceFile(
        path=path,
        module=_module_for_source(path, source),
        source=source,
        tree=tree,
        is_package=Path(path).name == "__init__.py",
    )


def _parse_worker(args: Tuple[str, Optional[str]]) -> SourceFile:
    path, cache_dir = args
    return parse_source_file(path, Path(cache_dir) if cache_dir else None)


def parse_files(
    paths: Sequence[str],
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
) -> List[SourceFile]:
    """Parse every ``.py`` file under ``paths``, once each, in path order.

    ``jobs > 1`` parses in worker processes (ASTs pickle cleanly); any
    host where process pools cannot be created degrades to serial with
    identical results.
    """
    files = list(iter_python_files(paths))
    if jobs > 1 and len(files) > 1:
        try:
            import multiprocessing

            with multiprocessing.get_context().Pool(min(jobs, len(files))) as pool:
                cache_arg = str(cache_dir) if cache_dir is not None else None
                return pool.map(
                    _parse_worker, [(path, cache_arg) for path in files]
                )
        except (OSError, PermissionError, ValueError, ImportError):
            pass  # sandbox without fork/semaphores: fall through to serial
    return [parse_source_file(path, cache_dir) for path in files]


# ----------------------------------------------------------------------
# per-module fact extraction
# ----------------------------------------------------------------------


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # "helper" or "Class.method"
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    is_method: bool


@dataclass
class ClassInfo:
    """One class definition, with its dataclass shape when applicable."""

    name: str
    node: ast.ClassDef
    is_dataclass: bool
    #: ``(field name, annotation node)`` in declaration order (dataclass
    #: shape: annotated class-level assignments).
    fields: List[Tuple[str, Optional[ast.AST]]] = field(default_factory=list)
    base_names: List[str] = field(default_factory=list)


@dataclass
class ModuleFacts:
    """Everything the cross-module rules need to know about one module."""

    module: str
    file: SourceFile
    #: local name -> fully dotted origin ("repro.obs.events.CacheHitEvent"
    #: for from-imports of a name, "repro.obs.events" for module imports).
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: The ``__all__`` literal, when one is assigned at module level.
    all_names: Optional[List[str]] = None
    all_node: Optional[ast.AST] = None


def _resolve_relative(module: str, is_package: bool, level: int, target: str) -> str:
    """Absolute dotted name for a ``from ...x import`` statement."""
    if level == 0:
        return target
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    # level=1 is the current package; each extra level climbs one parent.
    for _ in range(level - 1):
        if parts:
            parts = parts[:-1]
    base = ".".join(parts)
    if not target:
        return base
    return f"{base}.{target}" if base else target


_DATACLASS_NAMES = {"dataclass"}


def _is_dataclass_def(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name in _DATACLASS_NAMES:
            return True
    return False


def extract_facts(file: SourceFile) -> ModuleFacts:
    """One linear walk of a parsed file into its fact tables."""
    facts = ModuleFacts(module=file.module, file=file)
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                facts.imports[bound] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(
                file.module, file.is_package, node.level, node.module or ""
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                facts.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    for stmt in file.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts.functions[stmt.name] = FunctionInfo(stmt.name, stmt, False)
        elif isinstance(stmt, ast.ClassDef):
            info = ClassInfo(
                name=stmt.name,
                node=stmt,
                is_dataclass=_is_dataclass_def(stmt),
                base_names=[
                    b.attr if isinstance(b, ast.Attribute) else b.id
                    for b in stmt.bases
                    if isinstance(b, (ast.Attribute, ast.Name))
                ],
            )
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{stmt.name}.{member.name}"
                    facts.functions[qual] = FunctionInfo(qual, member, True)
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    info.fields.append((member.target.id, member.annotation))
            facts.classes[stmt.name] = info
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    names = _string_list(stmt.value)
                    if names is not None:
                        facts.all_names = names
                        facts.all_node = stmt
    return facts


def _string_list(node: ast.AST) -> Optional[List[str]]:
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: List[str] = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return out


# ----------------------------------------------------------------------
# the project model
# ----------------------------------------------------------------------


def dotted_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]`` (root first), or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class Project:
    """The whole-program model: modules, symbols, imports, call graph."""

    def __init__(self, files: Sequence[SourceFile]):
        self.files: List[SourceFile] = list(files)
        self.modules: Dict[str, ModuleFacts] = {}
        for file in self.files:
            self.modules[file.module] = extract_facts(file)
        self._call_graph: Optional[Dict[Tuple[str, str], Set[Tuple[str, str]]]] = None

    @classmethod
    def load(
        cls,
        paths: Sequence[str],
        jobs: int = 1,
        cache_dir: Optional[Path] = None,
    ) -> "Project":
        return cls(parse_files(paths, jobs=jobs, cache_dir=cache_dir))

    # -- name resolution ----------------------------------------------

    def resolve(self, module: str, parts: Sequence[str]) -> Optional[Tuple[str, str]]:
        """Resolve a (possibly dotted) name used in ``module``.

        Returns ``(defining module, symbol)`` — symbol may be ``""`` when
        the name resolves to a module itself — or ``None`` for names the
        project cannot see (stdlib, third-party, dynamic).  Follows
        imports and chains of re-exports up to a small bound.
        """
        if not parts:
            return None
        facts = self.modules.get(module)
        if facts is None:
            return None
        head, rest = parts[0], list(parts[1:])
        if head in facts.imports:
            dotted = facts.imports[head].split(".") + rest
        elif head in facts.functions or head in facts.classes:
            return (module, ".".join([head] + rest))
        else:
            return None
        return self._resolve_dotted(dotted)

    def _resolve_dotted(
        self, dotted: List[str], depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        if depth > 8:
            return None
        # Longest known-module prefix wins; the remainder is the symbol.
        for cut in range(len(dotted), 0, -1):
            mod = ".".join(dotted[:cut])
            if mod in self.modules:
                rest = dotted[cut:]
                if not rest:
                    return (mod, "")
                facts = self.modules[mod]
                symbol = rest[0]
                if symbol in facts.functions or symbol in facts.classes:
                    return (mod, ".".join(rest))
                if symbol in facts.imports:  # a re-export: keep following
                    return self._resolve_dotted(
                        facts.imports[symbol].split(".") + rest[1:], depth + 1
                    )
                return (mod, ".".join(rest))
        return None

    def find_class(self, module: str, name: str) -> Optional[Tuple[str, ClassInfo]]:
        """The defining module and info for a class name used in ``module``."""
        resolved = self.resolve(module, [name])
        if resolved is None:
            return None
        mod, symbol = resolved
        info = self.modules[mod].classes.get(symbol)
        return (mod, info) if info is not None else None

    def find_function(
        self, module: str, name: str
    ) -> Optional[Tuple[str, FunctionInfo]]:
        """The defining module and info for a function name used in ``module``."""
        resolved = self.resolve(module, [name])
        if resolved is None:
            return None
        mod, symbol = resolved
        info = self.modules[mod].functions.get(symbol)
        return (mod, info) if info is not None else None

    def classes_named(self, name: str) -> List[Tuple[str, ClassInfo]]:
        """Every project class with this bare name (usually exactly one)."""
        return [
            (mod, facts.classes[name])
            for mod, facts in sorted(self.modules.items())
            if name in facts.classes
        ]

    # -- module graph --------------------------------------------------

    def module_graph(self) -> Dict[str, Set[str]]:
        """``importer -> {imported project modules}`` (project edges only)."""
        graph: Dict[str, Set[str]] = {}
        for module, facts in self.modules.items():
            edges: Set[str] = set()
            for dotted in facts.imports.values():
                resolved = self._resolve_dotted(dotted.split("."))
                if resolved is not None and resolved[0] != module:
                    edges.add(resolved[0])
            graph[module] = edges
        return graph

    # -- call graph ----------------------------------------------------

    def call_graph(self) -> Dict[Tuple[str, str], Set[Tuple[str, str]]]:
        """``(module, qualname) -> {called (module, qualname)}``.

        Best-effort static resolution: plain names (local or imported
        functions), ``module.func`` attribute calls through module
        imports, and ``self.method`` calls within a class.  Unresolvable
        calls (dynamic dispatch, stdlib) are simply absent.
        """
        if self._call_graph is not None:
            return self._call_graph
        graph: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
        for module, facts in self.modules.items():
            for qual, fn in facts.functions.items():
                callees: Set[Tuple[str, str]] = set()
                cls_name = qual.split(".")[0] if "." in qual else None
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    target = self.resolve_call(module, node, cls_name)
                    if target is not None:
                        callees.add(target)
                graph[(module, qual)] = callees
        self._call_graph = graph
        return graph

    def resolve_call(
        self, module: str, call: ast.Call, cls_name: Optional[str] = None
    ) -> Optional[Tuple[str, str]]:
        """Resolve one call site to a project ``(module, qualname)``."""
        facts = self.modules[module]
        func = call.func
        if isinstance(func, ast.Name):
            # A class constructor resolves to its __init__ if defined.
            found = self.find_function(module, func.id)
            if found is not None:
                return (found[0], found[1].qualname)
            cls = self.find_class(module, func.id)
            if cls is not None:
                mod, info = cls
                init = f"{info.name}.__init__"
                if init in self.modules[mod].functions:
                    return (mod, init)
            return None
        chain = dotted_chain(func)
        if chain is None:
            return None
        if chain[0] == "self" and cls_name is not None and len(chain) == 2:
            qual = f"{cls_name}.{chain[1]}"
            if qual in facts.functions:
                return (module, qual)
            return None
        resolved = self.resolve(module, chain)
        if resolved is None:
            return None
        mod, symbol = resolved
        if symbol and symbol in self.modules[mod].functions:
            return (mod, symbol)
        return None
