#!/usr/bin/env python3
"""Benchmark harness for the simulator's hot path and the parallel runner.

Measures a fixed single-experiment reference plus a host-derived
multi-core matrix:

* ``burst_reference`` — one 100 Gbps burst experiment at paper scale
  (ring 1024, TouchDrop), the single-experiment speed reference;
* ``burst_faulted`` — the same burst under the standard fault plan
  (overhead of live injection on the hot path);
* ``fig10_quick_jobs<J>`` — the fig10 quick sweep through the warm
  process-pool runner for every ``J`` in ``sorted({1, 2, N})`` with
  ``J <= N``, where ``N`` is this host's scheduler-visible core count
  (oversubscribed rows — e.g. jobs=2 on a 1-core host — are strictly
  slower and only add noise, so they are skipped).  Each row records
  the worker count, the host core count, and the chunk size the runner
  chose, so sweep-scaling regressions are attributable from the JSON
  alone.  The pool is pre-warmed outside the timed region (steady-state
  sweep cost, not fork cost) and torn down between rows so no row
  inherits the previous row's workers;
* ``fig10_quick_cached`` — the same sweep cold then warm through the
  fingerprint-keyed result cache (``repro.cache``): the row's wall time
  is the *warm* re-run (every experiment a cache hit), with the cold
  time, speedup, hit/miss counts, and cache size recorded alongside.
  Warm wall times are milliseconds, so the row is ``advisory`` —
  reported but excluded from the ``--check`` gate;
* ``rack_quick`` — a 4-server rack sweep (``repro.rack``) sharded over
  the warm pool, measuring the ToR steering + fold overhead on top of
  the per-server experiments;
* ``tenants_quick`` — a 2-tenant noisy-neighbor isolation sweep
  (``repro.tenants``) under DDIO and IOCA, gating the per-tenant
  attribution hot path (address-range resolution + ``TenantDmaEvent``
  publication on every inbound DMA write) and the IOCA epoch
  controller.

Results (wall seconds, simulated events/sec, peak RSS) are written to
``BENCH_<date>.json`` next to the repository root.  ``--check`` reruns
the matrix and fails if any workload's wall time regressed more than
``--threshold`` (default 25%) against the most recent committed
``BENCH_*.json`` — wired up as ``make bench-check``.  Rows are matched
by name; multi-job rows additionally require the baseline host's core
count to match (a jobs=4 row measured on a 4-core host says nothing
about a 1-core host), and are reported informationally otherwise.
``--quick`` trims the matrix for CI smoke runs (``make bench-smoke``).

Usage::

    PYTHONPATH=src python tools/bench.py            # measure + write json
    PYTHONPATH=src python tools/bench.py --check    # regression gate
    PYTHONPATH=src python tools/bench.py --quick --check --threshold 150
"""

from __future__ import annotations

import argparse
import datetime as _dt
import glob
import json
import os
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness import figures, runner  # noqa: E402
from repro.harness.experiment import Experiment  # noqa: E402
from repro.harness.runner import run_experiment_summary  # noqa: E402


def _bench_burst_reference() -> dict:
    exp = Experiment(name="bench", burst_rate_gbps=100.0)
    start = time.perf_counter()
    summary = run_experiment_summary(exp)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "events": summary.events_fired,
        "events_per_second": summary.events_fired / wall if wall > 0 else 0.0,
        "completed_packets": summary.completed,
    }


def _bench_burst_faulted() -> dict:
    # The reference burst under the all-layer standard fault plan at
    # half intensity: measures the overhead of live injection + fault
    # events on the hot path (informational until a baseline lands).
    from repro.faults import standard_plan  # noqa: E402
    from repro.harness.server import ServerConfig  # noqa: E402

    exp = Experiment(
        name="bench-faulted",
        server=ServerConfig(fault_plan=standard_plan("all", intensity=0.5)),
        burst_rate_gbps=100.0,
    )
    start = time.perf_counter()
    summary = run_experiment_summary(exp)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "events": summary.events_fired,
        "events_per_second": summary.events_fired / wall if wall > 0 else 0.0,
        "completed_packets": summary.completed,
        "faults_injected": sum(summary.fault_counts.values()),
    }


def _bench_fig10_quick(jobs: int) -> dict:
    # Pre-warm outside the timed region: the row measures steady-state
    # sweep throughput, not one-time fork/import cost.  (get_pool returns
    # None for jobs<=1 or on pool-less hosts; the sweep then runs serial
    # and the row is still comparable via its recorded dispatch mode.)
    if jobs > 1:
        runner.get_pool(jobs)
    start = time.perf_counter()
    report = figures.fig10(
        ring_size=256, include_static=False, corun_rates=(25.0,), jobs=jobs
    )
    wall = time.perf_counter() - start
    events = sum(s.events_fired for s in report.results.values())
    dispatch = dict(runner.last_dispatch)
    row = {
        "wall_seconds": wall,
        "events": events,
        "events_per_second": events / wall if wall > 0 else 0.0,
        "experiments": len(report.results),
        "jobs": jobs,
        "cpus": runner.default_jobs(),
        "dispatch_mode": dispatch.get("mode"),
        "chunksize": dispatch.get("chunksize"),
    }
    # Fresh workers for the next row: no row inherits this row's pool.
    runner.shutdown_pool()
    return row


def _bench_fig10_quick_cached() -> dict:
    # Cold-then-warm through the result cache: the cold run populates a
    # throwaway cache directory, the warm re-run must serve every
    # experiment from it.  The row's headline wall time is the *warm*
    # run; warm times are tiny and dominated by pickle I/O, so the row
    # is advisory (excluded from the --check gate) and the interesting
    # numbers are the speedup and the hit/miss counts.
    import tempfile

    from repro.cache import cache_session

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        with cache_session(root) as cache:
            start = time.perf_counter()
            figures.fig10(
                ring_size=256, include_static=False, corun_rates=(25.0,), jobs=1
            )
            cold_wall = time.perf_counter() - start
            cold_misses, cold_stores = cache.misses, cache.stores
            start = time.perf_counter()
            report = figures.fig10(
                ring_size=256, include_static=False, corun_rates=(25.0,), jobs=1
            )
            warm_wall = time.perf_counter() - start
            stats = cache.stats()
    events = sum(s.events_fired for s in report.results.values())
    return {
        "wall_seconds": warm_wall,
        "advisory": True,
        "cold_wall_seconds": cold_wall,
        "warm_speedup": cold_wall / warm_wall if warm_wall > 0 else 0.0,
        "events": events,
        "experiments": len(report.results),
        "cold_misses": cold_misses,
        "cold_stores": cold_stores,
        "warm_hits": cache.hits,
        "warm_misses": cache.misses - cold_misses,
        "cache_entries": stats["entries"],
        "cache_bytes": stats["bytes"],
    }


def _bench_rack_quick() -> dict:
    # A 4-server rack sweep sharded over the warm pool: measures the
    # rack tier's fold + steering overhead on top of the per-server
    # experiments.  Pre-warmed like the fig10 rows; serial fallback on
    # pool-less hosts stays comparable via the recorded dispatch mode.
    from repro.rack import RackConfig, run_rack  # noqa: E402

    jobs = min(4, runner.default_jobs())
    if jobs > 1:
        runner.get_pool(jobs)
    config = RackConfig(
        name="bench-rack",
        num_servers=4,
        total_flows=4096,
        offered_gbps=80.0,
        duration_us=100.0,
    )
    start = time.perf_counter()
    summary = run_rack(config, jobs=jobs)
    wall = time.perf_counter() - start
    dispatch = dict(runner.last_dispatch)
    row = {
        "wall_seconds": wall,
        "events": summary.events_fired,
        "events_per_second": summary.events_fired / wall if wall > 0 else 0.0,
        "completed_packets": summary.completed,
        "servers": config.num_servers,
        "jobs": jobs,
        "cpus": runner.default_jobs(),
        "dispatch_mode": dispatch.get("mode"),
        "chunksize": dispatch.get("chunksize"),
        "fingerprint": summary.fingerprint,
    }
    runner.shutdown_pool()
    return row


def _bench_tenants_quick() -> dict:
    # The tenant tier's cost center is per-DMA attribution (address-range
    # resolution + TenantDmaEvent publication) plus the IOCA epoch
    # controller; a small matrix over the warm pool keeps the row fast
    # while exercising both the shared-partition and partitioned paths.
    from repro.core.policies import ddio, ioca  # noqa: E402
    from repro.tenants.sweep import run_tenants  # noqa: E402

    jobs = min(2, runner.default_jobs())
    if jobs > 1:
        runner.get_pool(jobs)
    start = time.perf_counter()
    summary = run_tenants(
        policies=[ddio(), ioca()],
        mix="noisy-neighbor",
        tenants=2,
        intensities=(0.25, 2.0),
        duration_us=150.0,
        jobs=jobs,
    )
    wall = time.perf_counter() - start
    dispatch = dict(runner.last_dispatch)
    completed = sum(
        cell.stat(tenant, "completed")
        for cell in summary.cells
        for tenant in cell.tenant_stats
    )
    dma_writes = sum(
        cell.stat(tenant, "dma_writes")
        for cell in summary.cells
        for tenant in cell.tenant_stats
    )
    row = {
        "wall_seconds": wall,
        "cells": len(summary.cells),
        "completed_packets": int(completed),
        "attributed_dma_writes": int(dma_writes),
        "jobs": jobs,
        "cpus": runner.default_jobs(),
        "dispatch_mode": dispatch.get("mode"),
        "chunksize": dispatch.get("chunksize"),
        "fingerprint": summary.fingerprint,
    }
    runner.shutdown_pool()
    return row


def jobs_matrix() -> list[int]:
    """Worker counts measured per sweep workload: 1, 2, and all cores.

    Capped at the host's core count — an oversubscribed row (jobs=2 on a
    1-core host) is strictly slower than serial and only adds noise to
    the baseline, so it is not measured at all.
    """
    cpus = runner.default_jobs()
    return [j for j in sorted({1, 2, cpus}) if j <= cpus]


def workload_matrix(quick: bool = False) -> dict:
    """Name -> thunk for every workload of this run.

    ``quick`` keeps one serial sweep row and one all-cores row (the two
    ends of the scaling curve) and drops the faulted burst — the CI
    smoke configuration.
    """
    workloads = {"burst_reference": _bench_burst_reference}
    if not quick:
        workloads["burst_faulted"] = _bench_burst_faulted
    matrix = jobs_matrix()
    if quick:
        matrix = sorted({1, matrix[-1]})
    for j in matrix:

        def _thunk(jobs: int = j) -> dict:
            return _bench_fig10_quick(jobs)

        workloads[f"fig10_quick_jobs{j}"] = _thunk
    workloads["fig10_quick_cached"] = _bench_fig10_quick_cached
    workloads["rack_quick"] = _bench_rack_quick
    workloads["tenants_quick"] = _bench_tenants_quick
    return workloads


def run_matrix(quick: bool = False) -> dict:
    results = {}
    for name, fn in workload_matrix(quick).items():
        print(f"  {name} ...", end="", flush=True)
        results[name] = fn()
        print(f" {results[name]['wall_seconds']:.2f}s")
    return {
        "date": _dt.date.today().isoformat(),
        "python": sys.version.split()[0],
        "cpus": runner.default_jobs(),
        "quick": quick,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "results": results,
    }


def latest_committed() -> Path | None:
    files = sorted(glob.glob(str(REPO_ROOT / "BENCH_*.json")))
    return Path(files[-1]) if files else None


def _row_cpus(row: dict, run: dict) -> int | None:
    """A row's host core count: per-row when recorded, else run-level."""
    cpus = row.get("cpus")
    return cpus if cpus is not None else run.get("cpus")


def _is_multijob(row: dict, name: str) -> bool:
    jobs = row.get("jobs")
    if jobs is not None:
        return jobs > 1
    # Old baselines without a jobs field: fall back to the row name.
    return "jobs" in name and not name.endswith("jobs1")


def compare(current: dict, baseline: dict, threshold_pct: float) -> list[str]:
    """Per-workload comparison; returns the list of failure descriptions.

    Rows are matched by name.  A failure is a wall-time regression beyond
    ``threshold_pct`` on a comparable row, or a comparable row present in
    the baseline but absent from the current run (a silently-dropped
    workload must not pass the gate).  Multi-job rows are only comparable
    when both hosts have the same core count — the jobs matrix is
    host-derived, so a jobs=4 baseline row from a 4-core host is
    informational on any other host, as is its absence.  Rows marked
    ``advisory`` (in either run) are always informational: their wall
    times are too small or too host-dependent to gate on.
    """
    failures: list[str] = []
    baseline_results = baseline.get("results", {})
    for name, cur in current["results"].items():
        base = baseline_results.get(name)
        if base is None:
            print(f"  {name}: new workload, no baseline entry")
            continue
        base_wall, cur_wall = base["wall_seconds"], cur["wall_seconds"]
        delta_pct = (cur_wall - base_wall) / base_wall * 100.0
        advisory = bool(cur.get("advisory") or base.get("advisory"))
        comparable = not _is_multijob(cur, name) or (
            _row_cpus(base, baseline) == _row_cpus(cur, current)
        )
        status = "ok"
        if advisory:
            status = "advisory (not gated)"
        elif not comparable:
            status = "informational (baseline measured on a different core count)"
        elif delta_pct > threshold_pct:
            status = f"REGRESSION (> {threshold_pct:g}%)"
            failures.append(
                f"{name} {delta_pct:+.1f}% ({base_wall:.2f}s -> {cur_wall:.2f}s)"
            )
        print(
            f"  {name}: {base_wall:.2f}s -> {cur_wall:.2f}s "
            f"({delta_pct:+.1f}%) {status}"
        )
    for name, base in baseline_results.items():
        if name in current["results"]:
            continue
        if base.get("advisory"):
            print(f"  {name}: baseline-only advisory row (not gated)")
            continue
        if _is_multijob(base, name):
            # Host-derived row (e.g. jobs=4 on a 4-core baseline host):
            # its absence from this host's matrix is expected.
            print(f"  {name}: baseline-only multi-job row (host matrix differs)")
            continue
        if current.get("quick"):
            print(f"  {name}: not part of the quick matrix")
            continue
        print(f"  {name}: in baseline but not measured -- workload dropped?")
        failures.append(f"{name} missing from current run")
    return failures


def check(current: dict, threshold_pct: float) -> int:
    baseline_path = latest_committed()
    if baseline_path is None:
        print("no committed BENCH_*.json to compare against; nothing to check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    print(f"comparing against {baseline_path.name} ({baseline.get('date')})")
    failures = compare(current, baseline, threshold_pct)
    if failures:
        print("bench-check: FAIL -- " + "; ".join(failures))
        return 1
    print(f"bench-check: ok ({len(current['results'])} workloads within threshold)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if wall time regresses vs the last committed BENCH_*.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="allowed wall-time regression percentage for --check (default 25)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="trimmed matrix for CI smoke runs (reference burst + the two "
        "ends of the sweep scaling curve)",
    )
    parser.add_argument(
        "--out",
        help="output path (default BENCH_<date>.json in the repo root; "
        "'-' skips writing)",
    )
    args = parser.parse_args(argv)

    print("running benchmark matrix:")
    current = run_matrix(quick=args.quick)

    if args.check:
        return check(current, args.threshold)

    out = args.out
    if out != "-":
        path = Path(out) if out else REPO_ROOT / f"BENCH_{current['date']}.json"
        path.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {path}")
    print(json.dumps(current, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
