#!/usr/bin/env python3
"""Benchmark harness for the simulator's hot path and the parallel runner.

Measures a fixed workload matrix:

* ``burst_reference`` — one 100 Gbps burst experiment at paper scale
  (ring 1024, TouchDrop), the single-experiment speed reference;
* ``fig10_quick_jobs1`` / ``fig10_quick_jobsN`` — the fig10 quick sweep
  run serially and through the process-pool runner, which measures the
  sweep-level scaling the runner provides on this host.

Results (wall seconds, simulated events/sec, peak RSS) are written to
``BENCH_<date>.json`` next to the repository root.  ``--check`` reruns
the matrix and fails if any workload's wall time regressed more than
``--threshold`` (default 25%) against the most recent committed
``BENCH_*.json`` — wired up as ``make bench-check``.

Usage::

    PYTHONPATH=src python tools/bench.py            # measure + write json
    PYTHONPATH=src python tools/bench.py --check    # regression gate
"""

from __future__ import annotations

import argparse
import datetime as _dt
import glob
import json
import os
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.harness import figures  # noqa: E402
from repro.harness.experiment import Experiment  # noqa: E402
from repro.harness.runner import run_experiment_summary  # noqa: E402


def _bench_burst_reference() -> dict:
    exp = Experiment(name="bench", burst_rate_gbps=100.0)
    start = time.perf_counter()
    summary = run_experiment_summary(exp)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "events": summary.events_fired,
        "events_per_second": summary.events_fired / wall if wall > 0 else 0.0,
        "completed_packets": summary.completed,
    }


def _bench_burst_faulted() -> dict:
    # The reference burst under the all-layer standard fault plan at
    # half intensity: measures the overhead of live injection + fault
    # events on the hot path (informational until a baseline lands).
    from repro.faults import standard_plan  # noqa: E402
    from repro.harness.server import ServerConfig  # noqa: E402

    exp = Experiment(
        name="bench-faulted",
        server=ServerConfig(fault_plan=standard_plan("all", intensity=0.5)),
        burst_rate_gbps=100.0,
    )
    start = time.perf_counter()
    summary = run_experiment_summary(exp)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "events": summary.events_fired,
        "events_per_second": summary.events_fired / wall if wall > 0 else 0.0,
        "completed_packets": summary.completed,
        "faults_injected": sum(summary.fault_counts.values()),
    }


def _bench_fig10_quick(jobs: int) -> dict:
    start = time.perf_counter()
    report = figures.fig10(
        ring_size=256, include_static=False, corun_rates=(25.0,), jobs=jobs
    )
    wall = time.perf_counter() - start
    events = sum(s.events_fired for s in report.results.values())
    return {
        "wall_seconds": wall,
        "events": events,
        "events_per_second": events / wall if wall > 0 else 0.0,
        "experiments": len(report.results),
        "jobs": jobs,
    }


WORKLOADS = {
    "burst_reference": _bench_burst_reference,
    "burst_faulted": _bench_burst_faulted,
    "fig10_quick_jobs1": lambda: _bench_fig10_quick(1),
    "fig10_quick_jobs4": lambda: _bench_fig10_quick(4),
}


def run_matrix() -> dict:
    results = {}
    for name, fn in WORKLOADS.items():
        print(f"  {name} ...", end="", flush=True)
        results[name] = fn()
        print(f" {results[name]['wall_seconds']:.2f}s")
    return {
        "date": _dt.date.today().isoformat(),
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "results": results,
    }


def latest_committed() -> Path | None:
    files = sorted(glob.glob(str(REPO_ROOT / "BENCH_*.json")))
    return Path(files[-1]) if files else None


def compare(current: dict, baseline: dict, threshold_pct: float) -> list[str]:
    """Per-workload comparison; returns the list of failure descriptions.

    A failure is either a wall-time regression beyond ``threshold_pct`` or
    a workload present in the baseline but absent from the current run
    (a silently-dropped workload must not pass the gate).
    """
    failures: list[str] = []
    baseline_results = baseline.get("results", {})
    for name, cur in current["results"].items():
        base = baseline_results.get(name)
        if base is None:
            print(f"  {name}: new workload, no baseline entry")
            continue
        base_wall, cur_wall = base["wall_seconds"], cur["wall_seconds"]
        delta_pct = (cur_wall - base_wall) / base_wall * 100.0
        status = "ok"
        if delta_pct > threshold_pct:
            status = f"REGRESSION (> {threshold_pct:g}%)"
            failures.append(
                f"{name} {delta_pct:+.1f}% ({base_wall:.2f}s -> {cur_wall:.2f}s)"
            )
        print(
            f"  {name}: {base_wall:.2f}s -> {cur_wall:.2f}s "
            f"({delta_pct:+.1f}%) {status}"
        )
    for name in baseline_results:
        if name not in current["results"]:
            print(f"  {name}: in baseline but not measured -- workload dropped?")
            failures.append(f"{name} missing from current run")
    return failures


def check(current: dict, threshold_pct: float) -> int:
    baseline_path = latest_committed()
    if baseline_path is None:
        print("no committed BENCH_*.json to compare against; nothing to check")
        return 0
    baseline = json.loads(baseline_path.read_text())
    print(f"comparing against {baseline_path.name} ({baseline.get('date')})")
    failures = compare(current, baseline, threshold_pct)
    if failures:
        print("bench-check: FAIL -- " + "; ".join(failures))
        return 1
    print(f"bench-check: ok ({len(current['results'])} workloads within threshold)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if wall time regresses vs the last committed BENCH_*.json",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="allowed wall-time regression percentage for --check (default 25)",
    )
    parser.add_argument(
        "--out",
        help="output path (default BENCH_<date>.json in the repo root; "
        "'-' skips writing)",
    )
    args = parser.parse_args(argv)

    print("running benchmark matrix:")
    current = run_matrix()

    if args.check:
        return check(current, args.threshold)

    out = args.out
    if out != "-":
        path = Path(out) if out else REPO_ROOT / f"BENCH_{current['date']}.json"
        path.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {path}")
    print(json.dumps(current, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
