"""Command-line interface: run experiments, figures, and comparisons.

Installed as the ``idio-repro`` console script::

    idio-repro list                      # policies, apps, figures
    idio-repro run --policy idio --app touchdrop --rate 25
    idio-repro compare --policies ddio,idio --rate 100 --ring 1024
    idio-repro figure fig9               # reproduce one paper figure
    idio-repro figure fig10 --out fig10.txt
    idio-repro run --policy ddio --csv trace.csv   # export timelines
    idio-repro trace --out idio-trace.json         # Chrome-trace export
    idio-repro check --quick                       # sanitizer + determinism
    idio-repro faults --quick                      # degradation matrix
    idio-repro rack --servers 4 --jobs 4           # rack-scale fleet sweep
    idio-repro tenants --policies ddio,idio,ioca   # isolation matrix
    idio-repro compare --cache-dir .repro-cache    # memoize the sweep
    idio-repro cache stats                         # result-cache census
    idio-repro serve --socket /tmp/repro.sock      # sweep daemon

The flag vocabulary is shared across subcommands via argparse parent
parsers: every command that runs experiments accepts the same
``--workload``/``--app``, ``--policy``, ``--jobs``, ``--seed``, and
``--out`` spellings with the same semantics, and the multi-tenant
commands (``tenants``, ``faults``, ``rack``) share the scenario
vocabulary ``--tenants``/``--tenant-mix``/``--intensity``.  Caching is opt-in:
``--cache-dir`` (or the ``REPRO_CACHE_DIR`` environment variable)
installs a result cache for the invocation, and ``--no-cache`` disables
it even when the variable is set.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from .core import policies
from .harness import extensions, figures
from .harness.experiment import Experiment, run_experiment
from .harness.runner import run_experiments, shutdown_pool
from .harness.report import format_table, timeline_block
from .harness.server import APP_FACTORIES, ServerConfig
from .harness.traces import export_csv, to_csv_string
from .sim import units

#: Figure/extension entry points exposed by ``idio-repro figure``.
FIGURE_COMMANDS: Dict[str, Callable[[], object]] = {
    "fig4": figures.fig4,
    "fig5": figures.fig5,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "fig14": figures.fig14,
    "ext-baselines": extensions.ext_baselines,
    "ext-recycling": extensions.ext_recycling_modes,
    "ext-burstthr": extensions.ext_burst_threshold,
    "ext-ring": extensions.ext_ring_sweep,
    "ext-inclusive": extensions.ext_inclusive_counterfactual,
    "ext-saturation": extensions.ext_saturation,
    "ext-cachedirector": extensions.ext_cachedirector,
    "ext-mixed": extensions.ext_mixed_deployment,
    "ext-traffic": extensions.ext_traffic_realism,
}

#: Reduced-scale keyword arguments for ``figure --quick`` smoke runs.
FIGURE_QUICK_ARGS: Dict[str, Dict[str, object]] = {
    "fig4": {
        "ring_sizes": (64, 1024),
        "duration_us": 500.0,
        "max_duration_us": 4000.0,
        "include_1way": False,
    },
    "fig5": {"ring_size": 256, "num_bursts": 2, "burst_period_ms": 1.0},
    "fig9": {"ring_size": 256},
    "fig10": {"ring_size": 256, "include_static": False, "corun_rates": (25.0,)},
    "fig11": {"ring_size": 256},
    "fig12": {"ring_size": 256, "include_corun": False},
    "fig13": {"ring_size": 256, "duration_us": 500.0},
    "fig14": {"thresholds_mtps": (10.0, 50.0, 100.0), "ring_size": 256},
    "ext-baselines": {"ring_size": 256},
    "ext-recycling": {"ring_size": 128},
    "ext-burstthr": {"thresholds_gbps": (10.0,), "ring_size": 256},
    "ext-ring": {"ring_sizes": (128, 256)},
    "ext-inclusive": {"ring_size": 256},
    "ext-saturation": {"rates_gbps": (10.0, 16.0), "duration_us": 1000.0},
    "ext-cachedirector": {"ring_size": 256},
    "ext-mixed": {"ring_size": 128},
    "ext-traffic": {"duration_us": 500.0},
}


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="idio-repro",
        description="IDIO (MICRO 2022) reproduction: experiments and figure harness",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list policies, applications, and figures")

    run_p = sub.add_parser(
        "run",
        help="run one experiment",
        parents=[_workload_parent(), _policy_parent("ddio")],
    )
    run_p.add_argument("--csv", help="export 10us timelines to CSV ('-' = stdout)")
    run_p.add_argument(
        "--timelines", action="store_true", help="print sparkline timelines"
    )

    cmp_p = sub.add_parser(
        "compare",
        help="run several policies on one workload",
        parents=[_workload_parent(), _jobs_parent(), _cache_parent()],
    )
    cmp_p.add_argument(
        "--policies",
        default="ddio,idio",
        help="comma-separated policy names (default: ddio,idio)",
    )

    fig_p = sub.add_parser(
        "figure",
        help="reproduce a paper figure / extension",
        parents=[_jobs_parent(), _cache_parent()],
    )
    fig_p.add_argument("name", choices=sorted(FIGURE_COMMANDS), help="figure id")
    fig_p.add_argument("--out", help="also write the report to this file")
    fig_p.add_argument(
        "--quick", action="store_true", help="reduced-scale smoke run"
    )

    val_p = sub.add_parser(
        "validate",
        help="run the full reproduction scorecard (paper claims)",
        parents=[_jobs_parent(), _cache_parent()],
    )
    val_p.add_argument(
        "--quick", action="store_true", help="reduced scale (~3x faster)"
    )

    faults_p = sub.add_parser(
        "faults",
        help="run the fault-injection degradation matrix "
        "(policy x fault layer x intensity)",
        parents=[
            _workload_parent(),
            _jobs_parent(),
            _cache_parent(),
            _scenario_parent(),
        ],
    )
    faults_p.add_argument(
        "--policies",
        default="ddio,idio",
        help="comma-separated policy names (default: %(default)s)",
    )
    faults_p.add_argument(
        "--layers",
        default="nic,pcie,mem,cpu",
        help="comma-separated fault layers (from nic,pcie,mem,cpu,all; "
        "default: %(default)s)",
    )
    faults_p.add_argument(
        "--intensities",
        default="0,0.5,1",
        help="comma-separated probability scale factors; 0 is the "
        "fault-free baseline row (default: %(default)s)",
    )
    faults_p.add_argument(
        "--checked",
        action="store_true",
        help="attach the invariant sanitizer to every faulted run",
    )
    faults_p.add_argument(
        "--quick", action="store_true", help="reduced-scale smoke matrix"
    )
    faults_p.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="S",
        help="per-experiment wall-clock budget (pooled runs enforce it)",
    )
    faults_p.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts for crashed experiments (default: %(default)s)",
    )
    faults_p.add_argument(
        "--out", help="write the sweep's failure manifest JSON to this file"
    )

    check_p = sub.add_parser(
        "check",
        help="run the correctness gate: checked-mode (invariant sanitizer) "
        "runs plus a dual-run determinism digest comparison",
    )
    check_p.add_argument(
        "--quick", action="store_true", help="reduced-scale runs (for CI)"
    )
    check_p.add_argument(
        "--policies",
        default="ddio,idio",
        help="comma-separated policies to run in checked mode "
        "(default: %(default)s)",
    )
    check_p.add_argument(
        "--barrier-interval",
        type=_positive_int,
        default=1024,
        metavar="N",
        help="transactions between structural-barrier sweeps "
        "(default: %(default)s)",
    )

    rack_p = sub.add_parser(
        "rack",
        help="run a rack-scale sweep: a ToR load balancer steering flows "
        "across N simulated servers",
        parents=[
            _jobs_parent(),
            _policy_parent("ddio"),
            _cache_parent(),
            _scenario_parent(),
        ],
    )
    rack_p.add_argument(
        "--servers",
        type=_positive_int,
        default=4,
        metavar="N",
        help="servers behind the ToR switch (default: %(default)s)",
    )
    rack_p.add_argument(
        "--flows",
        type=_positive_int,
        default=8192,
        metavar="N",
        help="concurrent flows the ToR flow table steers (default: %(default)s)",
    )
    rack_p.add_argument(
        "--steering",
        choices=("rss", "rendezvous"),
        default="rss",
        help="flow-to-server steering mode (default: %(default)s)",
    )
    rack_p.add_argument(
        "--profile",
        choices=("steady", "poisson", "imix", "heavytail", "diurnal"),
        default="heavytail",
        help="rack traffic profile (default: %(default)s)",
    )
    rack_p.add_argument(
        "--rate",
        type=float,
        default=100.0,
        help="aggregate offered load across the rack in Gbps (default: %(default)s)",
    )
    rack_p.add_argument(
        "--duration-us",
        type=float,
        default=200.0,
        help="traffic duration per server (default: %(default)s)",
    )
    rack_p.add_argument(
        "--seed", type=int, default=0, help="rack master seed (default: %(default)s)"
    )
    rack_p.add_argument(
        "--checked",
        action="store_true",
        help="attach the invariant sanitizer to every server",
    )
    rack_p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="export per-server lanes as a Chrome-trace JSON",
    )
    rack_p.add_argument(
        "--out", metavar="PATH", help="write the rack summary JSON to this file"
    )

    tenants_p = sub.add_parser(
        "tenants",
        help="run the multi-tenant isolation matrix "
        "(policy x tenant mix x aggressor intensity)",
        parents=[_jobs_parent(), _cache_parent(), _scenario_parent()],
    )
    tenants_p.set_defaults(tenants=2)
    tenants_p.add_argument(
        "--policies",
        default="ddio,idio,ioca",
        help="comma-separated policy names (default: %(default)s)",
    )
    tenants_p.add_argument(
        "--intensities",
        default="0.25,1,2",
        help="comma-separated aggressor intensities; the lowest is each "
        "policy's isolation baseline (default: %(default)s)",
    )
    tenants_p.add_argument(
        "--seed",
        type=int,
        default=1234,
        help="tenant-set sweep seed (default: %(default)s)",
    )
    tenants_p.add_argument(
        "--duration-us",
        type=float,
        default=200.0,
        help="traffic duration per cell (default: %(default)s)",
    )
    tenants_p.add_argument(
        "--checked",
        action="store_true",
        help="attach the invariant sanitizer (way-quota conservation) "
        "to every cell",
    )
    tenants_p.add_argument(
        "--trace-out",
        metavar="PATH",
        help="export per-tenant degradation curves as a Chrome-trace JSON",
    )
    tenants_p.add_argument(
        "--out", metavar="PATH", help="write the sweep summary JSON to this file"
    )

    cache_p = sub.add_parser(
        "cache",
        help="inspect and maintain the result cache (stats / verify / gc)",
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser(
        "stats",
        help="entry count, bytes, versions, traffic",
        parents=[_cache_parent()],
    )
    verify_p = cache_sub.add_parser(
        "verify",
        help="validate every entry and re-run a sampled subset; evict "
        "corrupt or diverging entries",
        parents=[_cache_parent()],
    )
    verify_p.add_argument(
        "--sample",
        type=_positive_int,
        default=None,
        metavar="N",
        help="re-run at most N entries (default: all)",
    )
    verify_p.add_argument(
        "--seed", type=int, default=0, help="sampling seed (default: %(default)s)"
    )
    verify_p.add_argument(
        "--checked",
        action="store_true",
        help="re-run the sample with the invariant sanitizer attached",
    )
    verify_p.add_argument(
        "--no-evict",
        action="store_true",
        help="report corrupt/mismatched entries without deleting them",
    )
    gc_p = cache_sub.add_parser(
        "gc",
        help="evict foreign-version, stale, and over-budget entries",
        parents=[_cache_parent()],
    )
    gc_p.add_argument(
        "--max-bytes",
        type=_positive_int,
        default=None,
        metavar="N",
        help="evict oldest entries until the cache fits in N bytes",
    )
    gc_p.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="D",
        help="evict entries older than D days",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the sweep daemon: answer repeated sweeps from the warm "
        "result cache over a local socket",
        parents=[_jobs_parent(), _cache_parent()],
    )
    serve_p.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="Unix-domain socket path to listen on",
    )
    serve_p.add_argument(
        "--max-requests",
        type=_positive_int,
        default=None,
        metavar="N",
        help="exit after N requests (default: run until a shutdown request)",
    )

    trace_p = sub.add_parser(
        "trace",
        help="run the reference burst experiment with per-hop tracing and "
        "export a Chrome-trace (Perfetto) JSON",
    )
    trace_p.add_argument(
        "--out", default="idio-trace.json", help="output path (default: %(default)s)"
    )
    trace_p.add_argument("--policy", default="idio", help="placement policy name")
    trace_p.add_argument(
        "--rate", type=float, default=100.0, help="burst rate in Gbps"
    )
    trace_p.add_argument("--ring", type=int, default=1024, help="RX ring size")
    trace_p.add_argument(
        "--max-events",
        type=_positive_int,
        default=2_000_000,
        metavar="N",
        help="recorder event cap (default: %(default)s)",
    )

    return parser


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}"
        )
    return value


def _jobs_parent() -> argparse.ArgumentParser:
    """Shared ``--jobs`` vocabulary (parent parser, no help of its own)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the experiment sweep (1 = serial)",
    )
    return p


def _policy_parent(default: str) -> argparse.ArgumentParser:
    """Shared ``--policy`` vocabulary with a per-subcommand default."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--policy", default=default, help="placement policy name")
    return p


def _cache_parent() -> argparse.ArgumentParser:
    """Shared result-cache vocabulary (``docs/caching.md``).

    ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) turns caching on for the
    invocation; ``--no-cache`` forces every experiment to recompute even
    when the environment variable is set.  ``harness.*`` fault plans
    force-miss regardless (the cache refuses to memoize them).
    """
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR if set, "
        "else caching is off)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this invocation",
    )
    return p


def _scenario_parent() -> argparse.ArgumentParser:
    """Shared multi-tenant scenario vocabulary (``tenants``/``faults``/``rack``).

    ``--tenants 0`` (the default everywhere but the ``tenants``
    subcommand) means single-tenant: no :class:`TenantSet` is attached
    and the flags are inert.  With ``--tenants N`` the named mix from
    :data:`repro.tenants.scenarios.TENANT_MIXES` rides on every server
    config the subcommand builds, at one aggressor ``--intensity``.
    """
    from .tenants.scenarios import TENANT_MIXES

    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--tenants",
        type=int,
        default=0,
        metavar="N",
        help="co-located tenants per server (0 = single-tenant)",
    )
    p.add_argument(
        "--tenant-mix",
        choices=TENANT_MIXES,
        default="noisy-neighbor",
        help="scenario pack shaping the tenant set (default: %(default)s)",
    )
    p.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="aggressor-load scale for the tenant mix (default: %(default)s)",
    )
    return p


def _tenant_set(args: argparse.Namespace, seed: int):
    """The :class:`TenantSet` requested by the scenario flags, or ``None``."""
    if getattr(args, "tenants", 0) <= 0:
        return None
    from .tenants.scenarios import tenant_mix

    return tenant_mix(
        args.tenant_mix,
        tenants=args.tenants,
        intensity=args.intensity,
        seed=seed,
    )


def _workload_parent() -> argparse.ArgumentParser:
    """Shared workload vocabulary: every experiment-running subcommand
    accepts the same flags with the same defaults.  ``--workload`` and
    ``--app`` are the same flag (``--app`` predates the unified
    vocabulary and is kept as an alias)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--workload",
        "--app",
        dest="app",
        default="touchdrop",
        choices=sorted(APP_FACTORIES),
        help="network function to run on the NF cores",
    )
    p.add_argument("--ring", type=int, default=1024, help="RX ring size")
    p.add_argument("--packet-bytes", type=int, default=1514)
    p.add_argument(
        "--traffic", choices=("bursty", "steady"), default="bursty"
    )
    p.add_argument("--rate", type=float, default=25.0, help="Gbps (burst or per-NF)")
    p.add_argument("--bursts", type=int, default=1, help="number of bursts")
    p.add_argument(
        "--duration-us", type=float, default=1500.0, help="steady-traffic duration"
    )
    p.add_argument("--antagonist", action="store_true", help="add the LLCAntagonist")
    p.add_argument(
        "--recycle",
        choices=("run_to_completion", "copy", "reallocate"),
        default="run_to_completion",
    )
    p.add_argument("--nf-cores", type=int, default=2)
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for stochastic traffic and fault plans",
    )
    return p


def _experiment_from_args(args: argparse.Namespace, policy_name: str) -> Experiment:
    policy = policies.policy_by_name(policy_name)
    server = ServerConfig(
        policy=policy,
        app=args.app,
        ring_size=args.ring,
        packet_bytes=args.packet_bytes,
        antagonist=args.antagonist,
        recycle_mode=args.recycle,
        num_nf_cores=args.nf_cores,
    )
    return Experiment(
        name=f"cli-{policy_name}",
        server=server,
        traffic=args.traffic,
        traffic_seed=args.seed,
        burst_rate_gbps=args.rate,
        num_bursts=args.bursts,
        steady_rate_gbps_per_nf=args.rate,
        steady_duration=units.microseconds(args.duration_us),
    )


def _result_rows(results) -> List[List[object]]:
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                r.completed,
                r.rx_drops,
                r.window.mlc_writebacks,
                r.window.llc_writebacks,
                r.window.dram_writes,
                units.to_microseconds(r.burst_processing_time)
                if r.burst_processing_time
                else None,
                (r.p99_ns or 0) / 1000.0 if r.p99_ns else None,
            ]
        )
    return rows


def cmd_list(_: argparse.Namespace) -> int:
    print("Policies:")
    for name in sorted(policies.extended_policies()):
        print(f"  {name}")
    print("Applications:")
    for name in sorted(APP_FACTORIES):
        print(f"  {name}")
    print("Figures / extensions:")
    for name in sorted(FIGURE_COMMANDS):
        print(f"  {name}")
    return 0


def _eps_footer(summaries) -> str:
    """One-line wall-clock diagnostic: total simulated events and rate."""
    events = sum(s.events_fired for s in summaries)
    wall = sum(s.wall_seconds for s in summaries)
    eps = events / wall if wall > 0 else 0.0
    return f"[{events} events in {wall:.2f}s sim wall time, {eps:,.0f} events/sec]"


def cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(_experiment_from_args(args, args.policy))
    print(
        format_table(
            ["policy", "completed", "drops", "MLC WB", "LLC WB", "DRAM wr",
             "burst us", "p99 us"],
            _result_rows({args.policy: result}),
        )
    )
    if args.timelines:
        for stream in ("pcie_writes", "mlc_writebacks", "llc_writebacks"):
            print(timeline_block(stream, result.timeline(stream)))
    if args.csv:
        stats = result.server.stats
        start, end = result.window.start, result.window.end
        if args.csv == "-":
            sys.stdout.write(to_csv_string(stats, start, end))
        else:
            rows = export_csv(stats, args.csv, start, end)
            print(f"wrote {rows} rows to {args.csv}")
    print(_eps_footer([result.summary()]))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    names = [n.strip() for n in args.policies.split(",") if n.strip()]
    if not names:
        print("no policies given", file=sys.stderr)
        return 2
    summaries = run_experiments(
        [_experiment_from_args(args, name) for name in names], jobs=args.jobs
    )
    results = dict(zip(names, summaries))
    print(
        format_table(
            ["policy", "completed", "drops", "MLC WB", "LLC WB", "DRAM wr",
             "burst us", "p99 us"],
            _result_rows(results),
            title=f"{args.app} @ {args.rate:g} Gbps ({args.traffic}), ring {args.ring}",
        )
    )
    print(_eps_footer(summaries))
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    kwargs = FIGURE_QUICK_ARGS.get(args.name, {}) if args.quick else {}
    kwargs = {**kwargs, "jobs": args.jobs}
    report = FIGURE_COMMANDS[args.name](**kwargs)
    print(report.text)
    print(_eps_footer(report.results.values()))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.text + "\n")
        print(f"(report written to {args.out})")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .harness.validation import run_validation

    card = run_validation(quick=args.quick, jobs=args.jobs)
    print(card.render())
    return 0 if card.all_passed else 1


def cmd_check(args: argparse.Namespace) -> int:
    """Correctness gate: invariant-sanitizer runs + determinism digest.

    Two halves, mirroring the paper-reproduction requirements: (1) each
    requested policy runs end to end with ``checked_mode=True`` so the
    :class:`~repro.analysis.sanitizer.InvariantSanitizer` asserts the
    hierarchy invariants on every transaction and at barriers; (2) the
    reference workload runs twice and the two summary fingerprints must
    hash identically (the guarantee the process-pool runner relies on).
    Exits non-zero on the first class of failure encountered.
    """
    from .analysis import fingerprint_digest
    from .analysis.sanitizer import InvariantViolation
    from .harness.runner import run_experiment_summary

    names = [n.strip() for n in args.policies.split(",") if n.strip()]
    if not names:
        print("no policies given", file=sys.stderr)
        return 2
    rate = 25.0 if args.quick else 100.0
    ring = 256 if args.quick else 1024
    failures = 0

    # Stage 0: static analysis.  In a source checkout the simlint
    # whole-program engine (tools/simlint, SIM001-SIM015) lints the repro
    # package itself; installed contexts without the tools/ tree skip
    # with a notice rather than failing (the CI gate runs the full
    # battery through tools/analyze.py regardless).
    try:
        from tools.simlint import lint_project
        from tools.simlint.output import (
            DEFAULT_BASELINE,
            apply_baseline,
            load_baseline,
        )
    except ImportError:
        print("skip static: tools.simlint not importable (installed package)")
    else:
        from pathlib import Path

        package_dir = Path(__file__).resolve().parent
        try:
            lint_target = package_dir.relative_to(Path.cwd())
        except ValueError:
            lint_target = package_dir
        violations = lint_project([str(lint_target)])
        entries = load_baseline(DEFAULT_BASELINE) if DEFAULT_BASELINE.is_file() else []
        reported, suppressed, _stale = apply_baseline(violations, entries)
        if reported:
            for v in reported:
                print(f"FAIL static: {v.render()}")
            failures += 1
        else:
            note = f" ({len(suppressed)} baselined)" if suppressed else ""
            print(f"ok   static: simlint clean{note}")

    def make_experiment(policy_name: str, checked: bool) -> Experiment:
        server = ServerConfig(
            policy=policies.policy_by_name(policy_name),
            ring_size=ring,
            checked_mode=checked,
            checked_barrier_interval=args.barrier_interval,
        )
        return Experiment(
            name=f"check-{policy_name}",
            server=server,
            traffic="bursty",
            burst_rate_gbps=rate,
        )

    for name in names:
        try:
            result = run_experiment(make_experiment(name, checked=True))
            sanitizer = result.server.sanitizer
            assert sanitizer is not None
            sanitizer.check_all()
        except InvariantViolation as exc:
            print(f"FAIL sanitizer[{name}]: {exc}")
            failures += 1
            continue
        print(f"ok   sanitizer[{name}]: {sanitizer.summary_line()}")

    reference = make_experiment(names[0], checked=False)
    digests = [
        fingerprint_digest(run_experiment_summary(reference)) for _ in range(2)
    ]
    if digests[0] != digests[1]:
        print(
            "FAIL determinism: repeated runs diverged "
            f"({digests[0][:16]}... != {digests[1][:16]}...)"
        )
        failures += 1
    else:
        print(f"ok   determinism: digest {digests[0][:16]}... (two runs)")

    if failures:
        print(f"check: {failures} failure(s)")
        return 1
    print("check: all clean")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run the degradation matrix: policy x fault layer x intensity.

    Each cell runs the shared workload under a
    :func:`~repro.faults.plan.standard_plan` for one fault layer with the
    per-event fault probabilities scaled by the cell's intensity
    (intensity 0 is the fault-free baseline, run once per policy).  The
    sweep goes through the resilient runner, so a crashed or wedged cell
    is reported in the failure manifest instead of killing the matrix,
    and the exit code reflects any losses.
    """
    import json

    from .faults import FAULT_LAYERS, FaultPlan, standard_plan
    from .harness.runner import run_sweep

    names = [n.strip() for n in args.policies.split(",") if n.strip()]
    layers = [l.strip() for l in args.layers.split(",") if l.strip()]
    try:
        intensities = [float(x) for x in args.intensities.split(",") if x.strip()]
    except ValueError:
        print(f"invalid --intensities {args.intensities!r}", file=sys.stderr)
        return 2
    if not names or not layers or not intensities:
        print("empty --policies / --layers / --intensities", file=sys.stderr)
        return 2
    known = set(FAULT_LAYERS) | {"all"}
    unknown = [l for l in layers if l not in known]
    if unknown:
        print(f"unknown fault layers {unknown}; choose from {sorted(known)}",
              file=sys.stderr)
        return 2

    ring = 128 if args.quick else args.ring
    rate = min(args.rate, 50.0) if args.quick else args.rate
    tenant_set = _tenant_set(args, args.seed)

    def make_experiment(policy_name: str, label: str, plan: FaultPlan) -> Experiment:
        server = ServerConfig(
            policy=policies.policy_by_name(policy_name),
            app=args.app,
            ring_size=ring,
            packet_bytes=args.packet_bytes,
            antagonist=args.antagonist,
            recycle_mode=args.recycle,
            num_nf_cores=(
                tenant_set.total_nf_cores if tenant_set is not None
                else args.nf_cores
            ),
            checked_mode=args.checked,
            fault_plan=plan,
            tenants=tenant_set,
        )
        return Experiment(
            name=f"faults-{policy_name}-{label}",
            server=server,
            traffic=args.traffic,
            traffic_seed=args.seed,
            burst_rate_gbps=rate,
            steady_rate_gbps_per_nf=rate,
            steady_duration=units.microseconds(args.duration_us),
        )

    cells: List[tuple] = []  # (policy, layer label, intensity, Experiment)
    for policy_name in names:
        if any(i == 0 for i in intensities):
            cells.append(
                (policy_name, "none", 0.0,
                 make_experiment(policy_name, "baseline", FaultPlan()))
            )
        for layer in layers:
            for intensity in intensities:
                if intensity == 0:
                    continue
                plan = standard_plan(layer, intensity, seed=args.seed)
                cells.append(
                    (policy_name, layer, intensity,
                     make_experiment(policy_name, f"{layer}-{intensity:g}", plan))
                )

    sweep = run_sweep(
        [exp for (_, _, _, exp) in cells],
        jobs=args.jobs,
        timeout_s=args.timeout_s,
        retries=args.retries,
    )

    rows: List[List[object]] = []
    for (policy_name, layer, intensity, _), summary, record in zip(
        cells, sweep.summaries, sweep.records
    ):
        if summary is None:
            rows.append([policy_name, layer, f"{intensity:g}", record.status,
                         None, None, None, None])
            continue
        rows.append(
            [
                policy_name,
                layer,
                f"{intensity:g}",
                record.status,
                summary.completed,
                summary.rx_drops,
                (summary.p99_ns or 0) / 1000.0 if summary.p99_ns else None,
                sum(summary.fault_counts.values()),
            ]
        )
    print(
        format_table(
            ["policy", "layer", "intensity", "status", "completed", "drops",
             "p99 us", "faults"],
            rows,
            title=f"degradation matrix: {args.app} @ {rate:g} Gbps, ring {ring}",
        )
    )
    counts = ", ".join(f"{k}={v}" for k, v in sorted(sweep.counts().items()))
    print(f"[{len(sweep.records)} cells: {counts}]")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(sweep.failure_manifest(), fh, indent=2)
            fh.write("\n")
        print(f"(failure manifest written to {args.out})")
    return sweep.exit_code


def cmd_rack(args: argparse.Namespace) -> int:
    """Run one rack sweep and print the per-server + aggregate table.

    With ``--trace-out`` a :class:`~repro.obs.trace.RackTraceRecorder`
    subscribes to the rack bus before the sweep, so every server shows up
    as its own Chrome-trace process with counter lanes per stream.
    """
    import json

    from .obs.trace import RackTraceRecorder
    from .rack import RackConfig, SimulatedRack

    tenant_set = _tenant_set(args, args.seed)
    config = RackConfig(
        name="cli-rack",
        num_servers=args.servers,
        server=ServerConfig(
            policy=policies.policy_by_name(args.policy),
            checked_mode=args.checked,
            num_nf_cores=(
                tenant_set.total_nf_cores if tenant_set is not None else 2
            ),
            tenants=tenant_set,
        ),
        total_flows=args.flows,
        steering=args.steering,
        traffic=args.profile,
        offered_gbps=args.rate,
        duration_us=args.duration_us,
        seed=args.seed,
    )
    rack = SimulatedRack(config)
    recorder = None
    if args.trace_out:
        recorder = RackTraceRecorder()
        recorder.attach(rack.bus)
    summary = rack.run(jobs=args.jobs)
    print(summary.render())
    print(f"rack fingerprint: {summary.fingerprint}")
    print(
        f"[{summary.events_fired} events in {summary.wall_seconds:.2f}s "
        "sim wall time]"
    )
    if recorder is not None:
        events = recorder.export(args.trace_out)
        print(f"wrote {events} trace events to {args.trace_out}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(summary.to_json(), fh, indent=2)
            fh.write("\n")
        print(f"(rack summary written to {args.out})")
    return 0


def cmd_tenants(args: argparse.Namespace) -> int:
    """Run the multi-tenant isolation matrix and print it.

    Cells (policy x aggressor intensity over one scenario pack) fan out
    through the resilient sweep runner, so they shard over the warm pool
    (``--jobs``) and memoize in the result cache; the footer scores each
    policy's worst victim-p99 degradation.  With ``--trace-out`` a
    :class:`~repro.obs.trace.TenantTraceRecorder` captures the
    per-tenant degradation curves as a Chrome trace.
    """
    import json

    from .obs.bus import EventBus
    from .obs.trace import TenantTraceRecorder
    from .tenants.sweep import run_tenants

    names = [n.strip() for n in args.policies.split(",") if n.strip()]
    if not names:
        print("no policies given", file=sys.stderr)
        return 2
    if args.tenants < 1:
        print("--tenants must be at least 1", file=sys.stderr)
        return 2
    try:
        configs = [policies.policy_by_name(name) for name in names]
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        intensities = [float(x) for x in args.intensities.split(",") if x.strip()]
    except ValueError:
        print(f"invalid --intensities {args.intensities!r}", file=sys.stderr)
        return 2
    if not intensities:
        print("empty --intensities", file=sys.stderr)
        return 2

    bus = None
    recorder = None
    if args.trace_out:
        bus = EventBus()
        recorder = TenantTraceRecorder().attach(bus)
    summary = run_tenants(
        configs,
        mix=args.tenant_mix,
        tenants=args.tenants,
        intensities=intensities,
        seed=args.seed,
        duration_us=args.duration_us,
        jobs=args.jobs,
        checked=args.checked,
        bus=bus,
    )
    print(summary.render())
    print(f"sweep fingerprint: {summary.fingerprint}")
    if recorder is not None:
        events = recorder.export(args.trace_out)
        recorder.detach()
        print(f"wrote {events} trace events to {args.trace_out}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(summary.to_json(), fh, indent=2)
            fh.write("\n")
        print(f"(sweep summary written to {args.out})")
    return summary.exit_code


def cmd_trace(args: argparse.Namespace) -> int:
    """Run the reference burst experiment with tracing; export Chrome JSON.

    The workload mixes a class-0 app (TouchDrop: DDIO fills + MLC
    steering) with a class-1 app (L2FwdPayloadDrop: selective direct-DRAM
    placement), so under the ``idio`` policy all four mechanism
    categories show up in one trace.
    """
    policy = policies.policy_by_name(args.policy)
    server = ServerConfig(
        policy=policy,
        apps=["touchdrop", "l2fwd-payload-drop"],
        num_nf_cores=2,
        ring_size=args.ring,
        trace_enabled=True,
        trace_max_events=args.max_events,
    )
    experiment = Experiment(
        name=f"trace-{args.policy}",
        server=server,
        traffic="bursty",
        burst_rate_gbps=args.rate,
    )
    result = run_experiment(experiment)
    assert result.server is not None
    recorder = result.server.trace_recorder
    assert recorder is not None
    events = recorder.export(args.out)
    print(recorder.summary_line())
    breakdown = recorder.latency_breakdown_ns()
    if breakdown:
        parts = ", ".join(f"{k}={v:.1f}" for k, v in breakdown.items())
        print(f"latency breakdown: {parts}")
    print(f"wrote {events} trace events to {args.out}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Result-cache maintenance: ``stats`` / ``verify`` / ``gc``."""
    from . import cache as cache_mod

    root = args.cache_dir or cache_mod.default_cache_dir()
    cache = cache_mod.ResultCache(root)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache root:  {stats['root']}")
        print(f"entries:     {stats['entries']}")
        print(f"bytes:       {stats['bytes']}")
        for version, count in stats["versions"].items():
            print(f"  version {version}: {count} entries")
        return 0
    if args.cache_command == "verify":
        report = cache.verify(
            sample=args.sample,
            seed=args.seed,
            checked=args.checked,
            evict=not args.no_evict,
        )
        print(
            f"verified {report.sampled}/{report.entries} entries: "
            f"{report.verified_ok} ok, {len(report.corrupt)} corrupt, "
            f"{len(report.mismatched)} mismatched, {report.evicted} evicted"
        )
        for digest in report.corrupt:
            print(f"  corrupt:    {digest}")
        for digest in report.mismatched:
            print(f"  mismatched: {digest}")
        return 0 if report.clean else 1
    if args.cache_command == "gc":
        report = cache.gc(
            max_bytes=args.max_bytes, max_age_days=args.max_age_days
        )
        print(
            f"gc: {report.entries_before} -> {report.entries_after} entries "
            f"({report.bytes_before} -> {report.bytes_after} bytes); evicted "
            f"{report.evicted_foreign} foreign, {report.evicted_stale} stale, "
            f"{report.evicted_over_budget} over budget"
        )
        return 0
    raise AssertionError(f"unhandled cache command {args.cache_command!r}")


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the sweep daemon (``repro.cache.serve``) until shutdown."""
    from . import cache as cache_mod
    from .cache.serve import run_serve

    root = args.cache_dir or cache_mod.default_cache_dir()
    cache = None if args.no_cache else cache_mod.ResultCache(root)
    print(f"serving on {args.socket} (cache: {root if cache else 'off'})")
    served = run_serve(
        args.socket,
        cache=cache,
        cache_dir=root,
        jobs=args.jobs,
        max_requests=args.max_requests,
    )
    print(f"served {served} request(s)")
    return 0


def _install_cache(args: argparse.Namespace):
    """Install the invocation's default result cache from CLI flags.

    Returns ``(cache, restore)`` where ``restore()`` undoes the install;
    caching stays off unless ``--cache-dir`` or ``$REPRO_CACHE_DIR``
    names a directory, and ``--no-cache`` wins over both.
    """
    import os

    from . import cache as cache_mod

    if getattr(args, "no_cache", False):
        previous = cache_mod.set_default_cache(None)
        return None, lambda: cache_mod.set_default_cache(previous)
    root = getattr(args, "cache_dir", None) or os.environ.get(
        cache_mod.CACHE_DIR_ENV
    )
    if not root:
        return None, lambda: None
    cache = cache_mod.ResultCache(root)
    previous = cache_mod.set_default_cache(cache)
    return cache, lambda: cache_mod.set_default_cache(previous)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "compare": cmd_compare,
        "figure": cmd_figure,
        "validate": cmd_validate,
        "check": cmd_check,
        "rack": cmd_rack,
        "trace": cmd_trace,
        "faults": cmd_faults,
        "tenants": cmd_tenants,
        "cache": cmd_cache,
        "serve": cmd_serve,
    }
    cache, restore = (None, lambda: None)
    if args.command not in ("cache", "serve"):
        cache, restore = _install_cache(args)
    try:
        code = handlers[args.command](args)
        if cache is not None and (cache.hits or cache.misses):
            print(
                f"[cache: {cache.hits} hits, {cache.misses} misses, "
                f"{cache.stores} stores @ {cache.root}]"
            )
        return code
    finally:
        restore()
        # Every parallel sweep in the invocation shared one warm pool;
        # drain it on the way out (idempotent when nothing spawned).
        shutdown_pool()


if __name__ == "__main__":
    raise SystemExit(main())
