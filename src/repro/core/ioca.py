"""An IOCA-style multi-tenant I/O way-partitioning controller.

IOCA ("High-Speed I/O-Aware LLC Management for Network-Centric
Multi-Tenant Platform", PAPERS.md) attacks the problem IDIO leaves open:
co-located tenants share one DDIO partition, so one tenant's inbound
burst evicts another's I/O lines and blows up its tail latency.  The
controller here is our reconstruction of that idea's control loop, not a
port of any artifact:

* every tenant owns a private slice of the DDIO partition
  (:meth:`~repro.mem.llc.NonInclusiveLLC.set_tenant_io_ways`), so DMA
  write-allocates can only evict the owner's lines;
* each epoch it samples per-tenant DMA rates off the event bus
  (:class:`~repro.obs.events.TenantDmaEvent`) and reapportions the
  ways above each tenant's quota floor toward the tenants actually
  moving inbound data, weighted by priority class.

Apportionment is deterministic (largest remainder, tenant-id
tie-break), so runs fingerprint identically across processes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..mem.hierarchy import MemoryHierarchy
from ..obs.events import TenantDmaEvent
from ..sim import PeriodicTask, Simulator, units
from ..tenants.config import TenantSet

#: Priority-class weights applied to sampled DMA rates before
#: apportionment: latency-class tenants win contended ways first.
PRIORITY_WEIGHTS = {"latency": 2.0, "normal": 1.0, "bulk": 0.5}


class IOCAController:
    """Epoch-based per-tenant DDIO way reapportionment."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: MemoryHierarchy,
        tenants: TenantSet,
        interval: int = units.microseconds(10),
    ) -> None:
        llc = hierarchy.llc
        budget = llc.ddio_ways
        floors = [t.llc_way_quota for t in tenants]
        if sum(floors) > budget:
            raise ValueError(
                f"tenant way quotas sum to {sum(floors)} but the DDIO "
                f"partition has only {budget} ways"
            )
        self.sim = sim
        self.hierarchy = hierarchy
        self.tenants = tenants
        self._floors = floors
        self._counts: Dict[int, int] = {t.tenant_id: 0 for t in tenants}
        #: way-count vector applied at each reallocation epoch.
        self.reallocations: List[Tuple[int, ...]] = []
        # Initial allocation: quota-proportional over the full budget.
        self._apply(self._apportion([float(f) for f in floors]))
        hierarchy.bus.subscribe(TenantDmaEvent, self._on_tenant_dma)
        self._task = PeriodicTask(sim, interval, self._tick, "ioca-control")

    # -- sampling -------------------------------------------------------

    def _on_tenant_dma(self, event: TenantDmaEvent) -> None:
        self._counts[event.tenant] = self._counts.get(event.tenant, 0) + 1

    # -- apportionment --------------------------------------------------

    def _apportion(self, weights: Sequence[float]) -> List[int]:
        """Way counts per tenant: quota floors + largest-remainder spread.

        Each tenant keeps its ``llc_way_quota`` floor; the ways above the
        floors are split proportionally to ``weights`` with deterministic
        largest-remainder rounding (ties broken by tenant id).
        """
        budget = self.hierarchy.llc.ddio_ways
        floors = self._floors
        spare = budget - sum(floors)
        total = sum(weights)
        if total <= 0:
            weights = [1.0] * len(floors)
            total = float(len(floors))
        quotas = [w / total * spare for w in weights]
        extra = [int(q) for q in quotas]
        leftover = spare - sum(extra)
        order = sorted(
            range(len(floors)), key=lambda i: (-(quotas[i] - extra[i]), i)
        )
        for i in order[:leftover]:
            extra[i] += 1
        return [f + e for f, e in zip(floors, extra)]

    def _apply(self, counts: Sequence[int]) -> None:
        """Install contiguous per-tenant way masks in tenant order."""
        llc = self.hierarchy.llc
        start = 0
        for tenant, count in zip(self.tenants, counts):
            llc.set_tenant_io_ways(tenant.tenant_id, range(start, start + count))
            start += count
        self.reallocations.append(tuple(counts))

    def _tick(self) -> None:
        weights = []
        for tenant in self.tenants:
            count = self._counts.get(tenant.tenant_id, 0)
            self._counts[tenant.tenant_id] = 0
            weights.append(PRIORITY_WEIGHTS[tenant.priority] * (count + 1.0))
        counts = self._apportion(weights)
        if not self.reallocations or tuple(counts) != self.reallocations[-1]:
            self._apply(counts)

    # -- teardown -------------------------------------------------------

    def current_allocation(self) -> Tuple[int, ...]:
        """The way-count vector currently in force (tenant order)."""
        return self.reallocations[-1] if self.reallocations else ()

    def stop(self) -> None:
        self._task.stop()
        self.hierarchy.bus.unsubscribe(TenantDmaEvent, self._on_tenant_dma)
