"""IDIO configuration knobs (paper defaults from §V/§VI)."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import units


@dataclass
class IDIOConfig:
    """Tunables of the IDIO controller, classifier, and MLC prefetcher.

    Defaults are the values the paper selects experimentally (§VI) and
    sweeps in its sensitivity analysis (Fig. 14).
    """

    #: Control-plane sampling interval for mlcWB (Alg. 1: 1 us).
    control_interval: int = units.microseconds(1)
    #: Number of consecutive 1 us samples accumulated into mlcWBAvg
    #: (Alg. 1: 8192, i.e. the average window is 8192 us).
    average_window_samples: int = 8192
    #: mlcTHR, MLC-writeback pressure threshold.  The paper quotes it as
    #: 50 million transactions/second; at a 1 us sampling interval that is
    #: 50 transactions per sample.
    mlc_threshold_mtps: float = 50.0
    #: rxBurstTHR for the NIC-side classifier (paper: 10 Gbps).
    rx_burst_threshold_gbps: float = 10.0
    #: MLC prefetcher queue depth (§V-C: 32 requests).
    prefetch_queue_depth: int = 32
    #: Prefetcher service time per line (LLC->MLC move issue rate).  At
    #: ~6 ns/line the prefetcher sustains ~166 lines/us — enough to cover
    #: a 25 Gbps burst (~50 lines/us) but below the 100 Gbps DMA rate,
    #: bounding how fast steering can flood an MLC.
    prefetch_service_time: int = units.nanoseconds(6)
    #: Use the CPU-pointer-following prefetcher (§VII future work): hints
    #: more than ``prefetch_max_ahead`` ring slots ahead of the consumer
    #: are held back instead of flooding the MLC.
    prefetch_regulated: bool = False
    prefetch_max_ahead: int = 64
    #: Maximum cores the controller tracks (the TLP encoding allows 63).
    num_cores: int = 63

    @property
    def mlc_threshold_per_interval(self) -> float:
        """mlcTHR expressed in writebacks per control interval (Alg. 1)."""
        return self.mlc_threshold_mtps * 1e6 * (self.control_interval / units.SECOND)

    def validate(self) -> None:
        if self.control_interval <= 0:
            raise ValueError("control_interval must be positive")
        if self.average_window_samples <= 0:
            raise ValueError("average_window_samples must be positive")
        if self.mlc_threshold_mtps < 0:
            raise ValueError("mlc_threshold_mtps must be non-negative")
        if self.prefetch_queue_depth <= 0:
            raise ValueError("prefetch_queue_depth must be positive")
        if not 0 < self.num_cores <= 63:
            raise ValueError("num_cores must be in 1..63 (6-bit TLP encoding)")
