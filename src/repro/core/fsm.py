"""The per-core status FSM of Fig. 8.

A 2-bit saturating counter decides whether inbound DMA for a core is
steered to its MLC or stays in the LLC:

* default/reset-on-boot state is ``0b11`` — MLC prefetching *disabled*
  (status = LLC);
* a detected RX burst forces the state to ``0b00`` — prefetching enabled
  (status = MLC);
* every control interval, high MLC pressure (``mlcPress``) increments the
  counter and low pressure decrements it, saturating at both ends;
* only the saturated ``0b11`` state disables prefetching — the counter's
  hysteresis keeps short pressure spikes from flapping the steering.
"""

from __future__ import annotations

STATE_MIN = 0b00
STATE_MAX = 0b11

STATUS_MLC = 1
STATUS_LLC = 0


class StatusFSM:
    """One core's 2-bit saturating steering FSM."""

    def __init__(self) -> None:
        self.state = STATE_MAX  # prefetching disabled by default

    @property
    def status(self) -> int:
        """The 1-bit status register: 1 -> MLC steering, 0 -> LLC."""
        return STATUS_LLC if self.state == STATE_MAX else STATUS_MLC

    @property
    def steers_to_mlc(self) -> bool:
        return self.status == STATUS_MLC

    def on_burst(self) -> None:
        """A burst arrival resets the FSM to 0b00 (Alg. 1 line 3)."""
        self.state = STATE_MIN

    def on_pressure(self, high: bool) -> None:
        """One control-interval update: saturating inc/dec on mlcPress."""
        if high:
            if self.state < STATE_MAX:
                self.state += 1
        else:
            if self.state > STATE_MIN:
                self.state -= 1

    def __repr__(self) -> str:
        return f"<StatusFSM state={self.state:#04b} status={'MLC' if self.steers_to_mlc else 'LLC'}>"
