"""The IDIO controller (§V-B): data plane + control plane of Alg. 1.

The controller sits at the PCIe root complex.  For every inbound DMA write
it receives the classifier tag decoded from the TLP's reserved bits and
decides the placement:

* header line  -> LLC placement **plus** a prefetch hint to the target
  core's MLC prefetcher (headers always have short use distance);
* application class 1 -> direct DRAM write (selective direct DRAM access);
* status[destCore] == MLC -> LLC placement plus a prefetch hint;
* otherwise -> plain DDIO LLC placement.

The control plane samples each core's MLC writeback count every 1 us,
compares it against the running average (``mlcWBAvg`` over 8192 samples)
plus ``mlcTHR``, and walks the per-core FSM of Fig. 8.

A ``static`` mode pins every FSM's status register to MLC — this is the
"Static" configuration of Fig. 9/10.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mem.hierarchy import MemoryHierarchy
from ..obs.events import MlcWritebackEvent
from ..pcie.tlp import IdioTag
from ..sim import PeriodicTask, Simulator
from .config import IDIOConfig
from .fsm import StatusFSM
from .prefetcher import MLCPrefetcher, RegulatedMLCPrefetcher


class IDIOController:
    """Per-socket IDIO controller instance."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: MemoryHierarchy,
        config: Optional[IDIOConfig] = None,
        static_mlc: bool = False,
        prefetch_enabled: bool = True,
        direct_dram_enabled: bool = True,
    ) -> None:
        self.sim = sim
        self.hierarchy = hierarchy
        self.config = config or IDIOConfig()
        self.config.validate()
        self.static_mlc = static_mlc
        self.prefetch_enabled = prefetch_enabled
        self.direct_dram_enabled = direct_dram_enabled

        n = hierarchy.config.num_cores
        self.fsm: List[StatusFSM] = [StatusFSM() for _ in range(n)]
        self.mlc_wb: List[int] = [0] * n  # per-interval counter (Alg. 1)
        self.mlc_wb_acc: List[int] = [0] * n  # accumulator over the window
        self.mlc_wb_avg: List[float] = [0.0] * n  # per-interval average
        self._samples_in_window = 0
        if self.config.prefetch_regulated:
            self.prefetchers: List[MLCPrefetcher] = [
                RegulatedMLCPrefetcher(
                    sim,
                    hierarchy,
                    core,
                    queue_depth=self.config.prefetch_queue_depth,
                    service_time=self.config.prefetch_service_time,
                    max_ahead_packets=self.config.prefetch_max_ahead,
                )
                for core in range(n)
            ]
        else:
            self.prefetchers = [
                MLCPrefetcher(
                    sim,
                    hierarchy,
                    core,
                    queue_depth=self.config.prefetch_queue_depth,
                    service_time=self.config.prefetch_service_time,
                )
                for core in range(n)
            ]
        #: Data-plane decision counters (diagnostics / EXPERIMENTS.md).
        self.decisions: Dict[str, int] = {
            "header_prefetch": 0,
            "direct_dram": 0,
            "mlc_prefetch": 0,
            "llc": 0,
        }

        hierarchy.bus.subscribe(MlcWritebackEvent, self._on_mlc_writeback)
        self._control_task = PeriodicTask(
            sim, self.config.control_interval, self._control_tick, "idio-control"
        )

    # ------------------------------------------------------------------
    # data plane (Alg. 1 lines 1-11)
    # ------------------------------------------------------------------

    def steer(self, tag: IdioTag, addr: int, now: int) -> str:
        """Placement decision for one DMA write; the RootComplex hook."""
        core = tag.dest_core
        if tag.is_burst and core < len(self.fsm):
            self.fsm[core].on_burst()

        if tag.is_header:
            self.decisions["header_prefetch"] += 1
            if self.prefetch_enabled and core < len(self.prefetchers):
                self.prefetchers[core].hint(addr)
            return "llc"

        if tag.app_class == 1:
            if self.direct_dram_enabled:
                self.decisions["direct_dram"] += 1
                return "dram"
            self.decisions["llc"] += 1
            return "llc"

        steer_mlc = self.static_mlc or (
            core < len(self.fsm) and self.fsm[core].steers_to_mlc
        )
        if steer_mlc and self.prefetch_enabled and core < len(self.prefetchers):
            self.decisions["mlc_prefetch"] += 1
            self.prefetchers[core].hint(addr)
            return "llc"

        self.decisions["llc"] += 1
        return "llc"

    # ------------------------------------------------------------------
    # control plane (Alg. 1 lines 13-24)
    # ------------------------------------------------------------------

    def _on_mlc_writeback(self, event: MlcWritebackEvent) -> None:
        if event.core < len(self.mlc_wb):
            self.mlc_wb[event.core] += 1

    def _control_tick(self) -> None:
        threshold = self.config.mlc_threshold_per_interval
        for core, fsm in enumerate(self.fsm):
            pressure_high = self.mlc_wb[core] > (self.mlc_wb_avg[core] + threshold)
            fsm.on_pressure(pressure_high)
            self.mlc_wb_acc[core] += self.mlc_wb[core]
            self.mlc_wb[core] = 0
        self._samples_in_window += 1
        if self._samples_in_window >= self.config.average_window_samples:
            window = self.config.average_window_samples
            for core in range(len(self.fsm)):
                self.mlc_wb_avg[core] = self.mlc_wb_acc[core] / window
                self.mlc_wb_acc[core] = 0
            self._samples_in_window = 0

    # ------------------------------------------------------------------

    def status_of(self, core: int) -> str:
        """Human-readable steering status for diagnostics."""
        if self.static_mlc:
            return "MLC"
        return "MLC" if self.fsm[core].steers_to_mlc else "LLC"

    def stop(self) -> None:
        self._control_task.stop()
        self.hierarchy.bus.unsubscribe(MlcWritebackEvent, self._on_mlc_writeback)
