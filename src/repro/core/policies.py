"""Inbound data placement policies evaluated in the paper.

Fig. 9/10 compare five configurations; each is expressed here as a
:class:`PolicyConfig` describing which IDIO mechanisms are armed:

===========  ===============  ==================  ==================
name         self-invalidate  MLC prefetching     direct DRAM (M3)
===========  ===============  ==================  ==================
DDIO         no               off                 no
Invalidate   yes              off                 no
Prefetch     no               dynamic (FSM)       no
Static       yes              always-on           no
IDIO         yes              dynamic (FSM)       yes
===========  ===============  ==================  ==================

The baseline DDIO configuration installs no controller at all: the root
complex applies the static LLC placement, exactly as today's hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from .config import IDIOConfig

#: MLC prefetch modes.
PREFETCH_OFF = "off"
PREFETCH_DYNAMIC = "dynamic"
PREFETCH_STATIC = "static"


@dataclass(frozen=True)
class PolicyConfig:
    """One inbound-placement configuration."""

    name: str
    self_invalidate: bool = False
    prefetch_mode: str = PREFETCH_OFF
    direct_dram: bool = False
    #: IAT-style dynamic DDIO-way resizing (baseline from related work;
    #: mutually exclusive with the IDIO controller mechanisms).
    dynamic_ddio_ways: bool = False
    #: CacheDirector-style header slice steering (related-work baseline;
    #: requires a sliced LLC, mutually exclusive with IDIO steering).
    slice_header_steering: bool = False
    #: Multi-tenant I/O way partitioning (IOCA-style, related work):
    #: ``"none"`` leaves the DDIO ways shared, ``"static"`` pins each
    #: tenant's quota at construction, ``"dynamic"`` installs an
    #: :class:`~repro.core.ioca.IOCAController` that reapportions ways
    #: from observed per-tenant I/O rates at epoch boundaries.  Only
    #: meaningful when ``ServerConfig.tenants`` is set.
    tenant_partitioning: str = "none"
    idio: IDIOConfig = field(default_factory=IDIOConfig)

    def __post_init__(self) -> None:
        if self.prefetch_mode not in (PREFETCH_OFF, PREFETCH_DYNAMIC, PREFETCH_STATIC):
            raise ValueError(f"unknown prefetch mode {self.prefetch_mode!r}")
        if self.dynamic_ddio_ways and (
            self.prefetch_mode != PREFETCH_OFF or self.direct_dram
        ):
            raise ValueError(
                "dynamic_ddio_ways is a standalone baseline; it cannot be "
                "combined with IDIO steering mechanisms"
            )
        if self.slice_header_steering and (
            self.prefetch_mode != PREFETCH_OFF
            or self.direct_dram
            or self.dynamic_ddio_ways
        ):
            raise ValueError(
                "slice_header_steering is a standalone baseline; it cannot "
                "be combined with IDIO or IAT mechanisms"
            )
        if self.tenant_partitioning not in ("none", "static", "dynamic"):
            raise ValueError(
                f"unknown tenant_partitioning {self.tenant_partitioning!r}; "
                "choose from ('none', 'static', 'dynamic')"
            )
        if self.tenant_partitioning != "none" and (
            self.prefetch_mode != PREFETCH_OFF
            or self.direct_dram
            or self.dynamic_ddio_ways
            or self.slice_header_steering
        ):
            raise ValueError(
                "tenant_partitioning is a standalone baseline; it cannot be "
                "combined with IDIO, IAT, or CacheDirector mechanisms"
            )

    @property
    def needs_controller(self) -> bool:
        """Whether an IDIO controller must be instantiated."""
        return self.prefetch_mode != PREFETCH_OFF or self.direct_dram

    @property
    def needs_classifier(self) -> bool:
        """Whether the NIC-side classifier must be enabled.

        Any mechanism that steers per packet needs the in-band TLP
        metadata (IDIO steering or CacheDirector's header pinning); pure
        self-invalidation is software-only.
        """
        return self.needs_controller or self.slice_header_steering

    def with_threshold(self, mlc_threshold_mtps: float) -> "PolicyConfig":
        """A copy with a different mlcTHR (the Fig. 14 sweep)."""
        return replace(self, idio=replace(self.idio, mlc_threshold_mtps=mlc_threshold_mtps))

    def with_burst_threshold(self, rx_burst_threshold_gbps: float) -> "PolicyConfig":
        """A copy with a different rxBurstTHR (extension sweep)."""
        return replace(
            self,
            idio=replace(self.idio, rx_burst_threshold_gbps=rx_burst_threshold_gbps),
        )


def ddio() -> PolicyConfig:
    """Baseline DDIO: static LLC placement, no IDIO mechanisms."""
    return PolicyConfig(name="ddio")


def invalidate_only() -> PolicyConfig:
    """Self-invalidating I/O buffers only (Fig. 9c/9d)."""
    return PolicyConfig(name="invalidate", self_invalidate=True)


def prefetch_only() -> PolicyConfig:
    """Network-driven MLC prefetching only (Fig. 9e/9f)."""
    return PolicyConfig(name="prefetch", prefetch_mode=PREFETCH_DYNAMIC)


def static_idio() -> PolicyConfig:
    """Invalidate + always-on MLC prefetching (the "Static" config)."""
    return PolicyConfig(
        name="static", self_invalidate=True, prefetch_mode=PREFETCH_STATIC
    )


def idio() -> PolicyConfig:
    """Full dynamic IDIO: all three mechanisms (M1+M2+M3)."""
    return PolicyConfig(
        name="idio",
        self_invalidate=True,
        prefetch_mode=PREFETCH_DYNAMIC,
        direct_dram=True,
    )


def regulated_idio() -> PolicyConfig:
    """IDIO with the CPU-pointer-following prefetcher (§VII future work)."""
    return PolicyConfig(
        name="idio-regulated",
        self_invalidate=True,
        prefetch_mode=PREFETCH_DYNAMIC,
        direct_dram=True,
        idio=IDIOConfig(prefetch_regulated=True),
    )


def iat() -> PolicyConfig:
    """IAT-style dynamic DDIO-way resizing baseline (related work [41])."""
    return PolicyConfig(name="iat", dynamic_ddio_ways=True)


def cachedirector() -> PolicyConfig:
    """CacheDirector-style header slice steering baseline (related work [14])."""
    return PolicyConfig(name="cachedirector", slice_header_steering=True)


def ioca() -> PolicyConfig:
    """IOCA-style dynamic per-tenant I/O way partitioning (related work).

    Installs an :class:`~repro.core.ioca.IOCAController` that samples
    per-tenant DMA rates off the event bus and reapportions the DDIO
    partition between tenants at epoch boundaries.  Requires a tenanted
    ``ServerConfig``; without tenants it degrades to plain DDIO.
    """
    return PolicyConfig(name="ioca", tenant_partitioning="dynamic")


def static_partition() -> PolicyConfig:
    """Static per-tenant I/O way quotas (the IOCA comparison baseline)."""
    return PolicyConfig(name="static-partition", tenant_partitioning="static")


def all_policies() -> Dict[str, PolicyConfig]:
    """The five Fig. 9 configurations, keyed by name."""
    configs = [ddio(), invalidate_only(), prefetch_only(), static_idio(), idio()]
    return {c.name: c for c in configs}


def extended_policies() -> Dict[str, PolicyConfig]:
    """Fig. 9 configurations plus the extension/ablation policies."""
    table = all_policies()
    for extra in (regulated_idio(), iat(), cachedirector(), ioca(), static_partition()):
        table[extra.name] = extra
    return table


def policy_by_name(name: str) -> PolicyConfig:
    table = extended_policies()
    try:
        return table[name]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; choose from {sorted(table)}") from None
