"""IDIO: the paper's contribution — classifier-driven inbound data steering."""

from .cachedirector import CacheDirectorController
from .config import IDIOConfig
from .controller import IDIOController
from .fsm import STATE_MAX, STATE_MIN, STATUS_LLC, STATUS_MLC, StatusFSM
from .iat import IATController
from .policies import (
    PREFETCH_DYNAMIC,
    PREFETCH_OFF,
    PREFETCH_STATIC,
    PolicyConfig,
    all_policies,
    cachedirector,
    ddio,
    extended_policies,
    iat,
    idio,
    invalidate_only,
    policy_by_name,
    prefetch_only,
    regulated_idio,
    static_idio,
)
from .prefetcher import MLCPrefetcher, RegulatedMLCPrefetcher

__all__ = [
    "CacheDirectorController",
    "IATController",
    "IDIOConfig",
    "IDIOController",
    "MLCPrefetcher",
    "PREFETCH_DYNAMIC",
    "PREFETCH_OFF",
    "PREFETCH_STATIC",
    "PolicyConfig",
    "RegulatedMLCPrefetcher",
    "STATE_MAX",
    "STATE_MIN",
    "STATUS_LLC",
    "STATUS_MLC",
    "StatusFSM",
    "all_policies",
    "cachedirector",
    "ddio",
    "extended_policies",
    "iat",
    "idio",
    "invalidate_only",
    "policy_by_name",
    "prefetch_only",
    "regulated_idio",
    "static_idio",
]
