"""CacheDirector-style slice steering baseline (related work, cf. [14]).

CacheDirector improves default DDIO by placing each packet's *header*
into the LLC slice closest to the core that will process it, trimming the
on-chip NUCA hops from the hottest access of fine-grained network
functions.  The paper positions it as limited: "due to the limited
flexibility of the current commercial hardware, they ... still suffer
from the penalty of a high MLC writeback rate."

Our baseline implements the mechanism's effect on a sliced LLC: the
steering hook pins the home slice of every header line to the destination
core's local slice before the DMA write lands.  Nothing else changes —
no MLC steering, no invalidation, static LLC placement — so benchmarks
can isolate how much of IDIO's benefit slice locality alone provides.
"""

from __future__ import annotations

from ..mem.hierarchy import MemoryHierarchy
from ..pcie.tlp import IdioTag
from ..sim import Simulator


class CacheDirectorController:
    """Steering hook: pin header lines to the consuming core's slice."""

    def __init__(self, sim: Simulator, hierarchy: MemoryHierarchy) -> None:
        if hierarchy.llc.slices <= 0:
            raise ValueError("CacheDirector requires a sliced (NUCA) LLC")
        self.sim = sim
        self.hierarchy = hierarchy
        self.headers_steered = 0

    def steer(self, tag: IdioTag, addr: int, now: int) -> str:
        """The RootComplex hook: always LLC placement, slice-pinned headers."""
        if tag.is_header and tag.app_class == 0:
            llc = self.hierarchy.llc
            target = llc.home_slice_of_core(tag.dest_core)
            llc.set_slice_override(addr, target)
            self.headers_steered += 1
        return "llc"

    def stop(self) -> None:
        """Nothing periodic to stop (symmetry with the other controllers)."""
