"""An IAT-style dynamic DDIO baseline (paper-related work, cf. [41]).

The paper contrasts IDIO against "dynamic DDIO policies" that only
re-size the LLC's DDIO way partition based on runtime monitoring — its
shortcoming **S1** is precisely that such policies "do not take advantage
of the large MLC".  To make that comparison runnable we implement a
faithful-in-spirit baseline: a controller that watches the LLC-writeback
rate (the DMA-leak signal) each interval and widens the DDIO partition
under leak pressure, shrinking it back when the leak subsides so
application data regains LLC capacity.

This is *our* reconstruction of the published idea's control loop, not a
port of any specific artifact; it exists so benchmarks can show where
way-resizing alone runs out of steam (it cannot remove dead-buffer
MLC writebacks, nor use the MLC).
"""

from __future__ import annotations

from typing import List

from ..mem.hierarchy import MemoryHierarchy
from ..obs.events import LlcWritebackEvent
from ..sim import PeriodicTask, Simulator, units


class IATController:
    """Dynamic DDIO-way controller driven by LLC-writeback pressure."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: MemoryHierarchy,
        min_ways: int = 2,
        max_ways: int = 6,
        interval: int = units.microseconds(10),
        grow_threshold: float = 50.0,
        shrink_threshold: float = 5.0,
    ) -> None:
        """``grow_threshold``/``shrink_threshold`` are LLC writebacks per
        interval: above the former the partition grows by one way, below
        the latter it shrinks by one way."""
        if not 0 < min_ways <= max_ways <= hierarchy.llc.config.assoc:
            raise ValueError(
                f"need 0 < min_ways <= max_ways <= {hierarchy.llc.config.assoc}"
            )
        if shrink_threshold > grow_threshold:
            raise ValueError("shrink_threshold must not exceed grow_threshold")
        self.sim = sim
        self.hierarchy = hierarchy
        self.min_ways = min_ways
        self.max_ways = max_ways
        self.grow_threshold = grow_threshold
        self.shrink_threshold = shrink_threshold
        self._llc_wb_in_interval = 0
        self.resizes: List[int] = []
        hierarchy.bus.subscribe(LlcWritebackEvent, self._on_llc_writeback)
        hierarchy.llc.set_ddio_ways(min_ways)
        self._task = PeriodicTask(sim, interval, self._tick, "iat-control")

    @property
    def current_ways(self) -> int:
        return self.hierarchy.llc.ddio_ways

    def _on_llc_writeback(self, event: LlcWritebackEvent) -> None:
        self._llc_wb_in_interval += 1

    def _tick(self) -> None:
        wb = self._llc_wb_in_interval
        self._llc_wb_in_interval = 0
        current = self.current_ways
        if wb > self.grow_threshold and current < self.max_ways:
            self.hierarchy.llc.set_ddio_ways(current + 1)
            self.resizes.append(current + 1)
        elif wb < self.shrink_threshold and current > self.min_ways:
            self.hierarchy.llc.set_ddio_ways(current - 1)
            self.resizes.append(current - 1)

    def stop(self) -> None:
        self._task.stop()
        self.hierarchy.bus.unsubscribe(LlcWritebackEvent, self._on_llc_writeback)
