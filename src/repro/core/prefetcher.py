"""The queued MLC prefetcher (§V-C).

Each MLC controller implements a simple FIFO of prefetch hints received
from the IDIO controller.  The prefetcher drains one hint per service
interval, issuing a prefetch request to the LLC which moves (non-inclusive)
or copies (inclusive) the line into the MLC.  When the queue is full,
incoming hints are dropped — the paper's "simple queued prefetcher" makes
no attempt to backpressure the controller.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..mem.hierarchy import MemoryHierarchy
from ..mem.transaction import PREFETCH_FILL, MemoryTransaction
from ..sim import Simulator


class MLCPrefetcher:
    """Per-core queued prefetcher fed by IDIO prefetch hints."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: MemoryHierarchy,
        core: int,
        queue_depth: int = 32,
        service_time: int = 4000,  # 4 ns in picosecond ticks
    ) -> None:
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.sim = sim
        self.hierarchy = hierarchy
        self.core = core
        self.queue_depth = queue_depth
        self.service_time = service_time
        self._queue: Deque[int] = deque()
        self._draining = False
        self.hints_received = 0
        self.hints_dropped = 0
        self.prefetches_issued = 0
        self.prefetches_useful = 0

    def __len__(self) -> int:
        return len(self._queue)

    def hint(self, addr: int) -> bool:
        """Enqueue a prefetch hint; returns False when the queue is full."""
        self.hints_received += 1
        if len(self._queue) >= self.queue_depth:
            self.hints_dropped += 1
            return False
        self._queue.append(addr)
        if not self._draining:
            self._draining = True
            self.sim.schedule_after(
                self.service_time, self._drain, f"mlc-prefetch-c{self.core}"
            )
        return True

    def _drain(self) -> None:
        if not self._queue:
            self._draining = False
            return
        addr = self._queue.popleft()
        self.prefetches_issued += 1
        txn = self.hierarchy.access(
            MemoryTransaction(PREFETCH_FILL, addr, self.sim.now, core=self.core)
        )
        if txn.level != "dropped":
            self.prefetches_useful += 1
        if self._queue:
            self.sim.schedule_after(self.service_time, self._drain, "mlc-prefetch")
        else:
            self._draining = False


class RegulatedMLCPrefetcher(MLCPrefetcher):
    """CPU-pointer-following prefetcher — the paper's §VII future work.

    The paper notes that "a more sophisticated prefetcher that follows the
    CPU pointer in the ring buffer to regulate the MLC prefetching rate
    will likely provide more benefit".  Instead of queueing one hint per
    DMA line (which floods the MLC at 100 Gbps and must be throttled by
    the FSM), this variant *pulls*: hints for ring-buffer addresses merely
    arm a pump that walks the ring from the CPU pointer forward,
    prefetching the lines of DMA-complete packets at most
    ``max_ahead_packets`` slots ahead of the consumer.  The MLC therefore
    only ever holds data the core is about to touch, at any burst rate.

    Hints for addresses outside the tracked ring region (descriptor
    writebacks) use the plain queued path of the base class.
    """

    def __init__(
        self,
        sim: Simulator,
        hierarchy: MemoryHierarchy,
        core: int,
        queue_depth: int = 32,
        service_time: int = 4000,
        max_ahead_packets: int = 64,
    ) -> None:
        super().__init__(sim, hierarchy, core, queue_depth, service_time)
        self.max_ahead_packets = max_ahead_packets
        self._ring = None
        self._buffer_base = 0
        self._buffer_stride = 1
        self._lines_per_buffer = 1
        self._pumping = False
        self._cursor_slot = 0
        self._cursor_line = 0
        #: Pump wake-ups that found nothing eligible (diagnostics).
        self.pump_idle_ticks = 0

    def attach_ring(
        self, ring, buffer_base: int, buffer_stride: int, lines_per_buffer: int = 24
    ) -> None:
        """Bind the ring whose CPU pointer regulates this prefetcher."""
        if buffer_stride <= 0 or lines_per_buffer <= 0:
            raise ValueError("stride and lines_per_buffer must be positive")
        self._ring = ring
        self._buffer_base = buffer_base
        self._buffer_stride = buffer_stride
        self._lines_per_buffer = lines_per_buffer
        self._cursor_slot = ring.cpu_ptr

    def _in_ring_region(self, addr: int) -> bool:
        if self._ring is None:
            return False
        offset = addr - self._buffer_base
        return 0 <= offset < self._ring.size * self._buffer_stride

    def hint(self, addr: int) -> bool:
        if not self._in_ring_region(addr):
            return super().hint(addr)
        # Ring-data hint: arm the pump instead of queueing the address.
        self.hints_received += 1
        if not self._pumping:
            self._pumping = True
            self.sim.schedule_after(
                self.service_time, self._pump, f"mlc-pump-c{self.core}"
            )
        return True

    def _cursor_distance(self) -> int:
        assert self._ring is not None
        return (self._cursor_slot - self._ring.cpu_ptr) % self._ring.size

    def _pump(self) -> None:
        """Prefetch one line near the CPU pointer, then reschedule."""
        ring = self._ring
        assert ring is not None
        # The consumer may have passed (or lapped) the cursor.
        if self._cursor_distance() > self.max_ahead_packets:
            self._cursor_slot = ring.cpu_ptr
            self._cursor_line = 0

        desc = ring.descriptors[self._cursor_slot]
        eligible = (
            desc.packet is not None
            and desc.done
            and self._cursor_distance() <= self.max_ahead_packets
        )
        if not eligible:
            self.pump_idle_ticks += 1
            if ring.occupancy() == 0:
                # Ring drained: disarm until the next burst's hint.
                self._pumping = False
                return
            self.sim.schedule_after(self.service_time, self._pump, "mlc-pump")
            return

        packet = desc.packet
        lines = min(self._lines_per_buffer, packet.num_lines)
        addr = desc.buffer_addr + self._cursor_line * 64
        self.prefetches_issued += 1
        txn = self.hierarchy.access(
            MemoryTransaction(PREFETCH_FILL, addr, self.sim.now, core=self.core)
        )
        if txn.level != "dropped":
            self.prefetches_useful += 1
        self._cursor_line += 1
        if self._cursor_line >= lines:
            self._cursor_line = 0
            self._cursor_slot = (self._cursor_slot + 1) % ring.size
        self.sim.schedule_after(self.service_time, self._pump, "mlc-pump")
