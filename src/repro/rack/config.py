"""Rack-level configuration: the fleet above one ``ServerConfig``.

A :class:`RackConfig` describes everything a ToR-switch-scale experiment
needs: how many servers the rack holds, the (shared, unmodified) server
configuration each of them runs, how many concurrent flows the ToR's
flow table tracks, how those flows steer to servers, and the traffic
profile the load balancer spreads across the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.policies import PolicyConfig
from ..harness.server import ServerConfig
from ..net.flow import MAX_FLOWS, STEERING_MODES

#: Traffic kinds a rack can offer.  All are *rate*-based: the aggregate
#: ``offered_gbps`` is split across servers by their flow share, then
#: across each server's NF cores.  (``bursty`` is deliberately absent —
#: its unit is ring fills per burst, which has no aggregate-rate split.)
RACK_TRAFFIC_KINDS = ("steady", "poisson", "imix", "heavytail", "diurnal")


@dataclass
class RackConfig:
    """One rack: N servers behind a ToR switch / load balancer."""

    name: str = "rack"
    num_servers: int = 4
    #: The per-server configuration; every server runs this unmodified
    #: (the rack tier varies *load*, not hardware).
    server: ServerConfig = field(default_factory=ServerConfig)
    #: Concurrent flows the ToR flow table tracks and steers.
    total_flows: int = 8192
    #: ``"rss"`` (indirection table) or ``"rendezvous"`` (consistent hash).
    steering: str = "rss"
    #: Indirection-table size exponent for RSS steering; 17 bits models a
    #: 128K-entry table, enough that million-flow populations spread
    #: without visible quantization.
    table_bits: int = 17
    #: One of :data:`RACK_TRAFFIC_KINDS`.
    traffic: str = "heavytail"
    #: Aggregate inbound load across the whole rack (Gbps).  Each server
    #: receives its flow share of this; each NF core its equal split.
    offered_gbps: float = 100.0
    #: Traffic duration per server (microseconds of simulated time).
    duration_us: float = 200.0
    #: Pareto shape for ``traffic="heavytail"``.
    heavy_tail_alpha: float = 1.5
    #: Peak-to-trough ratio for ``traffic="diurnal"``.
    diurnal_peak_ratio: float = 2.0
    #: One compressed simulated "day" for ``traffic="diurnal"`` (us).
    diurnal_period_us: float = 500.0
    #: Master seed; every per-server stream derives from it.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ValueError(
                f"num_servers must be positive, got {self.num_servers}"
            )
        if not 0 < self.total_flows <= MAX_FLOWS:
            raise ValueError(
                f"total_flows must be in (0, {MAX_FLOWS}], got {self.total_flows}"
            )
        if self.steering not in STEERING_MODES:
            raise ValueError(
                f"unknown steering {self.steering!r}; choose from {STEERING_MODES}"
            )
        if self.traffic not in RACK_TRAFFIC_KINDS:
            raise ValueError(
                f"unknown rack traffic {self.traffic!r}; choose from "
                f"{RACK_TRAFFIC_KINDS}"
            )
        if self.offered_gbps <= 0:
            raise ValueError(
                f"offered_gbps must be positive, got {self.offered_gbps}"
            )
        if self.duration_us <= 0:
            raise ValueError(
                f"duration_us must be positive, got {self.duration_us}"
            )
        if self.diurnal_peak_ratio < 1.0:
            raise ValueError(
                f"diurnal_peak_ratio must be >= 1, got {self.diurnal_peak_ratio}"
            )

    def with_policy(self, policy: PolicyConfig) -> "RackConfig":
        """The same rack with every server under a different policy."""
        return replace(self, server=replace(self.server, policy=policy))

    def flows_hint(self) -> Optional[int]:
        """Average flows per server (for reports; actual counts vary)."""
        return self.total_flows // self.num_servers
