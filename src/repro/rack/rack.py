"""The simulated rack: a ToR load balancer over N simulated servers.

A :class:`SimulatedRack` models the tier the single-server reproduction
was missing: a top-of-rack switch whose flow table tracks the rack's
whole flow population and steers each flow to one server
(:class:`~repro.net.flow.FlowSteering`), with the aggregate offered load
split across servers by their flow share.  Each server is an unmodified
:class:`~repro.harness.server.ServerConfig` stack wrapped in one
:class:`~repro.harness.experiment.Experiment`; the sweep shards those
per-server experiments across the warm process pool
(:func:`~repro.harness.runner.run_experiments`) and folds the summaries
into a :class:`~repro.rack.summary.RackSummary`.

Determinism: every per-server stochastic choice draws from a seeded
*per-server* RNG stream derived from the rack seed (:func:`server_rng`)
— never from shared module-level randomness (simlint SIM009 enforces
this for the whole package) — so a serial sweep and a pool-sharded sweep
produce byte-identical rack fingerprints.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional, Sequence

from ..cache import resolve_cache
from ..harness.experiment import Experiment, ExperimentSummary
from ..harness.runner import run_experiments
from ..net.flow import FlowSteering, _mix64, make_flows
from ..obs.bus import EventBus
from ..obs.events import CacheHitEvent, ServerCompletedEvent, ServerLaneSeries
from ..sim import units
from .config import RackConfig
from .summary import RackSummary, fingerprint_digest

#: Streams rendered as per-server lanes on the rack trace.
LANE_STREAMS = ("pcie_writes", "mlc_writebacks", "llc_writebacks", "dram_writes")


def server_rng(seed: int, server: int) -> random.Random:
    """The seeded RNG stream for one server of a rack.

    Streams for distinct servers are decorrelated by a 64-bit avalanche
    mix of ``(rack seed, server index)``; the same pair always yields the
    same stream, which is what keeps sharded sweeps byte-identical to
    serial ones.
    """
    if server < 0:
        raise ValueError(f"server index must be non-negative, got {server}")
    return random.Random(_mix64(((seed & 0xFFFF_FFFF) << 24) ^ (server + 1)))


class SimulatedRack:
    """One rack instance: steering state plus per-server experiments."""

    def __init__(self, config: RackConfig) -> None:
        self.config = config
        #: The ToR's tracked flow population (deterministic 5-tuples).
        self.flows = make_flows(config.total_flows)
        self.steering = FlowSteering(
            config.num_servers,
            mode=config.steering,
            table_bits=config.table_bits,
            seed=config.seed,
        )
        #: Flows steered to each server (index = server).
        self.flow_counts = self.steering.assignment_counts(self.flows)
        #: Rack-level observability bus (per-server lanes ride on it).
        self.bus = EventBus()

    # ------------------------------------------------------------------
    # experiment construction
    # ------------------------------------------------------------------

    def server_experiment(self, server: int) -> Experiment:
        """The per-server experiment for one lane of the rack.

        The server's share of the rack's aggregate load follows its flow
        share; within the server the load splits evenly across NF cores.
        A server that drew zero flows runs an idle experiment (zero
        traffic, minimal drain) so every lane still produces a summary
        and a fingerprint.
        """
        config = self.config
        flows = self.flow_counts[server]
        rng = server_rng(config.seed, server)
        traffic_seed = rng.getrandbits(32)
        name = f"{config.name}-s{server:02d}"
        if flows == 0:
            return Experiment(
                name=name,
                server=config.server,
                traffic="steady",
                steady_rate_gbps_per_nf=1.0,
                steady_duration=0,
                drain_allowance=units.microseconds(10),
            )
        share = flows / config.total_flows
        per_nf = config.offered_gbps * share / max(1, config.server.num_nf_cores)
        return Experiment(
            name=name,
            server=config.server,
            traffic=config.traffic,
            traffic_seed=traffic_seed,
            steady_rate_gbps_per_nf=per_nf,
            steady_duration=units.microseconds(config.duration_us),
            heavy_tail_alpha=config.heavy_tail_alpha,
            diurnal_peak_gbps_per_nf=per_nf * config.diurnal_peak_ratio,
            diurnal_period=units.microseconds(config.diurnal_period_us),
        )

    def experiments(self) -> List[Experiment]:
        """One experiment per server, in server order."""
        return [
            self.server_experiment(i) for i in range(self.config.num_servers)
        ]

    def with_checked_servers(self) -> "SimulatedRack":
        """A copy of this rack with the invariant sanitizer on every server."""
        config = replace(
            self.config, server=replace(self.config.server, checked_mode=True)
        )
        return SimulatedRack(config)

    # ------------------------------------------------------------------
    # sweep
    # ------------------------------------------------------------------

    def run(self, jobs: int = 1, cache=None) -> RackSummary:
        """Run every server (sharded over the warm pool when ``jobs > 1``)
        and fold the per-server summaries into a :class:`RackSummary`.

        With a result cache (explicit ``cache=`` or the installed
        process default; ``cache=False`` disables), the sweep is
        *incremental*: each per-server experiment is keyed independently,
        so re-running an N-server rack after changing one server's share
        recomputes only the shards whose configs moved — the rest are
        served from the cache and their lanes are marked ``cached``.  The
        rack fingerprint is unaffected: cached digests are byte-identical
        to cold recomputes.
        """
        resolved = resolve_cache(cache)
        experiments = self.experiments()
        cached_names: set = set()
        if resolved is None:
            summaries = run_experiments(experiments, jobs=jobs, cache=False)
        else:
            handler = resolved.bus.subscribe(
                CacheHitEvent, lambda event: cached_names.add(event.name)
            )
            try:
                summaries = run_experiments(
                    experiments, jobs=jobs, cache=resolved
                )
            finally:
                resolved.bus.unsubscribe(CacheHitEvent, handler)
        return self.fold(summaries, cached_names=cached_names)

    def fold(
        self,
        summaries: Sequence[ExperimentSummary],
        cached_names: Optional[set] = None,
    ) -> RackSummary:
        """Fold per-server summaries (server order) and publish lanes.

        ``cached_names`` marks the lanes whose experiment (by its unique
        ``{rack}-sNN`` name) was served from the result cache.
        """
        rack_summary = RackSummary.from_summaries(
            self.config, self.flow_counts, summaries, self.steering.digest()
        )
        if cached_names:
            for lane in rack_summary.lanes:
                lane.cached = lane.name in cached_names
        self._publish_lanes(summaries, rack_summary)
        return rack_summary

    def _publish_lanes(
        self,
        summaries: Sequence[ExperimentSummary],
        rack_summary: RackSummary,
    ) -> None:
        """Publish per-server lane events on the rack bus.

        Lane *series* (binned throughput timelines per stream) are only
        materialized when someone subscribed — they are the expensive
        part; completion events are always published.
        """
        want_series = self.bus.has_subscribers(ServerLaneSeries)
        for lane, summary in zip(rack_summary.lanes, summaries):
            if want_series:
                for stream in LANE_STREAMS:
                    points = tuple(summary.timeline(stream, bin_us=10.0))
                    self.bus.publish(
                        ServerLaneSeries(
                            server=lane.server, stream=stream, points=points
                        )
                    )
            self.bus.publish(
                ServerCompletedEvent(
                    server=lane.server,
                    flows=lane.flows,
                    completed=lane.completed,
                    drops=lane.drops,
                    fingerprint=lane.digest,
                    cached=lane.cached,
                )
            )


def run_rack(
    config: RackConfig,
    jobs: int = 1,
    rack: Optional[SimulatedRack] = None,
    cache=None,
) -> RackSummary:
    """Build (or reuse) a rack and run one sweep; the one-call entry point."""
    if rack is None:
        rack = SimulatedRack(config)
    return rack.run(jobs=jobs, cache=cache)


__all__ = [
    "LANE_STREAMS",
    "SimulatedRack",
    "fingerprint_digest",
    "run_rack",
    "server_rng",
]
