"""Folding a rack sweep's per-server summaries into one report.

A :class:`RackSummary` is to a rack what
:class:`~repro.harness.experiment.ExperimentSummary` is to one server:
the slim, deterministic slice of a fleet run.  It carries one
:class:`ServerLane` per server (flow share, throughput counters, p50/
p95/p99 latency percentiles, and the server's fingerprint digest) plus
rack-level aggregates — pooled latency percentiles over every completed
packet in the fleet and a deterministic rack fingerprint combining the
per-server digests with the steering configuration.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.determinism import fingerprint_digest
from ..harness import metrics
from ..harness.experiment import ExperimentSummary
from ..harness.report import format_table

#: The latency percentiles every lane and the aggregate report.
PERCENTILES = (50, 95, 99)


def _percentiles_us(latencies_ns: Sequence[float]) -> Dict[int, Optional[float]]:
    """{percentile: value in us} (``None`` when no packets completed)."""
    if not latencies_ns:
        return {p: None for p in PERCENTILES}
    return {
        p: metrics.percentile(latencies_ns, p) / 1000.0 for p in PERCENTILES
    }


@dataclass
class ServerLane:
    """One server's slice of a rack sweep."""

    server: int
    name: str
    flows: int
    offered: int
    rx: int
    drops: int
    completed: int
    percentiles_us: Dict[int, Optional[float]]
    events_fired: int
    wall_seconds: float
    #: ``fingerprint_digest`` of the server's :class:`ExperimentSummary`.
    digest: str
    #: Whether this lane was served from the result cache (no simulation
    #: ran; the digest is still byte-identical to a cold recompute).
    #: Excluded from the rack fingerprint by construction.
    cached: bool = False

    @property
    def p50_us(self) -> Optional[float]:
        return self.percentiles_us.get(50)

    @property
    def p95_us(self) -> Optional[float]:
        return self.percentiles_us.get(95)

    @property
    def p99_us(self) -> Optional[float]:
        return self.percentiles_us.get(99)


@dataclass
class RackSummary:
    """The deterministic fold of one rack sweep."""

    name: str
    policy_name: str
    num_servers: int
    steering: str
    total_flows: int
    steering_digest: int
    lanes: List[ServerLane] = field(default_factory=list)
    #: Pooled percentiles over every completed packet in the fleet.
    aggregate_percentiles_us: Dict[int, Optional[float]] = field(
        default_factory=dict
    )
    offered_packets: int = 0
    rx_packets: int = 0
    rx_drops: int = 0
    completed: int = 0
    events_fired: int = 0
    wall_seconds: float = 0.0
    #: SHA-256 over the steering digest, flow shares, and per-server
    #: digests — equal for a serial and a warm-pool-sharded sweep of the
    #: same seeded rack.
    fingerprint: str = ""

    @classmethod
    def from_summaries(
        cls,
        config,
        flow_counts: Sequence[int],
        summaries: Sequence[ExperimentSummary],
        steering_digest: int,
    ) -> "RackSummary":
        """Fold per-server summaries (in server order) into a rack summary."""
        if len(summaries) != len(flow_counts):
            raise ValueError(
                f"{len(summaries)} summaries for {len(flow_counts)} servers"
            )
        lanes: List[ServerLane] = []
        pooled: List[float] = []
        for server, (flows, summary) in enumerate(zip(flow_counts, summaries)):
            pooled.extend(summary.latencies_ns)
            lanes.append(
                ServerLane(
                    server=server,
                    name=summary.experiment.name,
                    flows=flows,
                    offered=summary.offered_packets,
                    rx=summary.rx_packets,
                    drops=summary.rx_drops,
                    completed=summary.completed,
                    percentiles_us=_percentiles_us(summary.latencies_ns),
                    events_fired=summary.events_fired,
                    wall_seconds=summary.wall_seconds,
                    digest=fingerprint_digest(summary),
                )
            )
        rack = cls(
            name=config.name,
            policy_name=config.server.policy.name,
            num_servers=config.num_servers,
            steering=config.steering,
            total_flows=config.total_flows,
            steering_digest=steering_digest,
            lanes=lanes,
            aggregate_percentiles_us=_percentiles_us(pooled),
            offered_packets=sum(s.offered_packets for s in summaries),
            rx_packets=sum(s.rx_packets for s in summaries),
            rx_drops=sum(s.rx_drops for s in summaries),
            completed=sum(s.completed for s in summaries),
            events_fired=sum(s.events_fired for s in summaries),
            wall_seconds=sum(s.wall_seconds for s in summaries),
        )
        rack.fingerprint = rack._compute_fingerprint()
        return rack

    def _compute_fingerprint(self) -> str:
        """Deterministic digest: steering + flow shares + server digests.

        Everything folded in is itself process-stable (the steering
        digest avoids ``hash()``; the per-server digests come from
        summary fingerprints that exclude wall-clock diagnostics), so a
        serial sweep and a pool-sharded sweep of the same seeded rack
        produce byte-identical rack fingerprints.
        """
        payload = repr(
            (
                self.steering,
                self.steering_digest,
                self.total_flows,
                tuple(lane.flows for lane in self.lanes),
                tuple(lane.digest for lane in self.lanes),
            )
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    @property
    def p50_us(self) -> Optional[float]:
        return self.aggregate_percentiles_us.get(50)

    @property
    def p95_us(self) -> Optional[float]:
        return self.aggregate_percentiles_us.get(95)

    @property
    def p99_us(self) -> Optional[float]:
        return self.aggregate_percentiles_us.get(99)

    def render(self) -> str:
        """An ASCII per-server table with an aggregate footer row."""
        rows: List[List[object]] = []
        for lane in self.lanes:
            rows.append(
                [
                    f"s{lane.server:02d}",
                    lane.flows,
                    lane.offered,
                    lane.completed,
                    lane.drops,
                    lane.p50_us,
                    lane.p95_us,
                    lane.p99_us,
                    lane.digest[:12],
                ]
            )
        rows.append(
            [
                "rack",
                self.total_flows,
                self.offered_packets,
                self.completed,
                self.rx_drops,
                self.p50_us,
                self.p95_us,
                self.p99_us,
                self.fingerprint[:12],
            ]
        )
        return format_table(
            ["server", "flows", "offered", "completed", "drops",
             "p50 us", "p95 us", "p99 us", "digest"],
            rows,
            title=(
                f"{self.name}: {self.num_servers} servers "
                f"({self.policy_name}, {self.steering} steering, "
                f"{self.total_flows} flows)"
            ),
        )

    def to_json(self) -> Dict[str, Any]:
        """A JSON-able dict (CLI ``--out`` artifact)."""
        return {
            "name": self.name,
            "policy": self.policy_name,
            "num_servers": self.num_servers,
            "steering": self.steering,
            "total_flows": self.total_flows,
            "fingerprint": self.fingerprint,
            "aggregate": {
                "offered": self.offered_packets,
                "rx": self.rx_packets,
                "drops": self.rx_drops,
                "completed": self.completed,
                "percentiles_us": {
                    f"p{p}": v for p, v in self.aggregate_percentiles_us.items()
                },
            },
            "servers": [
                {
                    "server": lane.server,
                    "name": lane.name,
                    "flows": lane.flows,
                    "offered": lane.offered,
                    "rx": lane.rx,
                    "drops": lane.drops,
                    "completed": lane.completed,
                    "percentiles_us": {
                        f"p{p}": v for p, v in lane.percentiles_us.items()
                    },
                    "digest": lane.digest,
                    "cached": lane.cached,
                }
                for lane in self.lanes
            ],
        }
