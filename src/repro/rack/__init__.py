"""The rack tier: a ToR load balancer fanning flows over N servers.

``repro.rack`` sits one level above :mod:`repro.harness`: where a
:class:`~repro.harness.server.SimulatedServer` models one machine's
inbound memory path, a :class:`SimulatedRack` models a top-of-rack
switch steering a (possibly million-entry) flow population across a
fleet of identical servers and sharding the per-server experiments over
the warm process pool.  The fold — :class:`RackSummary` — reports
per-server and aggregate p50/p95/p99 latencies plus a deterministic
rack fingerprint that is identical for serial and pool-sharded sweeps.

Determinism contract: every stochastic per-server choice in this
package draws from a seeded per-server RNG stream (:func:`server_rng`);
simlint rule SIM009 rejects shared module-level randomness here.
"""

from .config import RACK_TRAFFIC_KINDS, RackConfig
from .rack import LANE_STREAMS, SimulatedRack, run_rack, server_rng
from .summary import PERCENTILES, RackSummary, ServerLane

__all__ = [
    "LANE_STREAMS",
    "PERCENTILES",
    "RACK_TRAFFIC_KINDS",
    "RackConfig",
    "RackSummary",
    "ServerLane",
    "SimulatedRack",
    "run_rack",
    "server_rng",
]
