"""The core model: a timed agent issuing memory accesses.

The paper's platform simulates 3-wide out-of-order aarch64 cores in gem5
(Table I).  We replace the microarchitectural pipeline with a cost model:
software work is charged in cycles, and every memory access is charged the
hierarchy's level-dependent latency.  The model is calibrated (see
``repro.harness.server``) so a core saturates near the paper's observed
~12 Gbps per-core TouchDrop capacity (§VII, steady-traffic experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..mem.hierarchy import AccessResult, MemoryHierarchy
from ..mem.transaction import CPU_LOAD, CPU_STORE, _LINE_MASK, MemoryTransaction
from ..sim import Simulator, units


@dataclass
class CoreStats:
    """Per-core execution statistics (CPI-style accounting)."""

    mem_accesses: int = 0
    mem_ticks: int = 0
    compute_ticks: int = 0
    hits_by_level: Dict[str, int] = field(default_factory=dict)

    def record(self, result: "AccessResult") -> None:
        """Record one completed access; accepts an :class:`AccessResult`
        or anything else carrying ``latency``/``level`` (a transaction)."""
        self.mem_accesses += 1
        self.mem_ticks += result.latency
        self.hits_by_level[result.level] = self.hits_by_level.get(result.level, 0) + 1

    @property
    def total_ticks(self) -> int:
        return self.mem_ticks + self.compute_ticks

    def average_access_ns(self) -> float:
        """Average memory access latency in ns (the antagonist's CPI proxy)."""
        if self.mem_accesses == 0:
            return 0.0
        return units.to_nanoseconds(self.mem_ticks) / self.mem_accesses


class Core:
    """One physical core bound to the shared memory hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        hierarchy: MemoryHierarchy,
        freq_ghz: float = 3.0,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.freq_ghz = freq_ghz
        self.stats = CoreStats()
        # Scratch transaction for demand accesses.  A core issues one
        # access at a time and the hierarchy executes it synchronously,
        # so when nothing retains completed transactions (no hop
        # recording, no transaction subscribers) the same object is
        # re-initialized per access instead of allocated, and the demand
        # handler is invoked directly — with no subscribers the access()
        # wrapper's dispatch and publication are both no-ops.
        self._scratch_txn = MemoryTransaction(CPU_LOAD, 0, 0, core=core_id)

    def _issue(self, kind: str, addr: int) -> int:
        """Issue one demand access; returns its latency in ticks.

        Body of :meth:`mem_read`/:meth:`mem_write` with the transaction
        construction and stats recording inlined (one call per touched
        cacheline — the hottest application-side path in the simulator).
        """
        hierarchy = self.hierarchy
        if hierarchy.record_hops or hierarchy._txn_subs:
            txn = MemoryTransaction(kind, addr, self.sim.now, core=self.core_id)
            hierarchy.access(txn)
        else:
            txn = self._scratch_txn
            txn.kind = kind
            txn.addr = addr & _LINE_MASK
            txn.now = self.sim._now
            txn.latency = 0
            txn.level = None
            hierarchy._run_cpu(txn)
        st = self.stats
        st.mem_accesses += 1
        latency = txn.latency
        st.mem_ticks += latency
        hits = st.hits_by_level
        level = txn.level
        hits[level] = hits.get(level, 0) + 1
        return latency

    def mem_read(self, addr: int) -> int:
        """Issue a demand load; returns its latency in ticks."""
        return self._issue(CPU_LOAD, addr)

    def mem_write(self, addr: int) -> int:
        """Issue a demand store; returns its latency in ticks."""
        return self._issue(CPU_STORE, addr)

    def compute(self, num_cycles: float) -> int:
        """Charge ``num_cycles`` of non-memory work; returns ticks."""
        ticks = units.cycles(num_cycles, self.freq_ghz)
        self.stats.compute_ticks += ticks
        return ticks
