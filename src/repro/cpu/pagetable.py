"""Page-table model with the *Invalidatable* PTE bit (§V-D).

The invalidate-without-writeback instruction leaks stale data across
processes if it can be issued on arbitrary pages (the zeroed-page example
in §V-D).  The paper's mitigation: the kernel marks pages of specially
allocated buffers *Invalidatable* using a reserved PTE bit, flushing them
to DRAM first; the instruction checks the bit and faults otherwise.

We model a flat page table mapping page numbers to PTEs.  The
``allocate_invalidatable`` path performs the flush-then-mark sequence, and
:class:`InvalidatePermissionError` is the modeled fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

PAGE_SIZE = 4096


class InvalidatePermissionError(PermissionError):
    """Invalidate-without-writeback issued on a non-Invalidatable page."""


@dataclass
class PageTableEntry:
    """The PTE state we model: presence plus the reserved Invalidatable bit."""

    page_number: int
    present: bool = True
    invalidatable: bool = False
    owner_pid: int = 0


class PageTable:
    """A flat per-system page table (sufficient for DMA buffer modeling)."""

    def __init__(self) -> None:
        self._entries: Dict[int, PageTableEntry] = {}

    @staticmethod
    def page_number(addr: int) -> int:
        return addr // PAGE_SIZE

    def map_range(self, base: int, num_bytes: int, pid: int = 0) -> None:
        """Map ordinary (non-Invalidatable) pages covering the range."""
        for pn in self._pages(base, num_bytes):
            self._entries[pn] = PageTableEntry(pn, owner_pid=pid)

    def allocate_invalidatable(
        self,
        base: int,
        num_bytes: int,
        pid: int = 0,
        flush: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Kernel path for Invalidatable buffers (§V-D).

        The kernel first flushes the pages to DRAM (``flush`` is invoked
        with each page base address) and only then sets the PTE bit, so a
        later invalidate cannot expose a previous owner's data.
        """
        for pn in self._pages(base, num_bytes):
            if flush is not None:
                flush(pn * PAGE_SIZE)
            self._entries[pn] = PageTableEntry(pn, invalidatable=True, owner_pid=pid)

    def entry(self, addr: int) -> Optional[PageTableEntry]:
        return self._entries.get(self.page_number(addr))

    def is_invalidatable(self, addr: int) -> bool:
        entry = self.entry(addr)
        return bool(entry and entry.present and entry.invalidatable)

    def check_invalidate(self, addr: int) -> None:
        """The hardware check performed by the new instruction."""
        if not self.is_invalidatable(addr):
            raise InvalidatePermissionError(
                f"page {self.page_number(addr):#x} is not marked Invalidatable"
            )

    def unmap_range(self, base: int, num_bytes: int) -> None:
        for pn in self._pages(base, num_bytes):
            self._entries.pop(pn, None)

    @staticmethod
    def _pages(base: int, num_bytes: int) -> Iterable[int]:
        if num_bytes <= 0:
            return range(0)
        first = base // PAGE_SIZE
        last = (base + num_bytes - 1) // PAGE_SIZE
        return range(first, last + 1)
