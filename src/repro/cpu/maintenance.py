"""Cache-maintenance operations, including the paper's new instruction.

Modern ISAs already provide invalidate-without-flush operations (ARMv7's
DCIMVAC, PowerPC's dcbi); the paper extends this family with a
*multi-cacheline* invalidate that drops lines from the private dcache and
MLC without any writeback (§V-D), gated by the Invalidatable PTE bit.

:class:`MaintenanceUnit` is the per-core execution facade the software
stack calls.  It charges a small per-line cost (the instruction retires
like a store) and enforces the PTE permission check.
"""

from __future__ import annotations

from typing import Optional

from ..mem.hierarchy import MemoryHierarchy
from ..mem.line import lines_spanning
from ..mem.transaction import INVALIDATE, MemoryTransaction
from ..sim import units
from .pagetable import PageTable


class MaintenanceUnit:
    """Executes cache-maintenance operations for one core."""

    #: Per-line issue cost of the invalidate instruction (~1 cycle at 3 GHz;
    #: the operation carries no data so it retires quickly).
    INVALIDATE_LINE_COST = units.cycles(1)

    def __init__(
        self,
        core: int,
        hierarchy: MemoryHierarchy,
        page_table: Optional[PageTable] = None,
        scope: str = "all",
    ) -> None:
        self.core = core
        self.hierarchy = hierarchy
        self.page_table = page_table
        self.scope = scope
        self.invalidated_lines = 0
        # Scratch transaction for the invalidate loop (IDIO issues one
        # invalidate per consumed buffer line): reused when no hop
        # recording or transaction subscriber would retain it.
        self._scratch_txn = MemoryTransaction(INVALIDATE, 0, 0, core=core)

    def invalidate_range(self, base: int, num_bytes: int, now: int) -> int:
        """Invalidate-without-writeback over ``[base, base+num_bytes)``.

        Returns the instruction cost in ticks.  Raises
        :class:`~repro.cpu.pagetable.InvalidatePermissionError` when the
        page table is attached and any page lacks the Invalidatable bit.
        """
        hierarchy = self.hierarchy
        page_table = self.page_table
        lines = 0
        if hierarchy.record_hops or hierarchy._txn_subs:
            access = hierarchy.access
            for addr in lines_spanning(base, num_bytes):
                if page_table is not None:
                    page_table.check_invalidate(addr)
                access(
                    MemoryTransaction(
                        INVALIDATE, addr, now, core=self.core, scope=self.scope
                    )
                )
                lines += 1
        else:
            run = hierarchy._run_invalidate
            txn = self._scratch_txn
            txn.now = now
            txn.scope = self.scope
            for addr in lines_spanning(base, num_bytes):
                if page_table is not None:
                    page_table.check_invalidate(addr)
                txn.addr = addr
                run(txn)
                lines += 1
        self.invalidated_lines += lines
        return lines * self.INVALIDATE_LINE_COST

    def flush_range(self, base: int, num_bytes: int, now: int) -> int:
        """Conventional clean+invalidate (clflush-style): writes dirty data
        back to DRAM.  Used by the kernel when preparing Invalidatable
        buffers; provided for completeness and for ablation experiments.
        """
        cost = 0
        for addr in lines_spanning(base, num_bytes):
            line = self.hierarchy.mlc[self.core].peek(addr)
            dirty = bool(line and line.dirty)
            llc_line = self.hierarchy.llc.peek(addr)
            if llc_line is not None and llc_line.dirty:
                dirty = True
            # Drop all cached copies; dirty data goes to DRAM.
            self.hierarchy.access(
                MemoryTransaction(INVALIDATE, addr, now, core=self.core, scope="all")
            )
            if dirty:
                self.hierarchy.dram.write(addr, now)
            cost += self.INVALIDATE_LINE_COST
        return cost
