"""A DPDK-style buffer pool (mempool) for the re-allocate recycling mode.

In the re-allocate mode (§II-B, M2) the driver replenishes the RX ring
with *different* DMA buffers drawn from a pool, stashing the filled ones
for deferred processing.  The pool models rte_mempool at the granularity
the simulation needs: a free list of fixed-stride buffer addresses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List


class BufferPoolExhausted(RuntimeError):
    """Raised when an allocation is requested from an empty pool."""


class BufferPool:
    """A LIFO free list of fixed-size DMA buffers.

    LIFO (like rte_mempool's per-core cache) maximizes the chance that a
    recycled buffer is still cache-resident when reused.
    """

    def __init__(self, base: int, stride: int, count: int) -> None:
        if stride <= 0 or count <= 0:
            raise ValueError("stride and count must be positive")
        self.base = base
        self.stride = stride
        self.count = count
        self._free: Deque[int] = deque(
            base + i * stride for i in range(count)
        )
        self.allocations = 0
        self.frees = 0

    def __len__(self) -> int:
        return len(self._free)

    def alloc(self) -> int:
        """Take a buffer address from the pool."""
        if not self._free:
            raise BufferPoolExhausted(
                f"pool of {self.count} buffers exhausted"
            )
        self.allocations += 1
        return self._free.pop()

    def reserve(self, addr: int) -> None:
        """Mark a specific buffer as allocated (ring setup time).

        Used when the RX ring's initial buffers are carved out of the
        pool's address range; O(n), called only during initialization.
        """
        try:
            self._free.remove(addr)
        except ValueError:
            raise ValueError(f"address {addr:#x} is not free in this pool") from None
        self.allocations += 1

    def free(self, addr: int) -> None:
        """Return a buffer address to the pool."""
        if not self.base <= addr < self.base + self.count * self.stride:
            raise ValueError(f"address {addr:#x} does not belong to this pool")
        if (addr - self.base) % self.stride:
            raise ValueError(f"address {addr:#x} is not stride-aligned")
        self.frees += 1
        self._free.append(addr)

    def span_bytes(self) -> int:
        """Total address-space footprint of the pool."""
        return self.count * self.stride

    def addresses(self) -> List[int]:
        """All buffer addresses the pool manages (free or not)."""
        return [self.base + i * self.stride for i in range(self.count)]
