"""DPDK-style software stack: the polling-mode driver loop.

:class:`PollModeDriver` runs one network function on one core against one
NIC RX queue, with DPDK's semantics:

* busy-poll the descriptor at the CPU pointer (a real memory read — the
  poll misses to the LLC right after the NIC's descriptor writeback
  invalidates the core's copy);
* consume up to ``batch_size`` (default 32) visible packets per poll;
* process packets run-to-completion, in place;
* after the batch, move the NIC tail — i.e. free the descriptors — and,
  when self-invalidating buffers are enabled (IDIO M1), issue the
  invalidate-without-writeback instruction over each consumed buffer
  right after it is consumed.

For L2Fwd the buffer is *consumed* only when the NIC's TX reads complete,
so freeing and self-invalidation happen in the TX completion callback
(Fig. 3 right).

:class:`AntagonistDriver` runs the LLCAntagonist loop on its own core.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..mem.line import LINE_SIZE
from ..nic.descriptor import DESCRIPTOR_BYTES, RxDescriptor
from ..nic.nic import NIC, NicQueue
from ..obs.events import PmdBatchEvent
from ..sim import Simulator
from ..sim import units
from .apps import LLCAntagonist, NetworkFunction
from .core import Core
from .maintenance import MaintenanceUnit


#: Buffer recycling modes of §II-B.
RECYCLE_RUN_TO_COMPLETION = "run_to_completion"  # M3: process in place
RECYCLE_COPY = "copy"  # M1: copy out, recycle the ring slot immediately
RECYCLE_REALLOCATE = "reallocate"  # M2: swap in a fresh pool buffer, stash

RECYCLE_MODES = (RECYCLE_RUN_TO_COMPLETION, RECYCLE_COPY, RECYCLE_REALLOCATE)


class PollModeDriver:
    """The DPDK PMD loop binding (core, queue, network function).

    ``recycle_mode`` selects one of the paper's three buffer recycling
    models (§II-B):

    * **run_to_completion** (default, DPDK-style): the packet is processed
      in place inside the DMA buffer, which is freed — and, under IDIO,
      self-invalidated — only after application processing completes;
    * **copy** (Linux-stack-style): each packet is first copied into
      application memory (``copy_pool``), the DMA buffer is recycled (and
      is dead — invalidatable — right after the copy), and processing runs
      on the copy;
    * **reallocate**: the filled DMA buffer is stashed and the ring slot
      is replenished with a fresh buffer from ``buffer_pool``; the stash
      is processed after the batch, then returned to the pool.
    """

    #: Copy-loop cost per cacheline (memcpy work, on top of memory ops).
    COPY_CYCLES_PER_LINE = 6.0
    #: Ring-replenish cost per packet in re-allocate mode (pointer swap,
    #: mempool get/put bookkeeping).
    REPLENISH_CYCLES = 40.0

    def __init__(
        self,
        sim: Simulator,
        core: Core,
        nic: NIC,
        queue: NicQueue,
        app: NetworkFunction,
        maintenance: Optional[MaintenanceUnit] = None,
        batch_size: int = 32,
        self_invalidate: bool = False,
        poll_overhead_cycles: float = 60.0,
        idle_poll_interval: int = units.nanoseconds(200),
        recycle_mode: str = RECYCLE_RUN_TO_COMPLETION,
        buffer_pool: Optional["BufferPool"] = None,
        copy_pool: Optional[List[int]] = None,
    ) -> None:
        if self_invalidate and maintenance is None:
            raise ValueError("self_invalidate requires a MaintenanceUnit")
        if recycle_mode not in RECYCLE_MODES:
            raise ValueError(
                f"unknown recycle mode {recycle_mode!r}; choose from {RECYCLE_MODES}"
            )
        if recycle_mode == RECYCLE_REALLOCATE and buffer_pool is None:
            raise ValueError("reallocate mode requires a buffer_pool")
        if recycle_mode == RECYCLE_COPY and not copy_pool:
            raise ValueError("copy mode requires copy_pool addresses")
        if app.transmits and recycle_mode != RECYCLE_RUN_TO_COMPLETION:
            raise ValueError(
                "zero-copy transmitting apps require run_to_completion recycling"
            )
        self.sim = sim
        self.core = core
        self.nic = nic
        self.queue = queue
        self.app = app
        self.maintenance = maintenance
        self.batch_size = batch_size
        self.self_invalidate = self_invalidate
        self.poll_overhead_cycles = poll_overhead_cycles
        # Simulation granularity knob: an idle PMD re-polls at this period
        # instead of back-to-back.  Detection lag stays two orders of
        # magnitude below the ~1.9 us descriptor-writeback delay.
        self.idle_poll_interval = idle_poll_interval
        self.recycle_mode = recycle_mode
        self.buffer_pool = buffer_pool
        self._copy_addrs = list(copy_pool or [])
        self._copy_cursor = 0
        #: (packet, buffer_addr) pairs awaiting deferred processing
        #: (re-allocate mode).
        self._stash: List = []
        self.completed_packets: List = []
        self.batches = 0
        self._stopped = False
        #: Optional CPU-layer fault injector (``repro.faults``): PMD stall
        #: windows emulating scheduler preemption.  ``None`` keeps the
        #: poll loop on its zero-cost fast path.
        self.faults = None
        # Live subscriber list for batch-pickup events (trace recorders);
        # the event object is only built when somebody listens.
        self._batch_subs = core.hierarchy.bus.live(PmdBatchEvent)

    # -- lifecycle --------------------------------------------------------

    def init_ring(self) -> None:
        """Initialize the descriptor ring, as rte_eth_rx_queue_setup does.

        The driver writes every descriptor once, so descriptors are warm in
        the hierarchy before traffic starts (no cold DRAM misses on the
        first poll of each slot).
        """
        for desc in self.queue.ring.descriptors:
            self.core.mem_write(desc.desc_addr)
            if DESCRIPTOR_BYTES > LINE_SIZE:
                self.core.mem_write(desc.desc_addr + LINE_SIZE)

    def start(self, at: Optional[int] = None) -> None:
        """Begin polling at ``at`` (defaults to now)."""
        t = self.sim.now if at is None else at
        self.sim.schedule_at(t, self._poll, f"pmd-poll-c{self.core.core_id}")

    def stop(self) -> None:
        self._stopped = True

    # -- the PMD loop --------------------------------------------------------

    def _poll(self) -> None:
        if self._stopped:
            return
        faults = self.faults
        if faults is not None:
            # A stalled PMD is scheduled out for the whole fault window:
            # no polls, no batches — the ring backs up exactly as it would
            # under real preemption (§II's software-stack pathologies).
            resume = faults.stall_until(self.sim.now, self.core.core_id)
            if resume > self.sim.now:
                self.sim.schedule_at(resume, self._poll, "pmd-stalled")
                return
        ring = self.queue.ring
        # Poll = read the descriptor at the CPU pointer.  The NIC's
        # descriptor writeback invalidated our cached copy, so packet
        # detection pays a real coherence round trip.
        desc_addr = ring.descriptors[ring.cpu_ptr].desc_addr
        latency = self.core.mem_read(desc_addr)
        latency += self.core.compute(self.poll_overhead_cycles)

        batch: List[RxDescriptor] = []
        while len(batch) < self.batch_size:
            desc = ring.pop_ready()
            if desc is None:
                break
            batch.append(desc)

        if not batch:
            self.sim.schedule_after(
                max(latency, self.idle_poll_interval), self._poll, "pmd-idle"
            )
            return

        self.batches += 1
        subs = self._batch_subs
        if subs:
            event = PmdBatchEvent(self.core.core_id, len(batch), self.sim.now)
            for fn in subs:
                fn(event)
        self.sim.schedule_after(
            max(latency, 1), lambda: self._process(batch, 0), "pmd-batch"
        )

    def _process(self, batch: List[RxDescriptor], idx: int) -> None:
        if idx >= len(batch):
            if self._stash:
                # Re-allocate mode: process the stashed packets now that
                # the ring has been replenished.
                stash, self._stash = self._stash, []
                self._process_stash(stash, 0)
            else:
                self._finish_batch(batch)
            return
        desc = batch[idx]
        packet = desc.packet
        assert packet is not None
        packet.service_start_time = self.sim.now
        # Read the remaining descriptor lines (metadata/mbuf fields).
        latency = 0
        if DESCRIPTOR_BYTES > LINE_SIZE:
            latency += self.core.mem_read(desc.desc_addr + LINE_SIZE)

        if self.recycle_mode == RECYCLE_COPY:
            self._process_copy(batch, idx, desc, packet, latency)
            return
        if self.recycle_mode == RECYCLE_REALLOCATE:
            self._process_reallocate(batch, idx, desc, packet, latency)
            return

        latency += self.app.process(self.core, packet)

        if self.app.transmits:
            # Zero-copy forward: descriptor recycles on TX completion.
            tx_engine = self.nic.tx_engines.get(self.core.core_id)
            if tx_engine is not None and tx_engine.ring.free_slots() > 0:
                # Posting writes the TX descriptor (a real store the NIC
                # will read back over PCIe) plus doorbell overhead.
                slot = tx_engine.ring.descriptors[tx_engine.ring.driver_tail]
                latency += self.core.mem_write(slot.desc_addr)
                latency += self.core.compute(self.poll_overhead_cycles)

            def after_processing() -> None:
                packet.completion_time = self.sim.now
                self.completed_packets.append(packet)
                self.nic.transmit(
                    desc.buffer_addr,
                    packet.size_bytes,
                    on_complete=lambda: self._tx_done(desc, packet),
                    core=self.core.core_id,
                )
                self._process(batch, idx + 1)

            self.sim.schedule_after(max(latency, 1), after_processing, "pmd-proc")
            return

        # Run-to-completion consume: the buffer is dead right here.
        if self.self_invalidate:
            assert self.maintenance is not None
            latency += self.maintenance.invalidate_range(
                desc.buffer_addr, packet.size_bytes, self.sim.now
            )

        def done() -> None:
            packet.completion_time = self.sim.now
            self.completed_packets.append(packet)
            self.queue.ring.free(desc)
            self._process(batch, idx + 1)

        self.sim.schedule_after(max(latency, 1), done, "pmd-proc")

    # -- copy recycling mode (§II-B M1) ------------------------------------

    def _process_copy(self, batch, idx, desc, packet, latency: int) -> None:
        """Copy the packet out, recycle the slot, process the copy."""
        from ..mem.line import lines_spanning, num_lines

        copy_addr = self._copy_addrs[self._copy_cursor % len(self._copy_addrs)]
        self._copy_cursor += 1
        overlap = getattr(self.app, "cost", None)
        mem_overlap = overlap.mem_overlap if overlap is not None else 8.0
        dma_lines = list(lines_spanning(desc.buffer_addr, packet.size_bytes))
        for i, addr in enumerate(dma_lines):
            # memcpy loop: streaming read of the DMA line, streaming write
            # of the application-space destination line.
            latency += int(self.core.mem_read(addr) / mem_overlap)
            latency += int(self.core.mem_write(copy_addr + i * LINE_SIZE) / mem_overlap)
            latency += self.core.compute(self.COPY_CYCLES_PER_LINE)

        # The DMA buffer is dead right after the first touch (the copy).
        if self.self_invalidate:
            assert self.maintenance is not None
            latency += self.maintenance.invalidate_range(
                desc.buffer_addr, packet.size_bytes, self.sim.now
            )
        self.queue.ring.free(desc)

        # Process the application-space copy.
        original_addr = packet.buffer_addr
        packet.buffer_addr = copy_addr
        latency += self.app.process(self.core, packet)
        packet.buffer_addr = original_addr

        def done() -> None:
            packet.completion_time = self.sim.now
            self.completed_packets.append(packet)
            self._process(batch, idx + 1)

        self.sim.schedule_after(max(latency, 1), done, "pmd-copy")

    # -- re-allocate recycling mode (§II-B M2) -----------------------------

    def _process_reallocate(self, batch, idx, desc, packet, latency: int) -> None:
        """Swap in a fresh pool buffer, stash the filled one for later."""
        assert self.buffer_pool is not None
        filled = desc.buffer_addr
        replacement = self.buffer_pool.alloc()
        # Update the descriptor's buffer pointer (a real store) and
        # replenish the ring so the NIC can keep receiving.
        desc.buffer_addr = replacement
        latency += self.core.mem_write(desc.desc_addr)
        latency += self.core.compute(self.REPLENISH_CYCLES)
        self._stash.append((packet, filled))
        self.queue.ring.free(desc)
        self.sim.schedule_after(
            max(latency, 1), lambda: self._process(batch, idx + 1), "pmd-realloc"
        )

    def _process_stash(self, stash, idx: int) -> None:
        """Deferred processing of stashed (re-allocated) buffers."""
        if idx >= len(stash):
            self._finish_batch([])
            return
        packet, buffer_addr = stash[idx]
        packet.buffer_addr = buffer_addr
        latency = self.app.process(self.core, packet)
        if self.self_invalidate:
            assert self.maintenance is not None
            latency += self.maintenance.invalidate_range(
                buffer_addr, packet.size_bytes, self.sim.now
            )

        def done() -> None:
            packet.completion_time = self.sim.now
            self.completed_packets.append(packet)
            assert self.buffer_pool is not None
            self.buffer_pool.free(buffer_addr)
            self._process_stash(stash, idx + 1)

        self.sim.schedule_after(max(latency, 1), done, "pmd-stash")

    def _tx_done(self, desc: RxDescriptor, packet) -> None:
        """TX reads finished: the L2Fwd buffer is now consumed (dead)."""
        if self.self_invalidate:
            assert self.maintenance is not None
            # Issued by the TX-completion handling in the driver; the
            # instruction cost is charged implicitly (it overlaps polling).
            self.maintenance.invalidate_range(
                desc.buffer_addr, packet.size_bytes, self.sim.now
            )
        self.queue.ring.free(desc)

    def _finish_batch(self, batch: List[RxDescriptor]) -> None:
        # NIC tail already advanced by per-packet frees (non-TX apps); TX
        # descriptors free asynchronously.  Loop straight into re-polling:
        # DPDK's run-to-completion loop never sleeps.
        self.sim.schedule_after(1, self._poll, "pmd-next")


class AntagonistDriver:
    """Drives the LLCAntagonist loop: chunks of random reads, forever."""

    def __init__(
        self,
        sim: Simulator,
        core: Core,
        app: LLCAntagonist,
    ) -> None:
        self.sim = sim
        self.core = core
        self.app = app
        self._rng = random.Random(app.seed)
        self._stopped = False
        self.iterations = 0
        #: (time, cumulative accesses, cumulative memory ticks) samples,
        #: one per iteration — lets the harness compute the average access
        #: latency over an arbitrary window (the paper's CPI comparison is
        #: over the burst-processing window, not the whole run).
        self.samples: List[Tuple[int, int, int]] = []

    def warmup(self) -> None:
        """Initialize (touch) the whole buffer, as the paper does (§VI)."""
        for i in range(self.app.num_lines()):
            self.core.mem_write(self.app.buffer_base + i * LINE_SIZE)

    def start(self, at: Optional[int] = None) -> None:
        t = self.sim.now if at is None else at
        self.sim.schedule_at(t, self._iterate, f"antagonist-c{self.core.core_id}")

    def stop(self) -> None:
        self._stopped = True

    def access_ns_between(self, start: int, end: int) -> Optional[float]:
        """Average memory-access latency (ns) inside ``[start, end]``.

        Computed from the per-iteration samples; returns ``None`` when the
        antagonist did not run long enough inside the window.
        """
        inside = [s for s in self.samples if start <= s[0] <= end]
        if len(inside) < 2:
            return None
        t0, acc0, ticks0 = inside[0]
        t1, acc1, ticks1 = inside[-1]
        if acc1 <= acc0:
            return None
        return (ticks1 - ticks0) / (acc1 - acc0) / units.NANOSECOND

    def _iterate(self) -> None:
        if self._stopped:
            return
        app = self.app
        core = self.core
        latency = 0
        n_lines = app.num_lines()
        base = app.buffer_base
        randrange = self._rng.randrange
        mem_read = core.mem_read
        # Constant per-access compute cost: convert once, account once.
        compute_ticks = units.cycles(app.compute_cycles_per_access, core.freq_ghz)
        n = app.accesses_per_iteration
        for _ in range(n):
            latency += mem_read(base + randrange(n_lines) * LINE_SIZE) + compute_ticks
        core.stats.compute_ticks += compute_ticks * n
        app.accesses_done += n
        self.iterations += 1
        self.samples.append(
            (self.sim.now, self.app.accesses_done, self.core.stats.mem_ticks)
        )
        self.sim.schedule_after(max(latency, 1), self._iterate, "antagonist-iter")
