"""CPU-side substrate: cores, the DPDK-style stack, apps, maintenance ops."""

from .apps import (
    CostModel,
    L2Fwd,
    L2FwdPayloadDrop,
    LLCAntagonist,
    NetworkFunction,
    TouchDrop,
)
from .core import Core, CoreStats
from .dpdk import AntagonistDriver, PollModeDriver
from .maintenance import MaintenanceUnit
from .pagetable import (
    PAGE_SIZE,
    InvalidatePermissionError,
    PageTable,
    PageTableEntry,
)

__all__ = [
    "AntagonistDriver",
    "Core",
    "CoreStats",
    "CostModel",
    "InvalidatePermissionError",
    "L2Fwd",
    "L2FwdPayloadDrop",
    "LLCAntagonist",
    "MaintenanceUnit",
    "NetworkFunction",
    "PAGE_SIZE",
    "PageTable",
    "PageTableEntry",
    "PollModeDriver",
    "TouchDrop",
]
