"""The evaluation workloads of Table II.

* **TouchDrop** — receive packets, touch their entire data, drop them.
  The prototypical *deep* (full-payload) receive-intensive NF; uses the
  run-to-completion recycling mode (§II-B M3).
* **L2Fwd** — receive packets, inspect the Ethernet header, forward the
  packet back out zero-copy.  The prototypical *shallow* NF: the payload
  is never touched by the core, and the DMA buffer is consumed only once
  the NIC's TX reads complete (Fig. 3 right).
* **L2FwdPayloadDrop** — the §VII variant that processes the header and
  drops the payload; its senders mark it application class 1 (long use
  distance), which is what exercises IDIO's selective direct DRAM access.
* **LLCAntagonist** — allocates a buffer and randomly accesses elements,
  creating LLC pressure; not a network function (driven by
  :class:`~repro.cpu.dpdk.AntagonistDriver`).

Cost-model constants: software work is charged in cycles at 3 GHz on top
of the hierarchy's memory latencies.  ``BASE_CYCLES`` covers the PMD/mbuf
bookkeeping per packet; ``TOUCH_CYCLES_PER_LINE`` the data-touching loop.
With MLC-resident data this yields ~1.0 us per 1514 B packet — i.e. the
~12 Gbps per-core saturation the paper reports (§VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..mem.line import LINE_SIZE, lines_spanning
from ..net.packet import APP_CLASS_LONG_USE, APP_CLASS_SHORT_USE, HEADER_BYTES, Packet
from ..sim import units
from .core import Core


class NetworkFunction:
    """Base class for packet-consuming applications."""

    #: DSCP application class the function's senders mark (§V-A).
    app_class = APP_CLASS_SHORT_USE
    #: Whether processed packets are transmitted back out (zero-copy TX).
    transmits = False
    #: Buffer recycling mode (§II-B): all our NFs are run-to-completion.
    recycle_mode = "run_to_completion"
    name = "nf"

    def process(self, core: Core, packet: Packet) -> int:
        """Run the per-packet work on ``core``; returns the latency in ticks.

        Implementations issue demand accesses through the core (which
        mutate the shared cache hierarchy) and charge compute cycles.
        """
        raise NotImplementedError


@dataclass
class CostModel:
    """Per-packet software cost knobs shared by the NFs.

    ``mem_overlap`` models the memory-level parallelism of the streaming
    data-touch loop: a 3-wide OoO core with 16 L2 MSHRs (Table I) keeps
    several line fetches of the same buffer in flight, so the *effective*
    per-line stall is the hierarchy latency divided by the overlap factor.
    Dependent accesses (header parsing, the LLCAntagonist's random walk)
    do not benefit and are charged full latency.
    """

    #: Fixed per-packet driver/mbuf overhead, in cycles (~600 ns at 3 GHz).
    base_cycles: float = 1800.0
    #: Data-touching work per cacheline, in cycles (~10 ns at 3 GHz).
    touch_cycles_per_line: float = 30.0
    #: Header parsing / forwarding decision work, in cycles.
    header_cycles: float = 300.0
    #: Overlap factor for streaming (independent) line fetches.
    mem_overlap: float = 8.0


class TouchDrop(NetworkFunction):
    """Receive, touch every byte, drop (Table II)."""

    name = "touchdrop"
    app_class = APP_CLASS_SHORT_USE
    transmits = False

    def __init__(self, cost: Optional[CostModel] = None) -> None:
        self.cost = cost or CostModel()
        self.packets_processed = 0
        self.bytes_processed = 0

    def process(self, core: Core, packet: Packet) -> int:
        assert packet.buffer_addr is not None, "packet was never DMA-ed"
        cost = self.cost
        latency = core.compute(cost.base_cycles)
        # The per-line touch cost is a constant: convert it once and batch
        # the compute-tick accounting after the loop instead of calling
        # core.compute() per cacheline (this loop touches every line of
        # every received packet — the hottest application loop there is).
        touch_ticks = units.cycles(cost.touch_cycles_per_line, core.freq_ghz)
        overlap = cost.mem_overlap
        mem_read = core.mem_read
        touched = 0
        for addr in lines_spanning(packet.buffer_addr, packet.size_bytes):
            # Streaming touch loop: line fetches overlap (MLP), so only the
            # effective (divided) stall is charged to the packet.
            latency += int(mem_read(addr) / overlap) + touch_ticks
            touched += 1
        core.stats.compute_ticks += touch_ticks * touched
        self.packets_processed += 1
        self.bytes_processed += packet.size_bytes
        return latency


class L2Fwd(NetworkFunction):
    """Receive, parse the Ethernet header, forward zero-copy (Table II).

    Only the header line is read; the destination MAC rewrite dirties it.
    The driver initiates TX after processing; the buffer is recycled (and,
    under IDIO, self-invalidated) when the NIC's PCIe reads complete.
    """

    name = "l2fwd"
    app_class = APP_CLASS_SHORT_USE
    transmits = True

    def __init__(self, cost: Optional[CostModel] = None) -> None:
        self.cost = cost or CostModel()
        self.packets_processed = 0
        self.bytes_processed = 0

    def process(self, core: Core, packet: Packet) -> int:
        assert packet.buffer_addr is not None, "packet was never DMA-ed"
        latency = core.compute(self.cost.base_cycles)
        for addr in lines_spanning(packet.buffer_addr, min(packet.size_bytes, HEADER_BYTES)):
            latency += core.mem_read(addr)
        latency += core.compute(self.cost.header_cycles)
        # Rewrite the destination MAC in place (zero-copy forward).
        latency += core.mem_write(packet.buffer_addr)
        self.packets_processed += 1
        self.bytes_processed += packet.size_bytes
        return latency


class L2FwdPayloadDrop(NetworkFunction):
    """§VII variant: process the header, drop the payload.

    Senders mark these flows application class 1, so under IDIO the
    payload lines are written directly to DRAM (M3) and never pollute the
    LLC.
    """

    name = "l2fwd-payload-drop"
    app_class = APP_CLASS_LONG_USE
    transmits = False

    def __init__(self, cost: Optional[CostModel] = None) -> None:
        self.cost = cost or CostModel()
        self.packets_processed = 0
        self.bytes_processed = 0

    def process(self, core: Core, packet: Packet) -> int:
        assert packet.buffer_addr is not None, "packet was never DMA-ed"
        latency = core.compute(self.cost.base_cycles)
        for addr in lines_spanning(packet.buffer_addr, min(packet.size_bytes, HEADER_BYTES)):
            latency += core.mem_read(addr)
        latency += core.compute(self.cost.header_cycles)
        self.packets_processed += 1
        self.bytes_processed += packet.size_bytes
        return latency


class LLCAntagonist:
    """Allocate a buffer and randomly access elements (Table II).

    Creates LLC interference at a configurable degree via the buffer size.
    The paper warms the buffer before collecting stats and shrinks the
    antagonist core's MLC to 256 KB so it is LLC-sensitive (§VI).
    """

    name = "llcantagonist"

    def __init__(
        self,
        buffer_base: int,
        buffer_bytes: int = 2 * 1024 * 1024,
        accesses_per_iteration: int = 64,
        compute_cycles_per_access: float = 6.0,
        seed: int = 42,
    ) -> None:
        if buffer_bytes < LINE_SIZE:
            raise ValueError("antagonist buffer must hold at least one line")
        self.buffer_base = buffer_base
        self.buffer_bytes = buffer_bytes
        self.accesses_per_iteration = accesses_per_iteration
        self.compute_cycles_per_access = compute_cycles_per_access
        self.seed = seed
        self.accesses_done = 0

    def num_lines(self) -> int:
        return self.buffer_bytes // LINE_SIZE
