"""Generic set-associative cache with way masks.

This is the building block for both the private MLC and the shared LLC.
Way masks are how the two partitioning features of the paper are modeled:

* DDIO write-allocates may only land in the first ``ddio_ways`` ways of the
  LLC (the "DDIO ways" of Fig. 1);
* CAT-style partitioning restricts a core's fills to a subset of ways
  (the ``_1way`` configurations of Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .line import LINE_SIZE, CacheLine, line_address
from .replacement import LRUPolicy, ReplacementPolicy, make_policy

_LINE_MASK = ~(LINE_SIZE - 1)


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    ``latency`` is in simulator ticks and charged per access by the caller
    (the hierarchy), not inside the cache container itself.
    """

    name: str
    size_bytes: int
    assoc: int
    latency: int
    mshrs: int = 32
    replacement: str = "lru"
    line_size: int = LINE_SIZE

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_size)
        if sets <= 0:
            raise ValueError(f"{self.name}: size too small for geometry")
        return sets

    def validate(self) -> None:
        if self.size_bytes % (self.assoc * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line_size ({self.assoc}*{self.line_size})"
            )
        if self.assoc <= 0:
            raise ValueError(f"{self.name}: associativity must be positive")


class SetAssociativeCache:
    """A set-associative cache storing :class:`CacheLine` objects.

    Lookup/insert/remove are O(assoc).  The container holds no timing; it
    is pure state plus replacement bookkeeping.
    """

    __slots__ = (
        "config",
        "num_sets",
        "assoc",
        "_sets",
        "_where",
        "policy",
        "_all_ways",
        "_mask_cache",
        "_line_shift",
        "_set_mask",
        "_lru_rows",
    )

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._sets: List[List[Optional[CacheLine]]] = [
            [None] * self.assoc for _ in range(self.num_sets)
        ]
        self._where: Dict[int, Tuple[int, int]] = {}
        self.policy: ReplacementPolicy = make_policy(
            config.replacement, self.num_sets, self.assoc
        )
        self._all_ways: Tuple[int, ...] = tuple(range(self.assoc))
        #: Validated way masks keyed by their tuple form (masks repeat:
        #: the DDIO ways, the CPU fill order, per-core CAT masks).
        self._mask_cache: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        # Shift/mask fast path for set indexing (both the line size and —
        # for all shipped geometries — the set count are powers of two).
        line_size = config.line_size
        self._line_shift = (
            line_size.bit_length() - 1 if line_size & (line_size - 1) == 0 else -1
        )
        self._set_mask = (
            self.num_sets - 1 if self.num_sets & (self.num_sets - 1) == 0 else -1
        )
        # Fast-path recency: for the exact default LRU policy the cache
        # bumps the policy's per-set tick rows directly, fusing the
        # free-way scan and the victim scan into one pass over the set.
        # Any other policy (plru, random, the reference/vectorized LRUs)
        # goes through the generic on_access/victim protocol.
        self._lru_rows: Optional[List[List[int]]] = (
            self.policy._last_use if type(self.policy) is LRUPolicy else None
        )

    # -- addressing ---------------------------------------------------

    def set_index(self, addr: int) -> int:
        if self._line_shift >= 0 and self._set_mask >= 0:
            return (addr >> self._line_shift) & self._set_mask
        return (addr // self.config.line_size) % self.num_sets

    def _validated_mask(self, key: Tuple[int, ...]) -> Tuple[int, ...]:
        if not key:
            raise ValueError(f"{self.config.name}: empty way mask")
        for w in key:
            if w < 0 or w >= self.assoc:
                raise ValueError(
                    f"{self.config.name}: way {w} outside 0..{self.assoc - 1}"
                )
        self._mask_cache[key] = key
        return key

    # -- queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, addr: int) -> bool:
        return line_address(addr) in self._where

    def peek(self, addr: int) -> Optional[CacheLine]:
        """Return the resident line without touching recency state."""
        loc = self._where.get(line_address(addr))
        if loc is None:
            return None
        return self._sets[loc[0]][loc[1]]

    def lookup(self, addr: int) -> Optional[CacheLine]:
        """Return the resident line and update recency (a cache hit)."""
        loc = self._where.get(addr & _LINE_MASK)
        if loc is None:
            return None
        set_idx, way = loc
        rows = self._lru_rows
        if rows is not None:
            policy = self.policy
            tick = policy._tick + 1
            policy._tick = tick
            rows[set_idx][way] = tick
        else:
            self.policy.on_access(set_idx, way)
        return self._sets[set_idx][way]

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over all resident lines (test/diagnostic use)."""
        for cache_set in self._sets:
            for entry in cache_set:
                if entry is not None:
                    yield entry

    def occupancy_by_origin(self) -> Dict[str, int]:
        """Count resident lines by their ``origin`` tag (DMA bloat stats)."""
        counts: Dict[str, int] = {}
        for entry in self.lines():
            counts[entry.origin] = counts.get(entry.origin, 0) + 1
        return counts

    # -- mutation -----------------------------------------------------

    def insert(
        self,
        line: CacheLine,
        way_mask: Optional[Sequence[int]] = None,
    ) -> Optional[CacheLine]:
        """Insert ``line``; return the evicted victim line, if any.

        ``way_mask`` restricts which ways the fill may use (and therefore
        which resident lines may be evicted).  If the line is already
        resident this degenerates to an in-place update (dirty OR-ed in,
        recency touched) and returns ``None``.
        """
        addr = line.addr
        where = self._where
        existing_loc = where.get(addr)
        rows = self._lru_rows
        if existing_loc is not None:
            set_idx, way = existing_loc
            resident = self._sets[set_idx][way]
            assert resident is not None
            resident.dirty = resident.dirty or line.dirty
            resident.origin = line.origin
            resident.owner = line.owner
            if rows is not None:
                policy = self.policy
                tick = policy._tick + 1
                policy._tick = tick
                rows[set_idx][way] = tick
            else:
                self.policy.on_access(set_idx, way)
            return None

        if self._line_shift >= 0 and self._set_mask >= 0:
            set_idx = (addr >> self._line_shift) & self._set_mask
        else:
            set_idx = (addr // self.config.line_size) % self.num_sets
        if way_mask is None:
            ways: Tuple[int, ...] = self._all_ways
        else:
            key = tuple(way_mask)
            ways = self._mask_cache.get(key) or self._validated_mask(key)

        cache_set = self._sets[set_idx]
        victim: Optional[CacheLine] = None

        if rows is not None:
            # Fused scan: one pass finds the first free way *and* tracks
            # the LRU victim among occupied ways, so a full set costs one
            # traversal instead of free-scan + policy.victim + bookkeeping
            # calls.  Tie-break (first eligible among never-touched ways)
            # matches LRUPolicy.victim exactly.
            row = rows[set_idx]
            target_way = -1
            best_way = -1
            best_tick = -1
            for w in ways:
                if cache_set[w] is None:
                    target_way = w
                    break
                t = row[w]
                if best_tick < 0 or t < best_tick:
                    best_way = w
                    best_tick = t
            if target_way < 0:
                target_way = best_way
                victim = cache_set[target_way]
                del where[victim.addr]
            policy = self.policy
            tick = policy._tick + 1
            policy._tick = tick
            cache_set[target_way] = line
            where[addr] = (set_idx, target_way)
            row[target_way] = tick
            return victim

        target_way = -1
        for w in ways:
            if cache_set[w] is None:
                target_way = w
                break
        if target_way < 0:
            target_way = self.policy.victim(set_idx, ways)
            victim = cache_set[target_way]
            del where[victim.addr]
            self.policy.on_evict(set_idx, target_way)

        cache_set[target_way] = line
        where[addr] = (set_idx, target_way)
        self.policy.on_access(set_idx, target_way)
        return victim

    def remove(self, addr: int) -> Optional[CacheLine]:
        """Remove and return the line at ``addr`` (no writeback implied)."""
        addr = line_address(addr)
        loc = self._where.pop(addr, None)
        if loc is None:
            return None
        set_idx, way = loc
        line = self._sets[set_idx][way]
        self._sets[set_idx][way] = None
        self.policy.on_evict(set_idx, way)
        return line

    def clear(self) -> None:
        for set_idx in range(self.num_sets):
            self._sets[set_idx] = [None] * self.assoc
        self._where.clear()
