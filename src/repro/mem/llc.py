"""Shared non-inclusive LLC with DDIO way partition and snoop-filter directory.

This models the Skylake-style LLC of Fig. 1:

* data ways (``assoc`` total) of which the first ``ddio_ways`` are the only
  ways a DDIO write-allocate may fill ("DDIO" ways);
* a snoop-filter directory ("Excl MLC" in the figure) holding the tags of
  lines currently resident in some private MLC, used to filter coherence
  traffic.  Directory evictions back-invalidate the MLC copy, as in real
  non-inclusive hierarchies (this is the effect exploited by directory
  side-channel attacks the paper cites).

Inclusive mode (``inclusive=True``) is provided as a counterfactual used by
the ablation benchmarks: in inclusive mode the LLC keeps a copy of every
MLC-resident line and MLC evictions of clean lines need no LLC fill.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from .cache import CacheConfig, SetAssociativeCache
from .line import _LINE_MASK, CacheLine, line_address
from .stats import StatsBundle


class DirectoryEntry:
    """Directory state for one MLC-resident line."""

    __slots__ = ("addr", "owners")

    def __init__(self, addr: int, owners: Optional[set] = None) -> None:
        self.addr = addr
        self.owners = owners if owners is not None else set()


#: Shared empty result for the no-eviction (common) case of
#: :meth:`SnoopFilterDirectory.add` — callers only iterate the result, so
#: one list serves every call without a per-call allocation.
_NO_EVICTIONS: List[DirectoryEntry] = []


class SnoopFilterDirectory:
    """Tag directory of MLC-resident lines with LRU-bounded capacity.

    ``capacity`` of ``None`` means unbounded (the default used by the
    reproduction configs, where the directory is provisioned to cover all
    MLCs as on real parts).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[int, DirectoryEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: int) -> bool:
        return line_address(addr) in self._entries

    def owners(self, addr: int) -> set:
        entry = self._entries.get(line_address(addr))
        return set(entry.owners) if entry else set()

    def get(self, addr: int) -> Optional[DirectoryEntry]:
        """The live entry for ``addr`` (no copy), or ``None``.

        Hot-path alternative to :meth:`owners`: callers that only iterate
        must not mutate the entry's owner set while doing so (take
        ``sorted(entry.owners)`` first — it materializes a copy).
        """
        return self._entries.get(addr & _LINE_MASK)

    def add(self, addr: int, core: int) -> List[DirectoryEntry]:
        """Track ``addr`` as resident in ``core``'s MLC.

        Returns a list of entries evicted to make room (empty when the
        directory has space); the caller must back-invalidate those lines
        from their owner MLCs.
        """
        addr = addr & _LINE_MASK
        entry = self._entries.get(addr)
        if entry is not None:
            entry.owners.add(core)
            # Recency order only matters under a capacity bound; the
            # unbounded default never evicts, so skip the reorder.
            if self.capacity is not None:
                self._entries.move_to_end(addr)
            return _NO_EVICTIONS
        if self.capacity is None:
            self._entries[addr] = DirectoryEntry(addr, {core})
            return _NO_EVICTIONS
        evicted: List[DirectoryEntry] = []
        while len(self._entries) >= self.capacity:
            _, old = self._entries.popitem(last=False)
            evicted.append(old)
        self._entries[addr] = DirectoryEntry(addr, {core})
        return evicted

    def remove(self, addr: int, core: Optional[int] = None) -> None:
        """Drop ``core``'s residency (or the whole entry when ``core=None``)."""
        addr = addr & _LINE_MASK
        entry = self._entries.get(addr)
        if entry is None:
            return
        if core is None:
            del self._entries[addr]
            return
        entry.owners.discard(core)
        if not entry.owners:
            del self._entries[addr]


class NonInclusiveLLC:
    """The shared LLC: data array + directory + way-partition bookkeeping."""

    def __init__(
        self,
        config: CacheConfig,
        stats: StatsBundle,
        ddio_ways: int = 2,
        directory_capacity: Optional[int] = None,
        inclusive: bool = False,
        slices: int = 0,
        hop_latency: int = 0,
    ) -> None:
        """``slices > 0`` enables the NUCA model: the LLC is distributed
        as one slice per position on a ring, a line's home slice is an
        address hash, and an access from core ``c`` pays ``hop_latency``
        per ring hop to the line's slice.  Slice assignment affects only
        latency, never placement capacity (real slices are separate
        arrays; our monolithic array approximates the aggregate, which is
        exact for the uniform hash)."""
        if not 0 < ddio_ways <= config.assoc:
            raise ValueError(
                f"ddio_ways must be in 1..{config.assoc}, got {ddio_ways}"
            )
        if slices < 0:
            raise ValueError(f"slices must be non-negative, got {slices}")
        self.config = config
        self.stats = stats
        # Eviction counting is one unlogged increment per fill victim;
        # the shared counter dict is hit directly (see StatsBundle.bump).
        self._counter_values = stats._counter_values
        self.data = SetAssociativeCache(config)
        self.directory = SnoopFilterDirectory(directory_capacity)
        self.ddio_ways = ddio_ways
        self.inclusive = inclusive
        self.slices = slices
        self.hop_latency = hop_latency
        #: CacheDirector-style per-line home-slice overrides.
        self._slice_override: Dict[int, int] = {}
        self._io_mask = list(range(ddio_ways))
        self._all_mask = list(range(config.assoc))
        # CPU fills may use any way, but prefer the non-DDIO ("Excl LLC")
        # ways: empty-slot scans follow this order, so CPU data only
        # spills into the DDIO ways when the rest of the set is full.
        # (DMA bloating still happens — a full set's LRU victim can be
        # anywhere — but CPU lines do not gratuitously park in the ways
        # the next DMA write-allocate will reclaim.)
        self._cpu_fill_order = list(range(ddio_ways, config.assoc)) + list(
            range(ddio_ways)
        )
        #: per-core CAT masks; default = all ways (set_way_mask overrides).
        self._core_masks: Dict[int, List[int]] = {}
        #: per-tenant I/O way masks (IOCA-style partitioning); a tenant
        #: absent from this map falls back to the shared DDIO partition.
        self._tenant_io_masks: Dict[int, List[int]] = {}

    # -- configuration -------------------------------------------------

    def set_ddio_ways(self, ddio_ways: int) -> None:
        """Reconfigure the number of DDIO ways at runtime.

        This is the knob IAT-style dynamic DDIO policies turn (the paper's
        related work [41]): growing the partition gives inbound DMA more
        LLC room, shrinking it protects application data.  Lines already
        resident outside the new partition stay where they are (as on real
        hardware, where way masks only gate *future* allocations).
        """
        if not 0 < ddio_ways <= self.config.assoc:
            raise ValueError(
                f"ddio_ways must be in 1..{self.config.assoc}, got {ddio_ways}"
            )
        self.ddio_ways = ddio_ways
        self._io_mask = list(range(ddio_ways))
        self._cpu_fill_order = list(range(ddio_ways, self.config.assoc)) + list(
            range(ddio_ways)
        )

    def set_core_way_mask(self, core: int, ways: Sequence[int]) -> None:
        """CAT-style restriction of a core's LLC fills to ``ways``.

        Used by the ``_1way`` configurations of Fig. 4.
        """
        ways = sorted(set(ways))
        if not ways:
            raise ValueError("way mask must not be empty")
        for w in ways:
            if w < 0 or w >= self.config.assoc:
                raise ValueError(f"way {w} outside the LLC's {self.config.assoc} ways")
        self._core_masks[core] = list(ways)

    def core_way_mask(self, core: int) -> List[int]:
        return list(self._core_masks.get(core, self._all_mask))

    def set_tenant_io_ways(self, tenant: int, ways: Sequence[int]) -> None:
        """Restrict ``tenant``'s DMA write-allocates to ``ways``.

        The IOCA-style partitioning knob: each tenant's inbound DMA fills
        only its own slice of the DDIO partition, so one tenant's burst
        cannot evict another's I/O lines.  Like :meth:`set_ddio_ways`,
        masks gate only *future* allocations — resident lines stay put.
        Ways must lie inside the DDIO partition.
        """
        if tenant < 0:
            raise ValueError(f"tenant must be non-negative, got {tenant}")
        ways = sorted(set(ways))
        if not ways:
            raise ValueError("tenant way mask must not be empty")
        for w in ways:
            if w < 0 or w >= self.ddio_ways:
                raise ValueError(
                    f"tenant way {w} outside the {self.ddio_ways}-way DDIO partition"
                )
        self._tenant_io_masks[tenant] = list(ways)

    def tenant_io_ways(self, tenant: int) -> List[int]:
        """The I/O way mask in force for ``tenant`` (shared mask if unset)."""
        return list(self._tenant_io_masks.get(tenant, self._io_mask))

    def tenant_way_table(self) -> Dict[int, List[int]]:
        """A copy of the per-tenant I/O way masks (sanitizer/summary hook)."""
        return {t: list(ways) for t, ways in self._tenant_io_masks.items()}

    # -- NUCA slice model -----------------------------------------------

    def slice_of(self, addr: int) -> int:
        """Home slice of a line: override if present, else address hash.

        The hash folds the line number's bits, approximating the Intel
        CBo slice-selection hash's uniform spread.
        """
        if self.slices <= 0:
            return 0
        addr = line_address(addr)
        override = self._slice_override.get(addr)
        if override is not None:
            return override
        h = addr >> 6
        h = (h ^ (h >> 7) ^ (h >> 13) ^ (h >> 21)) * 0x9E3779B1
        return (h >> 8) % self.slices

    def set_slice_override(self, addr: int, target_slice: int) -> None:
        """Pin a line's home slice (CacheDirector-style steering)."""
        if self.slices <= 0:
            raise ValueError("slice override requires a sliced LLC")
        if not 0 <= target_slice < self.slices:
            raise ValueError(f"slice {target_slice} outside 0..{self.slices - 1}")
        self._slice_override[line_address(addr)] = target_slice

    def home_slice_of_core(self, core: int) -> int:
        """The slice co-located with ``core`` on the ring."""
        if self.slices <= 0:
            return 0
        return core % self.slices

    def access_latency(self, core: int, addr: int) -> int:
        """Latency of an access from ``core`` to ``addr``'s home slice."""
        if self.slices <= 0:
            return self.config.latency
        src = self.home_slice_of_core(core)
        dst = self.slice_of(addr)
        hops = min((dst - src) % self.slices, (src - dst) % self.slices)
        return self.config.latency + hops * self.hop_latency

    # -- queries --------------------------------------------------------

    def __contains__(self, addr: int) -> bool:
        return addr in self.data

    def peek(self, addr: int) -> Optional[CacheLine]:
        return self.data.peek(addr)

    def lookup(self, addr: int) -> Optional[CacheLine]:
        return self.data.lookup(addr)

    def io_occupancy(self) -> int:
        """Number of resident lines whose origin is I/O (DMA-bloat metric)."""
        return self.data.occupancy_by_origin().get("io", 0)

    # -- fills ----------------------------------------------------------

    def fill_io(
        self, line: CacheLine, now: int, tenant: int = -1
    ) -> Optional[CacheLine]:
        """DDIO write-allocate into the DDIO ways; returns the victim.

        When ``tenant`` has a partition installed via
        :meth:`set_tenant_io_ways`, the fill is confined to that
        tenant's ways; otherwise it may use the whole DDIO partition.
        """
        line.origin = "io"
        if tenant >= 0 and self._tenant_io_masks:
            mask = self._tenant_io_masks.get(tenant, self._io_mask)
        else:
            mask = self._io_mask
        victim = self.data.insert(line, way_mask=mask)
        if victim is not None:
            self._counter_values["llc_evictions"] += 1
        return victim

    def fill_cpu(
        self, line: CacheLine, now: int, core: Optional[int] = None
    ) -> Optional[CacheLine]:
        """CPU-side fill (MLC victim or inclusive fill); any allowed way.

        This is the path that produces *DMA bloating*: an MLC writeback of a
        consumed DMA line lands in a non-DDIO way with origin ``cpu``.
        """
        if core is None or core not in self._core_masks:
            mask = self._cpu_fill_order
        else:
            mask = self.core_way_mask(core)
        victim = self.data.insert(line, way_mask=mask)
        if victim is not None:
            self._counter_values["llc_evictions"] += 1
        return victim

    def remove(self, addr: int) -> Optional[CacheLine]:
        return self.data.remove(addr)
