"""Optional numpy acceleration layer (the only sanctioned numpy import).

The simulator must run — and produce byte-identical results — on a bare
CPython install.  Everything numpy-flavored therefore funnels through
this module: the import is guarded, :data:`HAVE_NUMPY` reports the
outcome, and callers branch on the flag (or on a factory that already
did).  simlint's SIM008 enforces the funnel: an unguarded top-level
``import numpy`` anywhere else in simulation code is a lint error, so a
missing numpy can never break ``import repro``.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # pragma: no cover - exercised indirectly via HAVE_NUMPY branches
    import numpy
except ImportError:  # pragma: no cover - numpy is present in CI
    numpy = None  # type: ignore[assignment]

#: True when numpy imported cleanly; the sole gate for vectorized paths.
HAVE_NUMPY = numpy is not None

np = numpy


def set_indices(
    addrs: Sequence[int], line_shift: int, set_mask: int
) -> "List[int]":
    """Set index for each address, vectorized when numpy is available.

    Matches ``SetAssociativeCache.set_index`` for power-of-two
    geometries (``line_shift``/``set_mask`` as precomputed there).  The
    pure-Python fallback makes the helper safe to call unconditionally.
    """
    if HAVE_NUMPY and len(addrs) >= 8:
        arr = np.asarray(addrs, dtype=np.int64)
        return ((arr >> line_shift) & set_mask).tolist()
    return [(a >> line_shift) & set_mask for a in addrs]
