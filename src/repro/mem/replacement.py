"""Replacement policies for set-associative caches.

A policy instance is attached to one cache and tracks recency state per
(set, way).  The cache calls :meth:`on_access` on every hit or fill and
:meth:`victim` when it needs to evict.  ``victim`` only ever chooses among
the *eligible* ways the cache passes in — this is how DDIO way partitioning
and CAT-style way masks are enforced without the policy knowing about them.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ._vec import HAVE_NUMPY, np


class ReplacementPolicy:
    """Interface for replacement policies."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        self.num_sets = num_sets
        self.assoc = assoc

    def on_access(self, set_idx: int, way: int) -> None:
        """Note that (set, way) was touched (hit or fill)."""
        raise NotImplementedError

    def on_evict(self, set_idx: int, way: int) -> None:
        """Note that (set, way) was emptied."""

    def victim(self, set_idx: int, eligible_ways: Sequence[int]) -> int:
        """Choose a way to evict from ``eligible_ways`` (all occupied)."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used, via a global access counter per way.

    Recency is a flat per-set list of access ticks (0 = never touched),
    and the victim scan is a plain comparison loop.  This is the hot path
    of every cache fill; see :class:`ReferenceLRUPolicy` for the original
    ``min()``-over-a-dict formulation it must stay equivalent to (the
    property test in ``tests/test_mem_replacement_property.py`` checks
    the equivalence on random traces).
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._tick = 0
        self._last_use: List[List[int]] = [[0] * assoc for _ in range(num_sets)]

    def on_access(self, set_idx: int, way: int) -> None:
        self._tick += 1
        self._last_use[set_idx][way] = self._tick

    def on_evict(self, set_idx: int, way: int) -> None:
        self._last_use[set_idx][way] = 0

    def victim(self, set_idx: int, eligible_ways: Sequence[int]) -> int:
        row = self._last_use[set_idx]
        best_way = -1
        best_tick = -1
        for w in eligible_ways:
            t = row[w]
            if best_tick < 0 or t < best_tick:
                best_way = w
                best_tick = t
        if best_way < 0:
            raise ValueError("no eligible ways to evict")
        return best_way


class ReferenceLRUPolicy(ReplacementPolicy):
    """The original dict + ``min()`` LRU implementation.

    Kept as the behavioral reference for :class:`LRUPolicy`: ties (never-
    touched ways) break toward the first eligible way, exactly like the
    optimized comparison loop.
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._tick = 0
        self._last_use: Dict[Tuple[int, int], int] = {}

    def on_access(self, set_idx: int, way: int) -> None:
        self._tick += 1
        self._last_use[(set_idx, way)] = self._tick

    def on_evict(self, set_idx: int, way: int) -> None:
        self._last_use.pop((set_idx, way), None)

    def victim(self, set_idx: int, eligible_ways: Sequence[int]) -> int:
        if not eligible_ways:
            raise ValueError("no eligible ways to evict")
        return min(eligible_ways, key=lambda w: self._last_use.get((set_idx, w), 0))


class VectorizedLRUPolicy(ReplacementPolicy):
    """LRU with numpy-backed recency state and an ``argmin`` victim scan.

    Semantically identical to :class:`LRUPolicy`/:class:`ReferenceLRUPolicy`
    — same global tick counter, same first-eligible tie-break (numpy's
    ``argmin`` returns the first minimum, matching the comparison loop) —
    the hypothesis differential test in
    ``tests/test_mem_replacement_vec.py`` pins the equivalence on random
    traces.  Only constructed when :data:`repro.mem._vec.HAVE_NUMPY` is
    true; ``make_policy("lru-vec", ...)`` silently falls back to
    :class:`LRUPolicy` otherwise, so configs naming it stay portable.

    The win is for wide scans (high associativity, masked subsets resolved
    with one gather); at the shipped 8–12-way geometries the plain loop is
    competitive, which is why ``lru`` remains the default.
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        self._tick = 0
        self._last_use = np.zeros((num_sets, assoc), dtype=np.int64)

    def on_access(self, set_idx: int, way: int) -> None:
        self._tick += 1
        self._last_use[set_idx, way] = self._tick

    def on_evict(self, set_idx: int, way: int) -> None:
        self._last_use[set_idx, way] = 0

    def victim(self, set_idx: int, eligible_ways: Sequence[int]) -> int:
        if not len(eligible_ways):
            raise ValueError("no eligible ways to evict")
        ticks = self._last_use[set_idx, list(eligible_ways)]
        return int(eligible_ways[int(np.argmin(ticks))])


def _make_lru_vec(num_sets: int, assoc: int) -> ReplacementPolicy:
    """``lru-vec`` factory: vectorized when numpy is present, else LRU.

    The fallback keeps configs that name ``lru-vec`` runnable (and
    result-identical — both are exact LRU) on numpy-free hosts.
    """
    if HAVE_NUMPY:
        return VectorizedLRUPolicy(num_sets, assoc)
    return LRUPolicy(num_sets, assoc)


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU (the common hardware approximation).

    The tree is kept per set as a flat list of internal-node bits.  With a
    way mask in play the tree walk is re-run until it lands on an eligible
    way, falling back to the first eligible way after ``assoc`` attempts —
    this mirrors how masked PLRU is typically implemented.
    """

    def __init__(self, num_sets: int, assoc: int) -> None:
        super().__init__(num_sets, assoc)
        if assoc & (assoc - 1):
            # Round up to a power of two; ways beyond assoc are never used.
            self._tree_ways = 1 << (assoc - 1).bit_length()
        else:
            self._tree_ways = assoc
        self._bits: Dict[int, List[int]] = {}

    def _tree(self, set_idx: int) -> List[int]:
        tree = self._bits.get(set_idx)
        if tree is None:
            tree = [0] * max(1, self._tree_ways - 1)
            self._bits[set_idx] = tree
        return tree

    def on_access(self, set_idx: int, way: int) -> None:
        tree = self._tree(set_idx)
        node = 0
        lo, hi = 0, self._tree_ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                tree[node] = 1  # point away from the accessed half
                node = 2 * node + 1
                hi = mid
            else:
                tree[node] = 0
                node = 2 * node + 2
                lo = mid
        # node walk complete; leaf reached

    def victim(self, set_idx: int, eligible_ways: Sequence[int]) -> int:
        if not eligible_ways:
            raise ValueError("no eligible ways to evict")
        eligible = set(eligible_ways)
        tree = self._tree(set_idx)
        node = 0
        lo, hi = 0, self._tree_ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if tree[node] == 1:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        candidate = lo
        if candidate in eligible:
            return candidate
        return min(eligible)


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement (useful for tie-break experiments)."""

    def __init__(self, num_sets: int, assoc: int, seed: int = 0) -> None:
        super().__init__(num_sets, assoc)
        self._rng = random.Random(seed)

    def on_access(self, set_idx: int, way: int) -> None:
        pass

    def victim(self, set_idx: int, eligible_ways: Sequence[int]) -> int:
        if not eligible_ways:
            raise ValueError("no eligible ways to evict")
        return self._rng.choice(list(eligible_ways))


_POLICIES = {
    "lru": LRUPolicy,
    "lru-ref": ReferenceLRUPolicy,
    "lru-vec": _make_lru_vec,
    "plru": TreePLRUPolicy,
    "random": RandomPolicy,
}


def make_policy(name: str, num_sets: int, assoc: int) -> ReplacementPolicy:
    """Instantiate a replacement policy by name (``lru``/``plru``/``random``)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(num_sets, assoc)
