"""Typed memory transactions: the unit of work of the unified access path.

Every data movement the paper reasons about — a demand load/store, an
inbound DMA write (DDIO or direct-DRAM), an outbound DMA read, an IDIO
MLC prefetch fill, an invalidate-without-writeback — is described by one
:class:`MemoryTransaction` and executed by
:meth:`repro.mem.hierarchy.MemoryHierarchy.access`.

The hierarchy fills in the outcome fields as the transaction traverses
the machine: the total ``latency``, the serving ``level``, and — when the
owning hierarchy has hop recording enabled (``record_hops``) — a ``hops``
list of :class:`Hop` records, one per component the transaction touched.
Hop records are what the :class:`repro.obs.trace.TraceRecorder` turns
into Chrome-trace events and per-component latency breakdowns (the
telemetry IOCA/5GC²ache-style analyses need).

Hop recording is off by default so the hot path stays a plain
attribute-assignment sequence; the records exist only when somebody
(tracing, tests) asks for them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, NamedTuple, Optional, Tuple

from .line import LINE_SIZE

if TYPE_CHECKING:  # import at runtime would cycle through repro.pcie
    from ..pcie.tlp import IdioTag

# line_address(), inlined as a mask: the constructor runs once per memory
# access, so even one function call here is measurable.
_LINE_MASK = ~(LINE_SIZE - 1)

#: Transaction kinds (``MemoryTransaction.kind``).
CPU_LOAD = "cpu-load"
CPU_STORE = "cpu-store"
DMA_WRITE = "dma-write"
DMA_READ = "dma-read"
PREFETCH_FILL = "prefetch-fill"
INVALIDATE = "invalidate"

KINDS: Tuple[str, ...] = (
    CPU_LOAD,
    CPU_STORE,
    DMA_WRITE,
    DMA_READ,
    PREFETCH_FILL,
    INVALIDATE,
)

#: ``kind`` -> originator, for grouping in traces and breakdowns.
ORIGIN_BY_KIND = {
    CPU_LOAD: "cpu",
    CPU_STORE: "cpu",
    DMA_WRITE: "io",
    DMA_READ: "io",
    PREFETCH_FILL: "prefetcher",
    INVALIDATE: "cpu",
}


class Hop(NamedTuple):
    """One component interaction along a transaction's path.

    ``latency`` is the hop's *contribution to the transaction's critical
    path* in ticks — background work (victim writebacks, back-
    invalidations) is recorded with a zero contribution so the hop list
    sums to the transaction latency.
    """

    component: str  #: "l1" | "mlc" | "llc" | "dram" | "directory"
    action: str  #: "hit" | "miss" | "fill" | "evict" | "writeback" | "drop" | ...
    latency: int


class MemoryTransaction:
    """One typed request against the memory hierarchy.

    Request fields (caller-set): ``kind``, ``addr`` (normalized to a line
    address), ``now``, destination ``core`` (-1 when the transaction has
    no core affinity, e.g. a DMA write before steering), the decoded
    :class:`~repro.pcie.tlp.IdioTag` (DMA writes only), ``placement``
    ("llc"/"dram", DMA writes only) and ``scope`` ("all"/"private",
    invalidates only).

    Outcome fields (hierarchy-set): ``latency`` in ticks, ``level`` (the
    serving level or terminal state) and ``hops``.
    """

    __slots__ = (
        "kind",
        "addr",
        "now",
        "core",
        "tag",
        "placement",
        "scope",
        "latency",
        "level",
        "hops",
    )

    def __init__(
        self,
        kind: str,
        addr: int,
        now: int,
        core: int = -1,
        tag: Optional[IdioTag] = None,
        placement: str = "llc",
        scope: str = "all",
    ) -> None:
        self.kind = kind
        self.addr = addr & _LINE_MASK
        self.now = now
        self.core = core
        self.tag = tag
        self.placement = placement
        self.scope = scope
        self.latency = 0
        self.level: Optional[str] = None
        self.hops: List[Hop] = []

    @property
    def origin(self) -> str:
        """The originating agent class ("cpu", "io", or "prefetcher")."""
        return ORIGIN_BY_KIND[self.kind]

    @property
    def is_write(self) -> bool:
        return self.kind in (CPU_STORE, DMA_WRITE)

    def hop_latency_by_component(self) -> dict:
        """Summed critical-path latency per component (requires hops)."""
        out: dict = {}
        for hop in self.hops:
            out[hop.component] = out.get(hop.component, 0) + hop.latency
        return out

    def __repr__(self) -> str:
        hops = ", ".join(f"{h.component}:{h.action}" for h in self.hops)
        return (
            f"MemoryTransaction({self.kind}, addr={self.addr:#x}, "
            f"core={self.core}, level={self.level}, latency={self.latency}"
            f"{', hops=[' + hops + ']' if hops else ''})"
        )


def cpu_access_txn(core: int, addr: int, is_write: bool, now: int) -> MemoryTransaction:
    """Convenience constructor for a demand load/store transaction."""
    return MemoryTransaction(
        CPU_STORE if is_write else CPU_LOAD, addr, now, core=core
    )
