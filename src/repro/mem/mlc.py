"""Private per-core caches (L1 data cache and mid-level cache).

Both levels are plain set-associative caches owned by one core; the
interesting policy lives in :mod:`repro.mem.hierarchy`, which decides what
happens to victims (non-inclusive victim fill into the LLC, writeback,
silent drop ...).
"""

from __future__ import annotations

from typing import Optional

from .cache import CacheConfig, SetAssociativeCache
from .line import CacheLine
from .stats import StatsBundle


class PrivateCache:
    """A private cache level (L1D or MLC) belonging to ``core``."""

    def __init__(self, config: CacheConfig, core: int, stats: StatsBundle) -> None:
        self.config = config
        self.core = core
        self.stats = stats
        self.data = SetAssociativeCache(config)
        # The eviction counter name is fixed for the cache's lifetime and
        # the bump is unlogged: pre-format the name once and hit the
        # shared counter dict directly (one fill = at most one increment).
        self._evict_counter = f"{config.name}_evictions"
        self._counter_values = stats._counter_values

    def __contains__(self, addr: int) -> bool:
        return addr in self.data

    def __len__(self) -> int:
        return len(self.data)

    @property
    def capacity_lines(self) -> int:
        return self.config.num_sets * self.config.assoc

    def peek(self, addr: int) -> Optional[CacheLine]:
        return self.data.peek(addr)

    def lookup(self, addr: int) -> Optional[CacheLine]:
        return self.data.lookup(addr)

    def fill(self, line: CacheLine, now: int) -> Optional[CacheLine]:
        """Insert a line; returns the evicted victim, if any."""
        line.owner = self.core
        victim = self.data.insert(line)
        if victim is not None:
            self._counter_values[self._evict_counter] += 1
        return victim

    def remove(self, addr: int) -> Optional[CacheLine]:
        return self.data.remove(addr)
