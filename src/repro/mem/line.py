"""Cacheline primitives and address helpers.

All caches operate on 64-byte lines.  Addresses are plain integers in an
abstract physical address space; helpers convert between byte addresses and
line addresses.
"""

from __future__ import annotations

from typing import Iterator

#: Cacheline size in bytes (fixed, matching the evaluated platforms).
LINE_SIZE = 64
_LINE_SHIFT = LINE_SIZE.bit_length() - 1
_LINE_MASK = ~(LINE_SIZE - 1)


def line_address(byte_address: int) -> int:
    """The line-aligned address containing ``byte_address``."""
    return byte_address & _LINE_MASK


def line_index(byte_address: int) -> int:
    """The line number (address divided by the line size)."""
    return byte_address >> _LINE_SHIFT


def lines_spanning(byte_address: int, num_bytes: int) -> Iterator[int]:
    """Yield the line-aligned addresses covering ``[addr, addr+num_bytes)``.

    A 1514-byte Ethernet frame starting on a line boundary spans 24 lines.
    """
    if num_bytes <= 0:
        return
    first = line_address(byte_address)
    last = line_address(byte_address + num_bytes - 1)
    for addr in range(first, last + 1, LINE_SIZE):
        yield addr


def num_lines(num_bytes: int) -> int:
    """Number of lines needed for ``num_bytes`` starting on a line boundary."""
    return -(-num_bytes // LINE_SIZE)


class CacheLine:
    """State for one resident cacheline.

    ``origin`` records who brought the line in — ``"io"`` for DDIO
    write-allocates, ``"cpu"`` for demand fills and victim fills.  The paper
    notes that after an MLC writeback a line is "no longer classified as I/O
    data"; we keep the origin tag purely for occupancy accounting (the DMA
    bloating statistics) — it never affects replacement decisions.
    """

    __slots__ = ("addr", "dirty", "origin", "owner")

    def __init__(
        self,
        addr: int,
        dirty: bool = False,
        origin: str = "cpu",
        owner: int = -1,
    ) -> None:
        if addr != line_address(addr):
            raise ValueError(f"address {addr:#x} is not line-aligned")
        self.addr = addr
        self.dirty = dirty
        self.origin = origin
        self.owner = owner

    def __repr__(self) -> str:
        d = "D" if self.dirty else "C"
        return f"<Line {self.addr:#x} {d} {self.origin} core={self.owner}>"
