"""DRAM model.

The paper's platform uses DDR4-3200 (Table I).  The phenomena under study
are cache-resident (writeback rates, DMA bloating), so DRAM is modeled as a
fixed-latency, bandwidth-accounted sink: every read/write is counted and
timestamped so the harness can report DRAM read/write bandwidth exactly the
way Fig. 4 and Fig. 10 do.  An optional peak-bandwidth throttle adds queuing
delay when the instantaneous demand exceeds the channel capacity.
"""

from __future__ import annotations

from typing import Optional

from ..sim import units
from .line import LINE_SIZE
from .stats import StatsBundle


class DRAM:
    """Fixed-latency DRAM with bandwidth accounting.

    ``peak_gbps`` (if set) enforces a simple service-rate model: back-to-back
    line transfers cannot complete faster than the peak bandwidth allows, and
    the returned latency includes the queueing delay.
    """

    def __init__(
        self,
        stats: StatsBundle,
        latency: int = units.nanoseconds(70),
        peak_gbps: Optional[float] = None,
        name: str = "dram",
    ) -> None:
        self.stats = stats
        # Every read/write is one counter increment plus one timestamp
        # append; the bundle's underlying dicts are hit directly (they
        # survive reset(), see StatsBundle).
        self._counter_values = stats._counter_values
        self._event_streams = stats._event_streams
        self.latency = latency
        self.peak_gbps = peak_gbps
        self.name = name
        #: Optional memory-layer fault injector (``repro.faults``): adds
        #: transient latency spikes to every access while a spike window
        #: is active.  ``None`` keeps reads/writes on the fast path.
        self.faults = None
        self._next_free = 0
        if peak_gbps is not None:
            self._service_time = units.transfer_time(LINE_SIZE, peak_gbps)
        else:
            self._service_time = 0

    def _service(self, now: int) -> int:
        """Queueing delay under the peak-bandwidth throttle."""
        if self._service_time == 0:
            return 0
        start = max(now, self._next_free)
        self._next_free = start + self._service_time
        return (start + self._service_time) - now

    def read(self, addr: int, now: int) -> int:
        """Perform a line read; returns total latency in ticks."""
        self._counter_values["dram_reads"] += 1
        self._event_streams["dram_reads"].append(now)
        latency = self.latency + self._service(now)
        if self.faults is not None:
            latency += self.faults.dram_extra_ticks(now)
        return latency

    def write(self, addr: int, now: int) -> int:
        """Perform a line write; returns total latency in ticks."""
        self._counter_values["dram_writes"] += 1
        self._event_streams["dram_writes"].append(now)
        latency = self.latency + self._service(now)
        if self.faults is not None:
            latency += self.faults.dram_extra_ticks(now)
        return latency

    @property
    def reads(self) -> int:
        return self.stats.counters.get("dram_reads")

    @property
    def writes(self) -> int:
        return self.stats.counters.get("dram_writes")

    def bandwidth_gbps(self, stream: str, start: int, end: int) -> float:
        """Average DRAM bandwidth for ``dram_reads``/``dram_writes`` over a window."""
        count = self.stats.events.count_between(stream, start, end)
        return units.bytes_to_gbps(count * LINE_SIZE, end - start)


class BankedDRAM(DRAM):
    """DDR-style DRAM with channels, banks, and open-row tracking.

    A closer model of the DDR4-3200 parts in Table I, for experiments
    where access *pattern* matters (row-buffer locality of streaming DMA
    vs the antagonist's random walk):

    * lines interleave across ``channels`` (consecutive lines alternate
      channels, as with fine-grained channel interleaving);
    * each channel has ``banks`` banks with one open row of ``row_bytes``;
    * a row hit costs ``t_cas``; a row miss costs ``t_rp + t_rcd + t_cas``
      (precharge + activate + access);
    * each channel is a serial server at the channel's data rate, so
      bursts of line transfers queue per channel.

    Row-hit/miss counts are exposed through the shared stats bundle
    (``dram_row_hits`` / ``dram_row_misses``).
    """

    def __init__(
        self,
        stats: StatsBundle,
        channels: int = 3,
        banks: int = 16,
        row_bytes: int = 8192,
        t_cas: int = units.nanoseconds(15),
        t_rcd: int = units.nanoseconds(15),
        t_rp: int = units.nanoseconds(15),
        channel_gbps: float = 200.0,
        name: str = "dram",
    ) -> None:
        super().__init__(stats, latency=t_cas, peak_gbps=None, name=name)
        if channels <= 0 or banks <= 0 or row_bytes < LINE_SIZE:
            raise ValueError("invalid DRAM geometry")
        self.channels = channels
        self.banks = banks
        self.row_bytes = row_bytes
        self.t_cas = t_cas
        self.t_rcd = t_rcd
        self.t_rp = t_rp
        self._row_miss_penalty = t_rp + t_rcd
        self._channel_free = [0] * channels
        self._service_per_line = units.transfer_time(LINE_SIZE, channel_gbps / channels)
        #: open_row[channel][bank] -> row id (or -1).
        self._open_row = [[-1] * banks for _ in range(channels)]

    def _locate(self, addr: int) -> tuple:
        line = addr // LINE_SIZE
        channel = line % self.channels
        lines_per_row = self.row_bytes // LINE_SIZE
        row_global = line // lines_per_row
        bank = row_global % self.banks
        row = row_global // self.banks
        return channel, bank, row

    def _access(self, addr: int, now: int) -> int:
        channel, bank, row = self._locate(addr)
        latency = self.t_cas
        if self._open_row[channel][bank] == row:
            self._counter_values["dram_row_hits"] += 1
        else:
            self._counter_values["dram_row_misses"] += 1
            self._open_row[channel][bank] = row
            latency += self._row_miss_penalty
        # Channel bus contention.
        start = max(now, self._channel_free[channel])
        finish = start + self._service_per_line
        self._channel_free[channel] = finish
        return latency + (finish - now - self._service_per_line)

    def read(self, addr: int, now: int) -> int:
        self._counter_values["dram_reads"] += 1
        self._event_streams["dram_reads"].append(now)
        latency = self._access(addr, now)
        if self.faults is not None:
            latency += self.faults.dram_extra_ticks(now)
        return latency

    def write(self, addr: int, now: int) -> int:
        self._counter_values["dram_writes"] += 1
        self._event_streams["dram_writes"].append(now)
        latency = self._access(addr, now)
        if self.faults is not None:
            latency += self.faults.dram_extra_ticks(now)
        return latency

    def row_hit_rate(self) -> float:
        hits = self.stats.counters.get("dram_row_hits")
        misses = self.stats.counters.get("dram_row_misses")
        total = hits + misses
        return hits / total if total else 0.0
