"""Memory-hierarchy substrate: caches, DRAM, and the non-inclusive data paths."""

from .cache import CacheConfig, SetAssociativeCache
from .dram import DRAM, BankedDRAM
from .hierarchy import (
    AccessResult,
    HierarchyConfig,
    MemoryHierarchy,
    default_l1_config,
    default_llc_config,
    default_mlc_config,
)
from .line import LINE_SIZE, CacheLine, line_address, lines_spanning, num_lines
from .llc import NonInclusiveLLC, SnoopFilterDirectory
from .mlc import PrivateCache
from .replacement import LRUPolicy, RandomPolicy, TreePLRUPolicy, make_policy
from .stats import Counter, EventLog, HierarchyStatsSubscriber, StatsBundle
from .transaction import (
    CPU_LOAD,
    CPU_STORE,
    DMA_READ,
    DMA_WRITE,
    INVALIDATE,
    KINDS,
    PREFETCH_FILL,
    Hop,
    MemoryTransaction,
    cpu_access_txn,
)

__all__ = [
    "AccessResult",
    "BankedDRAM",
    "CPU_LOAD",
    "CPU_STORE",
    "CacheConfig",
    "CacheLine",
    "Counter",
    "DMA_READ",
    "DMA_WRITE",
    "DRAM",
    "EventLog",
    "HierarchyConfig",
    "HierarchyStatsSubscriber",
    "Hop",
    "INVALIDATE",
    "KINDS",
    "LINE_SIZE",
    "LRUPolicy",
    "MemoryHierarchy",
    "MemoryTransaction",
    "NonInclusiveLLC",
    "PREFETCH_FILL",
    "PrivateCache",
    "RandomPolicy",
    "SetAssociativeCache",
    "SnoopFilterDirectory",
    "StatsBundle",
    "TreePLRUPolicy",
    "cpu_access_txn",
    "default_l1_config",
    "default_llc_config",
    "default_mlc_config",
    "line_address",
    "lines_spanning",
    "make_policy",
    "num_lines",
]
