"""Memory-hierarchy substrate: caches, DRAM, and the non-inclusive data paths."""

from .cache import CacheConfig, SetAssociativeCache
from .dram import DRAM, BankedDRAM
from .hierarchy import (
    AccessResult,
    HierarchyConfig,
    MemoryHierarchy,
    default_l1_config,
    default_llc_config,
    default_mlc_config,
)
from .line import LINE_SIZE, CacheLine, line_address, lines_spanning, num_lines
from .llc import NonInclusiveLLC, SnoopFilterDirectory
from .mlc import PrivateCache
from .replacement import LRUPolicy, RandomPolicy, TreePLRUPolicy, make_policy
from .stats import Counter, EventLog, StatsBundle

__all__ = [
    "AccessResult",
    "BankedDRAM",
    "CacheConfig",
    "CacheLine",
    "Counter",
    "DRAM",
    "EventLog",
    "HierarchyConfig",
    "LINE_SIZE",
    "LRUPolicy",
    "MemoryHierarchy",
    "NonInclusiveLLC",
    "PrivateCache",
    "RandomPolicy",
    "SetAssociativeCache",
    "SnoopFilterDirectory",
    "StatsBundle",
    "TreePLRUPolicy",
    "default_l1_config",
    "default_llc_config",
    "default_mlc_config",
    "line_address",
    "lines_spanning",
    "make_policy",
    "num_lines",
]
