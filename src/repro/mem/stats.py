"""Counters and time-series statistics for the memory hierarchy.

Two collection primitives are provided:

* :class:`Counter` — a named bag of monotonically increasing integers,
  mirroring perf-style hardware counters (``mlc_writebacks``,
  ``llc_writebacks``, ``dram_writes`` ...).
* :class:`EventLog` — per-stream timestamp logs.  Every writeback /
  invalidation / DMA transaction appends its simulator timestamp; the
  paper's rate timelines (Figs. 5, 9, 11, 13 — sampled at 10 us) are
  produced afterwards by binning the log.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from ..obs.events import LlcWritebackEvent, MlcWritebackEvent
from ..sim import units


class Counter:
    """A named bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount} for {name!r}")
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self._values)

    def names(self) -> Iterable[str]:
        return self._values.keys()

    def reset(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counter({body})"


def count_between(times: List[int], start: int, end: int) -> int:
    """Events of a sorted timestamp list falling in ``[start, end)``."""
    lo = _bisect_left(times, start)
    hi = _bisect_left(times, end)
    return hi - lo


def rate_series(
    times: List[int],
    bin_ticks: int,
    start: int = 0,
    end: int = 0,
) -> List[Tuple[int, int]]:
    """Bin a timestamp list into ``(bin_start_tick, count)`` pairs.

    ``end`` defaults to the last timestamp (rounded up to a full bin).
    Empty bins are included so timelines have a uniform x axis.
    """
    if bin_ticks <= 0:
        raise ValueError(f"bin width must be positive, got {bin_ticks}")
    if end <= start:
        end = (times[-1] + 1) if times else start
    num_bins = max(0, -(-(end - start) // bin_ticks))
    bins = [0] * num_bins
    for t in times:
        if start <= t < start + num_bins * bin_ticks:
            bins[(t - start) // bin_ticks] += 1
    return [(start + i * bin_ticks, c) for i, c in enumerate(bins)]


def mtps_series(
    times: List[int],
    bin_ticks: int,
    start: int = 0,
    end: int = 0,
) -> List[Tuple[float, float]]:
    """Rate series in (time_us, million-transactions-per-second).

    This is the unit the paper plots (MTPS) with its 10 us sampling
    interval.
    """
    series = rate_series(times, bin_ticks, start, end)
    bin_seconds = bin_ticks / units.SECOND
    return [
        (units.to_microseconds(t), count / bin_seconds / 1e6)
        for t, count in series
    ]


class EventLog:
    """Timestamp logs, one list per named event stream.

    Timestamps are simulator ticks.  ``record`` is the hot path and is kept
    to a single ``append``.  The binning helpers are module-level functions
    (``count_between``/``rate_series``/``mtps_series``) so that detached
    timestamp lists — e.g. the ones an ``ExperimentSummary`` carries across
    process boundaries — bin identically to a live log.
    """

    def __init__(self) -> None:
        self._streams: Dict[str, List[int]] = defaultdict(list)

    def record(self, stream: str, time: int) -> None:
        self._streams[stream].append(time)

    def count(self, stream: str) -> int:
        return len(self._streams.get(stream, ()))

    def count_between(self, stream: str, start: int, end: int) -> int:
        """Events in ``[start, end)``; assumes timestamps are non-decreasing."""
        return count_between(self._streams.get(stream, []), start, end)

    def streams(self) -> Iterable[str]:
        return self._streams.keys()

    def timestamps(self, stream: str) -> List[int]:
        return list(self._streams.get(stream, ()))

    def rate_series(
        self,
        stream: str,
        bin_ticks: int,
        start: int = 0,
        end: int = 0,
    ) -> List[Tuple[int, int]]:
        """Bin a stream into ``(bin_start_tick, count)`` pairs."""
        return rate_series(self._streams.get(stream, []), bin_ticks, start, end)

    def mtps_series(
        self,
        stream: str,
        bin_ticks: int,
        start: int = 0,
        end: int = 0,
    ) -> List[Tuple[float, float]]:
        """Rate series in (time_us, MTPS) — the unit the paper plots."""
        return mtps_series(self._streams.get(stream, []), bin_ticks, start, end)

    def reset(self) -> None:
        self._streams.clear()


def _bisect_left(values: List[int], target: int) -> int:
    lo, hi = 0, len(values)
    while lo < hi:
        mid = (lo + hi) // 2
        if values[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo


class StatsBundle:
    """Counters plus event logs, shared by every memory-hierarchy component."""

    def __init__(self) -> None:
        self.counters = Counter()
        self.events = EventLog()
        # ``bump`` is the hottest statistics call in the simulator (one per
        # hierarchy state transition); it updates the underlying dicts
        # directly instead of going through the Counter/EventLog methods.
        # ``reset()`` clears those dicts in place, so the references stay
        # valid for the lifetime of the bundle.
        self._counter_values = self.counters._values
        self._event_streams = self.events._streams

    def bump(self, name: str, time: int, amount: int = 1, log: bool = True) -> None:
        """Increment a counter and (optionally) log each occurrence's time."""
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount} for {name!r}")
        self._counter_values[name] += amount
        if log:
            stream = self._event_streams[name]
            if amount == 1:
                stream.append(time)
            else:
                stream.extend([time] * amount)

    def reset(self) -> None:
        self.counters.reset()
        self.events.reset()


class HierarchyStatsSubscriber:
    """Routes hierarchy writeback events into a :class:`StatsBundle`.

    The hierarchy used to bump these counters inline before invoking its
    callback lists; with the typed event bus the stats bundle is an
    ordinary subscriber.  It must be installed *first* (the hierarchy
    does this in its constructor) so that counters are already current
    when downstream subscribers — the IDIO controller's control plane,
    the IAT baseline, trace recorders — observe the same event.
    """

    __slots__ = ("stats", "_mlc_wb_names", "_counter_values", "_event_streams")

    def __init__(self, stats: StatsBundle, num_cores: int) -> None:
        self.stats = stats
        # Per-core counter names pre-formatted once; these are on the
        # writeback hot path, so the handlers also hit the bundle's
        # underlying dicts directly (same inlined-bump pattern as the
        # hierarchy's own counters; the refs survive reset()).
        self._mlc_wb_names = [f"mlc_writebacks_c{core}" for core in range(num_cores)]
        self._counter_values = stats._counter_values
        self._event_streams = stats._event_streams

    def install(self, bus) -> "HierarchyStatsSubscriber":
        bus.subscribe(MlcWritebackEvent, self.on_mlc_writeback)
        bus.subscribe(LlcWritebackEvent, self.on_llc_writeback)
        return self

    def on_mlc_writeback(self, event: MlcWritebackEvent) -> None:
        now = event.now
        cv = self._counter_values
        cv["mlc_writebacks"] += 1
        self._event_streams["mlc_writebacks"].append(now)
        cv[self._mlc_wb_names[event.core]] += 1

    def on_llc_writeback(self, event: LlcWritebackEvent) -> None:
        self._counter_values["llc_writebacks"] += 1
        self._event_streams["llc_writebacks"].append(event.now)
