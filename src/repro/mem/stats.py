"""Counters and time-series statistics for the memory hierarchy.

Two collection primitives are provided:

* :class:`Counter` — a named bag of monotonically increasing integers,
  mirroring perf-style hardware counters (``mlc_writebacks``,
  ``llc_writebacks``, ``dram_writes`` ...).
* :class:`EventLog` — per-stream timestamp logs.  Every writeback /
  invalidation / DMA transaction appends its simulator timestamp; the
  paper's rate timelines (Figs. 5, 9, 11, 13 — sampled at 10 us) are
  produced afterwards by binning the log.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from ..sim import units


class Counter:
    """A named bag of monotonically increasing counters."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount} for {name!r}")
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of all counters."""
        return dict(self._values)

    def names(self) -> Iterable[str]:
        return self._values.keys()

    def reset(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counter({body})"


class EventLog:
    """Timestamp logs, one list per named event stream.

    Timestamps are simulator ticks.  ``record`` is the hot path and is kept
    to a single ``append``.
    """

    def __init__(self) -> None:
        self._streams: Dict[str, List[int]] = defaultdict(list)

    def record(self, stream: str, time: int) -> None:
        self._streams[stream].append(time)

    def count(self, stream: str) -> int:
        return len(self._streams.get(stream, ()))

    def count_between(self, stream: str, start: int, end: int) -> int:
        """Events in ``[start, end)``; assumes timestamps are non-decreasing."""
        times = self._streams.get(stream, [])
        lo = _bisect_left(times, start)
        hi = _bisect_left(times, end)
        return hi - lo

    def streams(self) -> Iterable[str]:
        return self._streams.keys()

    def timestamps(self, stream: str) -> List[int]:
        return list(self._streams.get(stream, ()))

    def rate_series(
        self,
        stream: str,
        bin_ticks: int,
        start: int = 0,
        end: int = 0,
    ) -> List[Tuple[int, int]]:
        """Bin a stream into ``(bin_start_tick, count)`` pairs.

        ``end`` defaults to the last timestamp (rounded up to a full bin).
        Empty bins are included so timelines have a uniform x axis.
        """
        if bin_ticks <= 0:
            raise ValueError(f"bin width must be positive, got {bin_ticks}")
        times = self._streams.get(stream, [])
        if end <= start:
            end = (times[-1] + 1) if times else start
        num_bins = max(0, -(-(end - start) // bin_ticks))
        bins = [0] * num_bins
        for t in times:
            if start <= t < start + num_bins * bin_ticks:
                bins[(t - start) // bin_ticks] += 1
        return [(start + i * bin_ticks, c) for i, c in enumerate(bins)]

    def mtps_series(
        self,
        stream: str,
        bin_ticks: int,
        start: int = 0,
        end: int = 0,
    ) -> List[Tuple[float, float]]:
        """Rate series in (time_us, million-transactions-per-second).

        This is the unit the paper plots (MTPS) with its 10 us sampling
        interval.
        """
        series = self.rate_series(stream, bin_ticks, start, end)
        bin_seconds = bin_ticks / units.SECOND
        return [
            (units.to_microseconds(t), count / bin_seconds / 1e6)
            for t, count in series
        ]

    def reset(self) -> None:
        self._streams.clear()


def _bisect_left(values: List[int], target: int) -> int:
    lo, hi = 0, len(values)
    while lo < hi:
        mid = (lo + hi) // 2
        if values[mid] < target:
            lo = mid + 1
        else:
            hi = mid
    return lo


class StatsBundle:
    """Counters plus event logs, shared by every memory-hierarchy component."""

    def __init__(self) -> None:
        self.counters = Counter()
        self.events = EventLog()

    def bump(self, name: str, time: int, amount: int = 1, log: bool = True) -> None:
        """Increment a counter and (optionally) log each occurrence's time."""
        self.counters.add(name, amount)
        if log:
            for _ in range(amount):
                self.events.record(name, time)

    def reset(self) -> None:
        self.counters.reset()
        self.events.reset()
