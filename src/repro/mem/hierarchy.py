"""The non-inclusive memory hierarchy: data paths of Fig. 1 and Fig. 2.

This module wires per-core private caches (optional L1D + MLC), the shared
non-inclusive LLC with DDIO ways, and DRAM into one object exposing a
single typed entry point:

* :meth:`MemoryHierarchy.access` — execute one
  :class:`~repro.mem.transaction.MemoryTransaction` (demand load/store,
  inbound DMA write, outbound DMA read, IDIO MLC prefetch fill, or the
  paper's invalidate-without-writeback maintenance operation, §IV-A/§V-D)
  and fill in its outcome: total latency, serving level, and — when hop
  recording is enabled — a per-component hop list.

All traffic flows through that one path: callers construct the
:class:`MemoryTransaction` themselves (simlint's SIM005 flags any
reintroduction of per-kind wrapper methods outside ``repro.mem``; the
deprecated ``cpu_access``/``pcie_write``-style wrappers were removed in
v0.5.0 — tests use the free-function helpers in ``tests/memtxn.py``).

Observability is a typed pub/sub bus (:class:`repro.obs.bus.EventBus`):
the hierarchy publishes :class:`~repro.obs.events.MlcWritebackEvent` /
:class:`~repro.obs.events.LlcWritebackEvent` (the signals the IDIO
controller's control plane and the IAT baseline sample — ``mlcWB`` in
Alg. 1) and, when anyone listens, every completed transaction.  The
:class:`~repro.mem.stats.StatsBundle` counts writebacks as a bus
subscriber like everyone else.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.bus import EventBus
from ..obs.events import LlcWritebackEvent, MlcWritebackEvent, TenantDmaEvent
from ..sim import units
from .cache import CacheConfig
from .dram import DRAM
from .line import _LINE_MASK, CacheLine, line_address
from .llc import NonInclusiveLLC
from .mlc import PrivateCache
from .stats import HierarchyStatsSubscriber, StatsBundle
from .transaction import (
    CPU_LOAD,
    CPU_STORE,
    DMA_READ,
    DMA_WRITE,
    INVALIDATE,
    PREFETCH_FILL,
    Hop,
    MemoryTransaction,
)


def default_l1_config(freq_ghz: float = 3.0) -> CacheConfig:
    """Table I L1D: 64 KB, 2-way, 2 cycles."""
    return CacheConfig("l1d", 64 * 1024, 2, units.cycles(2, freq_ghz), mshrs=6)


def default_mlc_config(freq_ghz: float = 3.0, size_bytes: int = 1024 * 1024) -> CacheConfig:
    """Table I L2 (MLC): 1 MB, 8-way, 12 cycles."""
    return CacheConfig("mlc", size_bytes, 8, units.cycles(12, freq_ghz), mshrs=16)


def default_llc_config(
    freq_ghz: float = 3.0, size_bytes: int = 3 * 1024 * 1024
) -> CacheConfig:
    """Table I L3: 1.5 MB/core, 12-way, 24 cycles.

    The evaluation (§III Obs. 4) scales the LLC to 3 MB total for the
    two-NF-core experiments; that is the default here.
    """
    return CacheConfig("llc", size_bytes, 12, units.cycles(24, freq_ghz), mshrs=32)


@dataclass
class HierarchyConfig:
    """Full hierarchy geometry.  Defaults reproduce Table I (scaled LLC)."""

    num_cores: int = 2
    freq_ghz: float = 3.0
    l1_enabled: bool = True
    l1: Optional[CacheConfig] = None
    #: Per-core MLC configs; entries may be ``None`` to take the default.
    #: (The LLCAntagonist core uses a 256 KB MLC per §VI.)
    mlc_sizes: Optional[List[int]] = None
    mlc: Optional[CacheConfig] = None
    llc: Optional[CacheConfig] = None
    ddio_ways: int = 2
    llc_inclusive: bool = False
    directory_capacity: Optional[int] = None
    #: NUCA slice count (0 = monolithic LLC) and per-ring-hop latency.
    llc_slices: int = 0
    llc_hop_latency: int = units.cycles(2)
    dram_latency: int = units.nanoseconds(70)
    dram_peak_gbps: Optional[float] = None
    #: "fixed" = constant-latency DRAM; "banked" = channels/banks with
    #: open-row tracking (see mem.dram.BankedDRAM).
    dram_model: str = "fixed"
    #: Replacement policy applied to every level (``None`` = keep each
    #: CacheConfig's own setting, i.e. ``lru``).  ``lru-vec`` selects the
    #: numpy-vectorized exact-LRU variant, falling back to ``lru`` when
    #: numpy is absent — results are identical either way.
    replacement: Optional[str] = None

    def _with_replacement(self, cfg: CacheConfig) -> CacheConfig:
        if self.replacement is None or cfg.replacement == self.replacement:
            return cfg
        return replace(cfg, replacement=self.replacement)

    def resolved_l1(self) -> CacheConfig:
        return self._with_replacement(self.l1 or default_l1_config(self.freq_ghz))

    def resolved_mlc(self, core: int) -> CacheConfig:
        if self.mlc is not None:
            return self._with_replacement(self.mlc)
        size = 1024 * 1024
        if self.mlc_sizes is not None and core < len(self.mlc_sizes):
            override = self.mlc_sizes[core]
            if override:
                size = override
        return self._with_replacement(default_mlc_config(self.freq_ghz, size))

    def resolved_llc(self) -> CacheConfig:
        return self._with_replacement(self.llc or default_llc_config(self.freq_ghz))


@dataclass
class AccessResult:
    """Outcome of one demand access: latency plus the serving level."""

    latency: int
    level: str  # "l1" | "mlc" | "llc" | "c2c" | "dram"


class MemoryHierarchy:
    """Cacheline-granular model of the non-inclusive hierarchy."""

    def __init__(
        self,
        config: HierarchyConfig,
        stats: Optional[StatsBundle] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.config = config
        self.stats = stats or StatsBundle()
        #: The observability bus.  The stats bundle subscribes first so
        #: counters are current when later subscribers (controllers,
        #: recorders) observe the same event.
        self.bus = bus or EventBus()
        self._stats_subscriber = HierarchyStatsSubscriber(
            self.stats, config.num_cores
        )
        self._stats_subscriber.install(self.bus)
        # Hot-path counter/event-log access: the handlers below perform
        # one unlogged increment (or one increment + one timestamp
        # append) per state transition, so they hit the bundle's
        # underlying dicts directly (they survive reset(); see
        # StatsBundle.bump, whose semantics each inline site preserves).
        self._counter_values = self.stats._counter_values
        self._event_streams = self.stats._event_streams
        # Freelist of dead CacheLine objects.  Lines churn at a few per
        # access (fills allocate, evictions/drops free); recycling at the
        # provably-dead sites flattens the allocation profile.
        self._line_pool: List[CacheLine] = []
        # Hot-path caches of the live subscriber lists: publishing is a
        # truthiness check plus a loop, and the event object is only
        # constructed when somebody listens.
        self._mlc_wb_subs = self.bus.live(MlcWritebackEvent)
        self._llc_wb_subs = self.bus.live(LlcWritebackEvent)
        self._txn_subs = self.bus.live(MemoryTransaction)
        self._tenant_dma_subs = self.bus.live(TenantDmaEvent)
        #: Per-tenant DMA attribution ranges ``(start, end, tenant)``.
        #: Empty (the default) keeps the DMA-write hot path tenant-free:
        #: one falsy check and no per-write work.
        self._tenant_ranges: List[Tuple[int, int, int]] = []
        self._tenant_dma_names: Dict[int, str] = {}
        #: When True, :meth:`access` fills each transaction's ``hops``
        #: list.  Off by default — flipped by an attached TraceRecorder.
        self.record_hops = False
        self._active_hops: Optional[List[Hop]] = None

        self.l1: List[Optional[PrivateCache]] = []
        self.mlc: List[PrivateCache] = []
        for core in range(config.num_cores):
            if config.l1_enabled:
                self.l1.append(PrivateCache(config.resolved_l1(), core, self.stats))
            else:
                self.l1.append(None)
            self.mlc.append(PrivateCache(config.resolved_mlc(core), core, self.stats))
        self.llc = NonInclusiveLLC(
            config.resolved_llc(),
            self.stats,
            ddio_ways=config.ddio_ways,
            directory_capacity=config.directory_capacity,
            inclusive=config.llc_inclusive,
            slices=config.llc_slices,
            hop_latency=config.llc_hop_latency,
        )
        if config.dram_model == "banked":
            from .dram import BankedDRAM

            self.dram: DRAM = BankedDRAM(self.stats)
        elif config.dram_model == "fixed":
            self.dram = DRAM(
                self.stats,
                latency=config.dram_latency,
                peak_gbps=config.dram_peak_gbps,
            )
        else:
            raise ValueError(f"unknown dram_model {config.dram_model!r}")
        # Direct references into the cache containers for the demand and
        # DMA paths: each access otherwise pays two or three delegation
        # hops (PrivateCache -> SetAssociativeCache, NonInclusiveLLC ->
        # data array, SnoopFilterDirectory -> entry dict).  Nothing in
        # the package replaces these objects after construction, so one
        # attribute load per access replaces a method call per hop.
        self._l1_data = [c.data if c is not None else None for c in self.l1]
        self._mlc_data = [c.data for c in self.mlc]
        self._llc_data = self.llc.data
        self._l1_lat = [
            c.config.latency if c is not None else 0 for c in self.l1
        ]
        self._mlc_lat = [c.config.latency for c in self.mlc]
        self._llc_lat = self.llc.config.latency
        # Monolithic LLC: access latency is a constant; only the NUCA
        # model (slices > 0) needs the per-(core, addr) hop computation.
        self._flat_llc = self.llc.slices <= 0
        self._dir_entries = self.llc.directory._entries
        # Per-core counter names, pre-formatted once (these are bumped on
        # every invalidation; f-strings there are measurable).
        self._mlc_inval_names = [
            f"mlc_invalidations_c{core}" for core in range(config.num_cores)
        ]
        self._handlers = {
            CPU_LOAD: self._run_cpu,
            CPU_STORE: self._run_cpu,
            DMA_WRITE: self._run_dma_write,
            DMA_READ: self._run_dma_read,
            PREFETCH_FILL: self._run_prefetch_fill,
            INVALIDATE: self._run_invalidate,
        }

    # ------------------------------------------------------------------
    # the unified entry point
    # ------------------------------------------------------------------

    def access(self, txn: MemoryTransaction) -> MemoryTransaction:
        """Execute one transaction; fills ``latency``/``level``/``hops``.

        This is the single entry point every byte of traffic goes
        through — the legacy per-kind methods below are constructors
        delegating here.  Completed transactions are published on the
        bus when a subscriber (e.g. a TraceRecorder) is attached.
        """
        try:
            handler = self._handlers[txn.kind]
        except KeyError:
            raise ValueError(
                f"unknown transaction kind {txn.kind!r}; "
                f"expected one of {sorted(self._handlers)}"
            ) from None
        if self.record_hops:
            self._active_hops = txn.hops
            try:
                handler(txn)
            finally:
                self._active_hops = None
        else:
            handler(txn)
        subs = self._txn_subs
        if subs:
            for fn in subs:
                fn(txn)
        return txn

    # Hop recording is inlined at each site as
    #   ``if hops is not None: hops.append(Hop(...))``
    # with ``hops = self._active_hops`` loaded once per handler — a local
    # None-check instead of a method call keeps the tracing-off hot path
    # within the bench gate.

    # ------------------------------------------------------------------
    # bus publications
    # ------------------------------------------------------------------

    def _notify_mlc_wb(self, core: int, now: int) -> None:
        subs = self._mlc_wb_subs
        if subs:
            event = MlcWritebackEvent(core, now)
            for fn in subs:
                fn(event)

    def _notify_llc_wb(self, addr: int, now: int) -> None:
        subs = self._llc_wb_subs
        if subs:
            event = LlcWritebackEvent(addr, now)
            for fn in subs:
                fn(event)

    # ------------------------------------------------------------------
    # tenant attribution
    # ------------------------------------------------------------------

    def set_tenant_ranges(self, ranges: Sequence[Tuple[int, int, int]]) -> None:
        """Register per-tenant DMA attribution ranges.

        ``ranges`` is ``(start, end, tenant)`` triples (half-open byte
        ranges) covering each tenant's descriptor/buffer regions.  Every
        inbound DMA write landing in a range is attributed to its tenant:
        the ``tenant_dma_writes_t<id>`` counter is bumped, a
        :class:`~repro.obs.events.TenantDmaEvent` is published when
        anyone subscribes, and the write-allocate is confined to the
        tenant's I/O ways when a partition is installed.  Ranges must be
        non-empty, disjoint, and tenant ids non-negative.
        """
        cleaned: List[Tuple[int, int, int]] = []
        for start, end, tenant in ranges:
            if start < 0 or end <= start:
                raise ValueError(f"bad tenant range [{start:#x}, {end:#x})")
            if tenant < 0:
                raise ValueError(f"tenant must be non-negative, got {tenant}")
            cleaned.append((start, end, tenant))
        cleaned.sort()
        for (s0, e0, t0), (s1, e1, t1) in zip(cleaned, cleaned[1:]):
            if s1 < e0:
                raise ValueError(
                    f"tenant ranges overlap: [{s0:#x}, {e0:#x}) (tenant {t0}) "
                    f"and [{s1:#x}, {e1:#x}) (tenant {t1})"
                )
        self._tenant_ranges = cleaned
        self._tenant_dma_names = {
            t: f"tenant_dma_writes_t{t}" for _, _, t in cleaned
        }

    def tenant_of_addr(self, addr: int) -> int:
        """The tenant owning ``addr`` (-1 when unattributed)."""
        for start, end, tenant in self._tenant_ranges:
            if start <= addr < end:
                return tenant
        return -1

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------

    def _make_line(self, addr: int, dirty: bool, origin: str, owner: int) -> CacheLine:
        """A CacheLine from the freelist (or fresh when the pool is dry)."""
        pool = self._line_pool
        if pool:
            line = pool.pop()
            line.addr = addr
            line.dirty = dirty
            line.origin = origin
            line.owner = owner
            return line
        return CacheLine(addr, dirty, origin, owner)

    def _retire_line(self, line: CacheLine) -> None:
        """Recycle a line no cache, directory, or caller references."""
        pool = self._line_pool
        if len(pool) < 256:
            pool.append(line)

    def _drop_private(self, core: int, addr: int) -> Optional[CacheLine]:
        """Remove ``addr`` from core's L1+MLC; returns the line (dirtiest view)."""
        merged: Optional[CacheLine] = None
        l1_data = self._l1_data[core]
        if l1_data is not None:
            l1_line = l1_data.remove(addr)
            if l1_line is not None:
                merged = l1_line
        mlc_line = self._mlc_data[core].remove(addr)
        if mlc_line is not None:
            if merged is not None:
                mlc_line.dirty = mlc_line.dirty or merged.dirty
                self._retire_line(merged)  # superseded by the MLC copy
            merged = mlc_line
        return merged

    def _llc_victim_to_dram(self, victim: CacheLine, now: int) -> None:
        """Handle a line evicted from the LLC data array."""
        if self.llc.inclusive:
            # Inclusive LLC: eviction back-invalidates private copies.
            for core in sorted(self.llc.directory.owners(victim.addr)):
                private = self._drop_private(core, victim.addr)
                self._counter_values["back_invalidations"] += 1
                if private is not None:
                    if private.dirty:
                        victim.dirty = True
                    self._retire_line(private)
            self.llc.directory.remove(victim.addr)
        if victim.dirty:
            hops = self._active_hops
            if hops is not None:
                hops.append(Hop("llc", "evict", 0))
                hops.append(Hop("dram", "writeback", 0))
            self.dram.write(victim.addr, now)
            self._notify_llc_wb(victim.addr, now)
        else:
            hops = self._active_hops
            if hops is not None:
                hops.append(Hop("llc", "drop", 0))
            self._counter_values["llc_clean_drops"] += 1
        self._retire_line(victim)

    def _fill_mlc(self, core: int, line: CacheLine, now: int) -> None:
        """Fill ``line`` into core's MLC, handling the non-inclusive victim path."""
        hops = self._active_hops
        if hops is not None:
            hops.append(Hop("mlc", "fill", 0))
        # Inlined PrivateCache.fill: set the owner, insert, count the
        # eviction (the wrapper adds nothing else on this path).
        line.owner = core
        mlc = self.mlc[core]
        victim = mlc.data.insert(line)
        if victim is None:
            return
        self._counter_values[mlc._evict_counter] += 1
        # Keep L1 included in MLC: back-invalidate the victim's L1 copy.
        l1_data = self._l1_data[core]
        if l1_data is not None:
            l1_copy = l1_data.remove(victim.addr)
            if l1_copy is not None:
                if l1_copy.dirty:
                    victim.dirty = True
                self._retire_line(l1_copy)
        self.llc.directory.remove(victim.addr, core)
        if self.llc.inclusive:
            # The LLC already holds a copy; just propagate dirtiness.
            resident = self.llc.peek(victim.addr)
            if resident is not None:
                if victim.dirty:
                    resident.dirty = True
                    self._notify_mlc_wb(core, now)
                else:
                    self._counter_values["mlc_clean_drops"] += 1
                self._retire_line(victim)
                return
            # Fall through (copy may have been evicted already).
        # Non-inclusive victim-cache fill: the LLC is populated by MLC
        # evictions, clean or dirty, and the fill may land in ANY way,
        # including non-DDIO ways -> DMA bloating (§III Obs. 3).  This
        # MLC->LLC transaction is what the paper's "MLC writeback" counters
        # measure.
        if hops is not None:
            hops.append(Hop("mlc", "evict", 0))
            hops.append(Hop("llc", "writeback", 0))
        self._notify_mlc_wb(core, now)
        if victim.dirty:
            self._counter_values["mlc_writebacks_dirty"] += 1
        else:
            self._counter_values["mlc_writebacks_clean"] += 1
        llc_victim = self.llc.fill_cpu(victim, now, core=core)
        if llc_victim is not None:
            self._llc_victim_to_dram(llc_victim, now)

    def _fill_l1(self, core: int, addr: int, dirty: bool, now: int) -> None:
        l1_data = self._l1_data[core]
        if l1_data is None:
            return
        # Inlined PrivateCache.fill (owner is set by _make_line).
        victim = l1_data.insert(self._make_line(addr, dirty, "cpu", core))
        if victim is None:
            return
        self._counter_values[self.l1[core]._evict_counter] += 1
        if victim.dirty:
            # Dirty L1 victim merges into the MLC copy (L1 ⊆ MLC by design).
            mlc_line = self._mlc_data[core].peek(victim.addr)
            if mlc_line is not None:
                mlc_line.dirty = True
                self._retire_line(victim)
            else:
                # MLC copy already gone; push straight to LLC.
                hops = self._active_hops
                if hops is not None:
                    hops.append(Hop("llc", "writeback", 0))
                self._notify_mlc_wb(core, now)
                llc_victim = self.llc.fill_cpu(victim, now, core=core)
                if llc_victim is not None:
                    self._llc_victim_to_dram(llc_victim, now)
        else:
            # Clean L1 victim: silently dropped (MLC still holds it).
            self._retire_line(victim)

    def _directory_back_invalidate(self, entry, now: int) -> None:
        """A directory eviction forces the MLC copies out (non-inclusive)."""
        for core in sorted(entry.owners):
            line = self._drop_private(core, entry.addr)
            self._counter_values["directory_back_invalidations"] += 1
            if line is None:
                continue
            if line.dirty:
                hops = self._active_hops
                if hops is not None:
                    hops.append(Hop("llc", "writeback", 0))
                self._notify_mlc_wb(core, now)
                llc_victim = self.llc.fill_cpu(line, now, core=core)
                if llc_victim is not None:
                    self._llc_victim_to_dram(llc_victim, now)
            else:
                self._retire_line(line)

    # ------------------------------------------------------------------
    # demand path (Fig. 2)
    # ------------------------------------------------------------------

    def _run_cpu(self, txn: MemoryTransaction) -> None:
        """A demand load/store from ``txn.core``."""
        core = txn.core
        addr = txn.addr
        now = txn.now
        is_write = txn.kind == CPU_STORE
        hops = self._active_hops
        cv = self._counter_values
        latency = 0
        l1_data = self._l1_data[core]
        if l1_data is not None:
            latency += self._l1_lat[core]
            hit = l1_data.lookup(addr)
            if hit is not None:
                if is_write:
                    hit.dirty = True
                    mlc_copy = self._mlc_data[core].peek(addr)
                    if mlc_copy is not None:
                        mlc_copy.dirty = True
                cv["l1_hits"] += 1
                if hops is not None:
                    hops.append(Hop("l1", "hit", latency))
                txn.latency = latency
                txn.level = "l1"
                return
            if hops is not None:
                hops.append(Hop("l1", "miss", latency))

        mlc_lat = self._mlc_lat[core]
        latency += mlc_lat
        hit = self._mlc_data[core].lookup(addr)
        if hit is not None:
            if is_write:
                hit.dirty = True
            if hops is not None:
                hops.append(Hop("mlc", "hit", mlc_lat))
            self._fill_l1(core, addr, False, now)
            cv["mlc_hits"] += 1
            txn.latency = latency
            txn.level = "mlc"
            return
        if hops is not None:
            hops.append(Hop("mlc", "miss", mlc_lat))

        # Another core's private caches may own the line: the directory
        # filters the snoop and the data migrates cache-to-cache (our
        # workloads never share lines, but the model must stay coherent
        # for ones that do).  The entry is read in place (no set copy);
        # the sorted() below materializes the iteration order before the
        # removes mutate the owner set.
        dir_entry = self._dir_entries.get(addr & _LINE_MASK)
        if dir_entry is not None:
            remote_owners = [o for o in sorted(dir_entry.owners) if o != core]
        else:
            remote_owners = ()
        if remote_owners:
            migrated: Optional[CacheLine] = None
            for owner in remote_owners:
                line = self._drop_private(owner, addr)
                self.llc.directory.remove(addr, owner)
                if line is not None and (migrated is None or line.dirty):
                    migrated = line
            if migrated is not None:
                cv["c2c_transfers"] += 1
                latency += self._llc_lat  # snoop round trip
                if hops is not None:
                    hops.append(Hop("directory", "c2c", self._llc_lat))
                migrated.owner = core
                if is_write:
                    migrated.dirty = True
                self._fill_mlc(core, migrated, now)
                for evicted_entry in self.llc.directory.add(addr, core):
                    self._directory_back_invalidate(evicted_entry, now)
                self._fill_l1(core, addr, False, now)
                txn.latency = latency
                txn.level = "c2c"
                return

        llc_latency = (
            self._llc_lat if self._flat_llc else self.llc.access_latency(core, addr)
        )
        latency += llc_latency
        llc_line = self._llc_data.lookup(addr)
        if llc_line is not None:
            level = "llc"
            cv["llc_hits"] += 1
            if hops is not None:
                hops.append(Hop("llc", "hit", llc_latency))
            if self.llc.inclusive:
                new_line = self._make_line(addr, False, llc_line.origin, core)
            else:
                # Non-inclusive: data moves up, tag moves to the directory
                # (steps A-2.1/B-2.1 of Fig. 2).  The removed LLC line
                # object itself migrates — no copy is allocated.
                self._llc_data.remove(addr)
                new_line = llc_line
                new_line.owner = core
        else:
            level = "dram"
            dram_latency = self.dram.read(addr, now)
            latency += dram_latency
            if hops is not None:
                hops.append(Hop("llc", "miss", llc_latency))
                hops.append(Hop("dram", "read", dram_latency))
            cv["llc_misses"] += 1
            new_line = self._make_line(addr, False, "cpu", core)
            if self.llc.inclusive:
                llc_victim = self.llc.fill_cpu(
                    self._make_line(addr, False, "cpu", core), now, core=core
                )
                if llc_victim is not None:
                    self._llc_victim_to_dram(llc_victim, now)

        if is_write:
            new_line.dirty = True
        self._fill_mlc(core, new_line, now)
        for evicted_entry in self.llc.directory.add(addr, core):
            self._directory_back_invalidate(evicted_entry, now)
        self._fill_l1(core, addr, False, now)
        txn.latency = latency
        txn.level = level

    # ------------------------------------------------------------------
    # PCIe ingress (Fig. 1, DDIO write path)
    # ------------------------------------------------------------------

    def _run_dma_write(self, txn: MemoryTransaction) -> None:
        """A full-cacheline inbound DMA write.

        ``txn.placement`` is ``"llc"`` for the normal DDIO path or
        ``"dram"`` for IDIO's selective direct DRAM access (M3).
        """
        addr = txn.addr
        now = txn.now
        placement = txn.placement
        hops = self._active_hops
        cv = self._counter_values
        cv["pcie_writes"] += 1
        self._event_streams["pcie_writes"].append(now)
        latency = self._llc_lat

        # Tenant attribution: one falsy check when tenancy is off; with
        # tenants the range list is tiny (one entry per tenant region).
        tenant = -1
        if self._tenant_ranges:
            for start, end, t in self._tenant_ranges:
                if start <= addr < end:
                    tenant = t
                    cv[self._tenant_dma_names[t]] += 1
                    subs = self._tenant_dma_subs
                    if subs:
                        event = TenantDmaEvent(t, now)
                        for fn in subs:
                            fn(event)
                    break

        # Invalidate any private (MLC/L1) copies — steps P1-1/P2-1 of Fig. 1.
        dir_entry = self._dir_entries.get(addr & _LINE_MASK)
        if dir_entry is not None:
            inval_stream = self._event_streams["mlc_invalidations"]
            for core in sorted(dir_entry.owners):
                dropped = self._drop_private(core, addr)
                if dropped is not None:
                    self._retire_line(dropped)
                if hops is not None:
                    hops.append(Hop("mlc", "inval", 0))
                cv["mlc_invalidations"] += 1
                inval_stream.append(now)
                cv[self._mlc_inval_names[core]] += 1
            self.llc.directory.remove(addr)

        if placement == "dram":
            # Selective direct DRAM access: drop any (stale) LLC copy and
            # write the line straight to memory.
            stale = self._llc_data.remove(addr)
            if stale is not None:
                if hops is not None:
                    hops.append(Hop("llc", "drop", 0))
                cv["llc_drop_on_direct_dram"] += 1
                self._retire_line(stale)
            latency = self.dram.write(addr, now)
            if hops is not None:
                hops.append(Hop("dram", "write", latency))
            cv["direct_dram_writes"] += 1
            self._event_streams["direct_dram_writes"].append(now)
            txn.latency = latency
            txn.level = "dram"
            return
        if placement != "llc":
            raise ValueError(f"unknown placement {placement!r}")

        resident = self._llc_data.lookup(addr)
        if resident is not None:
            # In-place update (P2-2 / P3-1): the line stays in whatever way
            # it occupies and becomes dirty I/O data.
            resident.dirty = True
            resident.origin = "io"
            if hops is not None:
                hops.append(Hop("llc", "update", latency))
            cv["ddio_updates"] += 1
        else:
            # Write-allocate into the DDIO ways (P1-2 / P5-1).
            if hops is not None:
                hops.append(Hop("llc", "fill", latency))
            victim = self.llc.fill_io(
                self._make_line(addr, True, "io", -1), now, tenant
            )
            cv["ddio_allocations"] += 1
            if victim is not None:
                self._llc_victim_to_dram(victim, now)
        txn.latency = latency
        txn.level = "llc"

    # ------------------------------------------------------------------
    # PCIe egress (Fig. 1, read path)
    # ------------------------------------------------------------------

    def _run_dma_read(self, txn: MemoryTransaction) -> None:
        """An outbound DMA read (NIC TX)."""
        addr = txn.addr
        now = txn.now
        hops = self._active_hops
        self._counter_values["pcie_reads"] += 1
        latency = self._llc_lat

        dir_entry = self._dir_entries.get(addr & _LINE_MASK)
        if dir_entry is not None:
            for core in sorted(dir_entry.owners):
                # MLC copies are invalidated and written back to LLC (Fig. 3
                # right): the egress read must observe the latest data.
                line = self._drop_private(core, addr)
                if line is None:
                    continue
                if hops is not None:
                    hops.append(Hop("mlc", "evict", 0))
                if line.dirty:
                    if hops is not None:
                        hops.append(Hop("llc", "writeback", 0))
                    self._notify_mlc_wb(core, now)
                line.owner = -1
                llc_victim = self.llc.fill_cpu(line, now, core=core)
                if llc_victim is not None:
                    self._llc_victim_to_dram(llc_victim, now)
            self.llc.directory.remove(addr)

        # One recency-touching lookup doubles as the presence check.
        if self._llc_data.lookup(addr) is not None:
            if hops is not None:
                hops.append(Hop("llc", "hit", latency))
            txn.latency = latency
            txn.level = "llc"
            return
        dram_latency = self.dram.read(addr, now)
        if hops is not None:
            hops.append(Hop("llc", "miss", latency))
            hops.append(Hop("dram", "read", dram_latency))
        latency += dram_latency
        txn.latency = latency
        txn.level = "dram"

    # ------------------------------------------------------------------
    # IDIO mechanisms
    # ------------------------------------------------------------------

    def _run_prefetch_fill(self, txn: MemoryTransaction) -> None:
        """Bring ``txn.addr`` into ``txn.core``'s MLC without stalling it.

        Used by the queued MLC prefetcher (§V-C).  Sets ``txn.level`` to
        the level the line came from ("llc"/"dram"), or "dropped" when
        the line is already private (no fill happened).
        """
        core = txn.core
        addr = txn.addr
        now = txn.now
        laddr = addr & _LINE_MASK
        if laddr in self._mlc_data[core]._where:
            txn.level = "dropped"
            return
        l1_data = self._l1_data[core]
        if l1_data is not None and laddr in l1_data._where:
            txn.level = "dropped"
            return
        hops = self._active_hops
        llc_line = self._llc_data.lookup(addr)
        if llc_line is not None:
            txn.level = "llc"
            if hops is not None:
                hops.append(Hop("llc", "hit", self._llc_lat))
            if self.llc.inclusive:
                new_line = self._make_line(addr, False, llc_line.origin, core)
            else:
                # The removed LLC line migrates up as-is (no copy).
                self._llc_data.remove(addr)
                new_line = llc_line
                new_line.owner = core
        else:
            txn.level = "dram"
            dram_latency = self.dram.read(addr, now)
            if hops is not None:
                hops.append(Hop("dram", "read", dram_latency))
            new_line = self._make_line(addr, False, "cpu", core)
        self._fill_mlc(core, new_line, now)
        for evicted_entry in self.llc.directory.add(addr, core):
            self._directory_back_invalidate(evicted_entry, now)
        self._counter_values["mlc_prefetch_fills"] += 1
        self._event_streams["mlc_prefetch_fills"].append(now)

    def _run_invalidate(self, txn: MemoryTransaction) -> None:
        """The new invalidate-without-writeback maintenance operation.

        ``txn.scope="private"`` drops only the core's L1/MLC copy (the
        literal instruction semantics of §V-D); ``"all"`` additionally
        drops any LLC copy, which is the behavior the L2Fwd evaluation
        relies on ("invalidating consumed LLC-resident buffers", §VII).
        Neither scope ever writes data back — that is the entire point.
        """
        core = txn.core
        addr = txn.addr
        now = txn.now
        scope = txn.scope
        hops = self._active_hops
        dropped = self._drop_private(core, addr)
        if dropped is not None:
            if hops is not None:
                hops.append(Hop("mlc", "drop", 0))
            self.llc.directory.remove(addr, core)
            self._counter_values["self_invalidations"] += 1
            self._event_streams["self_invalidations"].append(now)
            self._retire_line(dropped)
        if scope == "all":
            removed = self._llc_data.remove(addr)
            if removed is not None:
                if hops is not None:
                    hops.append(Hop("llc", "drop", 0))
                self._counter_values["self_invalidations_llc"] += 1
                self._event_streams["self_invalidations_llc"].append(now)
                self._retire_line(removed)
        elif scope != "private":
            raise ValueError(f"unknown invalidate scope {scope!r}")
        txn.level = "invalidated" if dropped is not None else "absent"

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def where(self, addr: int) -> Dict[str, object]:
        """Locate a line for tests/diagnostics (levels holding a copy)."""
        addr = line_address(addr)
        holders: Dict[str, object] = {
            "mlc": [c for c in range(self.config.num_cores) if addr in self.mlc[c]],
            "l1": [
                c
                for c in range(self.config.num_cores)
                if self.l1[c] is not None and addr in self.l1[c]  # type: ignore[operator]
            ],
            "llc": addr in self.llc,
            "directory": addr in self.llc.directory,
        }
        return holders
