"""Typed events published on the observability bus.

Transaction completions are published as the
:class:`~repro.mem.transaction.MemoryTransaction` object itself (its
class is the topic); the events here cover everything else the memory
path and the software stack announce.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class MlcWritebackEvent:
    """A dirty-or-clean MLC victim moved to the LLC (``mlcWB`` in Alg. 1).

    This is the signal the IDIO controller's control plane samples every
    interval, and the per-core pressure statistic of Figs. 5/9/11.
    """

    core: int
    now: int


@dataclass(frozen=True, slots=True)
class LlcWritebackEvent:
    """A dirty LLC victim written back to DRAM (the DMA-leak signal)."""

    addr: int
    now: int


@dataclass(frozen=True, slots=True)
class PmdBatchEvent:
    """A poll-mode driver picked up a batch of RX descriptors."""

    core: int
    size: int
    now: int


@dataclass(frozen=True, slots=True)
class ServerLaneSeries:
    """One server's timeline for one event stream, published rack-level.

    The rack tier runs its servers in worker processes, so per-hop
    tracing cannot ride home in a summary; instead each finished server
    contributes its binned ``(time_us, MTPS)`` series per summary stream.
    A :class:`~repro.obs.trace.RackTraceRecorder` subscribed to the
    rack's bus renders these as per-server counter lanes in the Chrome
    trace (one process per server).
    """

    server: int
    stream: str
    #: ``((time_us, mtps), ...)`` — binned throughput samples.
    points: tuple


@dataclass(frozen=True, slots=True)
class TenantDmaEvent:
    """An inbound DMA write attributed to a tenant's buffer range.

    Published by the memory hierarchy (only when someone subscribes —
    the hot path stays allocation-free otherwise) so a partitioning
    controller such as :class:`~repro.core.ioca.IOCAController` can
    sample per-tenant I/O rates without touching the data plane.
    """

    tenant: int
    now: int


@dataclass(frozen=True, slots=True)
class TenantLaneSeries:
    """One tenant's timeline for one event stream, published sweep-level.

    The tenant-tier analogue of :class:`ServerLaneSeries`: each finished
    tenants-sweep cell contributes binned ``(time_us, value)`` samples
    per tenant so recorders can render per-tenant lanes.
    """

    tenant: int
    stream: str
    #: ``((time_us, value), ...)`` — binned samples.
    points: tuple


@dataclass(frozen=True, slots=True)
class ServerCompletedEvent:
    """A rack server's experiment finished (one per server per sweep)."""

    server: int
    flows: int
    completed: int
    drops: int
    fingerprint: str
    #: Whether the lane was served from the result cache (no simulation).
    cached: bool = False


@dataclass(frozen=True, slots=True)
class CacheHitEvent:
    """A sweep experiment was served from the result cache.

    Published by :class:`~repro.cache.ResultCache` on its bus whenever a
    lookup returns a stored summary — the experiment skipped simulation
    entirely.  ``digest`` is the canonical config digest the entry is
    keyed by (see ``docs/caching.md``).
    """

    digest: str
    name: str


@dataclass(frozen=True, slots=True)
class CacheMissEvent:
    """A sweep experiment was not served from the result cache.

    ``reason`` says why: ``"absent"`` (no entry), ``"corrupt"`` (entry
    failed validation and was evicted), or ``"uncacheable"`` (the
    experiment is excluded from caching, e.g. it carries ``harness.*``
    fault kinds whose crashes must never be memoized).
    """

    digest: str
    name: str
    reason: str


@dataclass(frozen=True, slots=True)
class CacheStoreEvent:
    """A freshly computed summary was persisted to the result cache."""

    digest: str
    name: str
    num_bytes: int
