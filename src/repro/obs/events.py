"""Typed events published on the observability bus.

Transaction completions are published as the
:class:`~repro.mem.transaction.MemoryTransaction` object itself (its
class is the topic); the events here cover everything else the memory
path and the software stack announce.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class MlcWritebackEvent:
    """A dirty-or-clean MLC victim moved to the LLC (``mlcWB`` in Alg. 1).

    This is the signal the IDIO controller's control plane samples every
    interval, and the per-core pressure statistic of Figs. 5/9/11.
    """

    core: int
    now: int


@dataclass(frozen=True, slots=True)
class LlcWritebackEvent:
    """A dirty LLC victim written back to DRAM (the DMA-leak signal)."""

    addr: int
    now: int


@dataclass(frozen=True, slots=True)
class PmdBatchEvent:
    """A poll-mode driver picked up a batch of RX descriptors."""

    core: int
    size: int
    now: int


@dataclass(frozen=True, slots=True)
class ServerLaneSeries:
    """One server's timeline for one event stream, published rack-level.

    The rack tier runs its servers in worker processes, so per-hop
    tracing cannot ride home in a summary; instead each finished server
    contributes its binned ``(time_us, MTPS)`` series per summary stream.
    A :class:`~repro.obs.trace.RackTraceRecorder` subscribed to the
    rack's bus renders these as per-server counter lanes in the Chrome
    trace (one process per server).
    """

    server: int
    stream: str
    #: ``((time_us, mtps), ...)`` — binned throughput samples.
    points: tuple


@dataclass(frozen=True, slots=True)
class ServerCompletedEvent:
    """A rack server's experiment finished (one per server per sweep)."""

    server: int
    flows: int
    completed: int
    drops: int
    fingerprint: str
