"""Per-hop transaction tracing with Chrome-trace (Perfetto) export.

A :class:`TraceRecorder` subscribes to the hierarchy's event bus and
records every completed :class:`~repro.mem.transaction.MemoryTransaction`
together with its hop records, plus the writeback and PMD-batch events.
The recording serves two consumers:

* ``to_chrome_trace()`` / ``export()`` produce a Chrome-trace JSON
  (``chrome://tracing`` / Perfetto ``ui.perfetto.dev`` both load it)
  where DDIO-way fills, MLC steering fills, direct-DRAM writes and
  invalidate drops are distinguishable by category;
* ``latency_breakdown_ns()`` produces the per-component latency split
  (L1/MLC/LLC/DRAM share of the mean access) that the harness surfaces —
  a real component breakdown, not just queueing-vs-service.

Tracing is strictly opt-in: attaching a recorder flips the hierarchy's
``record_hops`` switch, which is what makes the hop lists non-empty.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..faults.events import FaultEvent
from ..mem.transaction import (
    DMA_WRITE,
    INVALIDATE,
    PREFETCH_FILL,
    Hop,
    MemoryTransaction,
)
from ..sim import units
from .events import (
    LlcWritebackEvent,
    MlcWritebackEvent,
    PmdBatchEvent,
    ServerCompletedEvent,
    ServerLaneSeries,
    TenantLaneSeries,
)

#: Stable Chrome-trace thread ids, one lane per component.
_COMPONENT_TIDS = {"l1": 1, "mlc": 2, "llc": 3, "dram": 4, "directory": 5}
_EVENT_TID = 6  # writebacks / PMD batches
_FAULT_TID = 7  # injected faults (repro.faults)


def categorize(txn: MemoryTransaction, hop: Hop) -> str:
    """The trace category of one hop — the four §IV/§V mechanisms get
    their own categories so they are distinguishable in the viewer."""
    if txn.kind == DMA_WRITE:
        if hop.component == "llc" and hop.action == "fill":
            return "ddio-fill"
        if hop.component == "llc" and hop.action == "update":
            return "ddio-update"
        if hop.component == "dram" and hop.action == "write":
            return "direct-dram-write"
    elif txn.kind == PREFETCH_FILL:
        if hop.component == "mlc" and hop.action == "fill":
            return "mlc-steer-fill"
    elif txn.kind == INVALIDATE:
        if hop.action == "drop":
            return "invalidate-drop"
    return txn.kind


class TraceRecorder:
    """Records transactions from a hierarchy's bus; exports Chrome traces.

    ``max_events`` bounds memory for long runs; once reached, further
    trace events are counted in ``dropped_events`` instead of stored
    (the per-component latency accumulators keep counting regardless).
    """

    def __init__(self, max_events: int = 2_000_000) -> None:
        self.max_events = max_events
        self.trace_events: List[Dict[str, Any]] = []
        self.dropped_events = 0
        self.transactions = 0
        #: Per-category hop counts ("ddio-fill", "mlc-steer-fill", ...).
        self.category_counts: Dict[str, int] = {}
        self._component_ticks: Dict[str, int] = {}
        self._hierarchy = None
        self._bus = None

    # -- wiring ---------------------------------------------------------

    def attach(self, hierarchy) -> "TraceRecorder":
        """Subscribe to ``hierarchy``'s bus and enable hop recording."""
        if self._bus is not None:
            raise RuntimeError("recorder is already attached")
        bus = hierarchy.bus
        bus.subscribe(MemoryTransaction, self.on_transaction)
        bus.subscribe(MlcWritebackEvent, self.on_mlc_writeback)
        bus.subscribe(LlcWritebackEvent, self.on_llc_writeback)
        bus.subscribe(PmdBatchEvent, self.on_pmd_batch)
        bus.subscribe(FaultEvent, self.on_fault)
        self._hierarchy = hierarchy
        self._bus = bus
        hierarchy.record_hops = True
        return self

    def detach(self) -> None:
        """Unsubscribe and disable hop recording on the hierarchy."""
        if self._bus is None:
            return
        self._bus.unsubscribe(MemoryTransaction, self.on_transaction)
        self._bus.unsubscribe(MlcWritebackEvent, self.on_mlc_writeback)
        self._bus.unsubscribe(LlcWritebackEvent, self.on_llc_writeback)
        self._bus.unsubscribe(PmdBatchEvent, self.on_pmd_batch)
        self._bus.unsubscribe(FaultEvent, self.on_fault)
        if self._hierarchy is not None and not self._bus.has_subscribers(
            MemoryTransaction
        ):
            self._hierarchy.record_hops = False
        self._hierarchy = None
        self._bus = None

    # -- subscribers ----------------------------------------------------

    def on_transaction(self, txn: MemoryTransaction) -> None:
        self.transactions += 1
        ts = units.to_microseconds(txn.now)
        offset = 0
        for hop in txn.hops:
            category = categorize(txn, hop)
            self.category_counts[category] = self.category_counts.get(category, 0) + 1
            self._component_ticks[hop.component] = (
                self._component_ticks.get(hop.component, 0) + hop.latency
            )
            self._emit(
                {
                    "name": f"{hop.component}:{hop.action}",
                    "cat": category,
                    "ph": "X",
                    "ts": ts + units.to_microseconds(offset),
                    "dur": units.to_microseconds(hop.latency),
                    "pid": 0,
                    "tid": _COMPONENT_TIDS.get(hop.component, 0),
                    "args": {
                        "kind": txn.kind,
                        "addr": f"{txn.addr:#x}",
                        "core": txn.core,
                        "level": txn.level,
                    },
                }
            )
            offset += hop.latency

    def on_mlc_writeback(self, event: MlcWritebackEvent) -> None:
        self._instant(f"mlc-writeback-c{event.core}", "mlc-writeback", event.now)

    def on_llc_writeback(self, event: LlcWritebackEvent) -> None:
        self._instant("llc-writeback", "llc-writeback", event.now)

    def on_pmd_batch(self, event: PmdBatchEvent) -> None:
        self._instant(
            f"pmd-batch-c{event.core} ({event.size})", "pmd-batch", event.now
        )

    def on_fault(self, event: FaultEvent) -> None:
        """Injected faults get their own lane, categorized by fault kind,
        so degradation in the component lanes can be read against the
        exact injection times that caused it."""
        self.category_counts[event.kind] = self.category_counts.get(event.kind, 0) + 1
        self._emit(
            {
                "name": event.kind,
                "cat": event.kind,
                "ph": "i",
                "s": "g",
                "ts": units.to_microseconds(event.now),
                "pid": 0,
                "tid": _FAULT_TID,
                "args": {"layer": event.layer, "detail": event.detail},
            }
        )

    def _instant(self, name: str, category: str, now: int) -> None:
        self.category_counts[category] = self.category_counts.get(category, 0) + 1
        self._emit(
            {
                "name": name,
                "cat": category,
                "ph": "i",
                "s": "g",
                "ts": units.to_microseconds(now),
                "pid": 0,
                "tid": _EVENT_TID,
            }
        )

    def _emit(self, event: Dict[str, Any]) -> None:
        if len(self.trace_events) >= self.max_events:
            self.dropped_events += 1
            return
        self.trace_events.append(event)

    # -- consumers ------------------------------------------------------

    def latency_breakdown_ns(self) -> Dict[str, float]:
        """Mean per-component critical-path latency (ns) per transaction."""
        if self.transactions == 0:
            return {}
        return {
            f"mean_{component}_ns": units.to_nanoseconds(ticks) / self.transactions
            for component, ticks in sorted(self._component_ticks.items())
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The full trace as a Chrome-trace JSON object."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "args": {"name": "idio-repro server"},
            }
        ]
        for component, tid in sorted(_COMPONENT_TIDS.items(), key=lambda kv: kv[1]):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": component},
                }
            )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": _EVENT_TID,
                "args": {"name": "events"},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": _FAULT_TID,
                "args": {"name": "faults"},
            }
        )
        return {
            "traceEvents": metadata + self.trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "transactions": self.transactions,
                "dropped_events": self.dropped_events,
                "category_counts": dict(sorted(self.category_counts.items())),
            },
        }

    def export(self, path: str) -> int:
        """Write the Chrome-trace JSON to ``path``; returns event count."""
        trace = self.to_chrome_trace()
        with open(path, "w") as fh:
            json.dump(trace, fh)
            fh.write("\n")
        return len(trace["traceEvents"])

    def summary_line(self) -> str:
        cats = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.category_counts.items())
        )
        dropped = f", {self.dropped_events} dropped" if self.dropped_events else ""
        return f"{self.transactions} transactions traced ({cats}){dropped}"


class RackTraceRecorder:
    """Per-server lanes for a rack sweep, exported as a Chrome trace.

    Subscribes to a *rack-level* bus for :class:`ServerLaneSeries` and
    :class:`ServerCompletedEvent`.  Each server becomes its own trace
    process (``pid = server + 1``) with one counter lane per summary
    stream, so a rack's servers read side by side in Perfetto the way a
    single server's components do in :class:`TraceRecorder`.  Counter
    values are MTPS, timestamped in microseconds of simulated time.
    """

    #: Stable per-stream thread ids inside each server's process lane.
    _STREAM_TIDS = {
        "pcie_writes": 1,
        "mlc_writebacks": 2,
        "llc_writebacks": 3,
        "mlc_invalidations": 4,
        "dram_reads": 5,
        "dram_writes": 6,
    }
    _COMPLETION_TID = 7

    def __init__(self) -> None:
        self.trace_events: List[Dict[str, Any]] = []
        self.servers_seen: Dict[int, int] = {}  # server -> lane series count
        self.completions = 0
        self._bus = None

    def attach(self, bus) -> "RackTraceRecorder":
        if self._bus is not None:
            raise RuntimeError("recorder is already attached")
        bus.subscribe(ServerLaneSeries, self.on_lane_series)
        bus.subscribe(ServerCompletedEvent, self.on_server_completed)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        self._bus.unsubscribe(ServerLaneSeries, self.on_lane_series)
        self._bus.unsubscribe(ServerCompletedEvent, self.on_server_completed)
        self._bus = None

    def on_lane_series(self, event: ServerLaneSeries) -> None:
        self.servers_seen[event.server] = self.servers_seen.get(event.server, 0) + 1
        tid = self._STREAM_TIDS.get(event.stream, 0)
        for t_us, mtps in event.points:
            self.trace_events.append(
                {
                    "name": event.stream,
                    "ph": "C",
                    "ts": t_us,
                    "pid": event.server + 1,
                    "tid": tid,
                    "args": {"mtps": mtps},
                }
            )

    def on_server_completed(self, event: ServerCompletedEvent) -> None:
        self.completions += 1
        self.trace_events.append(
            {
                "name": f"server-{event.server} done",
                "cat": "rack",
                "ph": "i",
                "s": "p",
                "ts": 0.0,
                "pid": event.server + 1,
                "tid": self._COMPLETION_TID,
                "args": {
                    "flows": event.flows,
                    "completed": event.completed,
                    "drops": event.drops,
                    "fingerprint": event.fingerprint,
                },
            }
        )

    def to_chrome_trace(self) -> Dict[str, Any]:
        metadata: List[Dict[str, Any]] = []
        for server in sorted(self.servers_seen):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": server + 1,
                    "args": {"name": f"server-{server}"},
                }
            )
            for stream, tid in sorted(
                self._STREAM_TIDS.items(), key=lambda kv: kv[1]
            ):
                metadata.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": server + 1,
                        "tid": tid,
                        "args": {"name": stream},
                    }
                )
        return {
            "traceEvents": metadata + self.trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "servers": len(self.servers_seen),
                "completions": self.completions,
            },
        }

    def export(self, path: str) -> int:
        """Write the Chrome-trace JSON to ``path``; returns event count."""
        trace = self.to_chrome_trace()
        with open(path, "w") as fh:
            json.dump(trace, fh)
            fh.write("\n")
        return len(trace["traceEvents"])

    def summary_line(self) -> str:
        return (
            f"{len(self.servers_seen)} server lanes, "
            f"{len(self.trace_events)} samples, "
            f"{self.completions} completions"
        )


class TenantTraceRecorder:
    """Per-tenant degradation curves from an isolation sweep.

    Subscribes to a sweep-level bus for :class:`TenantLaneSeries` (as
    published by ``repro.tenants.sweep.run_tenants``).  Each tenant
    becomes its own trace process with one counter lane per
    ``policy:percentile`` stream; the x axis is aggressor intensity
    scaled to integer microticks (Chrome traces want monotonic numeric
    timestamps), the counter value the percentile in microseconds.
    """

    #: Intensity is a small float (0.25, 1.0, ...); scale it into the
    #: integer timestamp domain the trace format expects.
    _INTENSITY_SCALE = 1000.0

    def __init__(self) -> None:
        self.trace_events: List[Dict[str, Any]] = []
        self.tenants_seen: Dict[int, int] = {}  # tenant -> series count
        self._stream_tids: Dict[str, int] = {}
        self._bus = None

    def attach(self, bus) -> "TenantTraceRecorder":
        if self._bus is not None:
            raise RuntimeError("recorder is already attached")
        bus.subscribe(TenantLaneSeries, self.on_tenant_series)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        self._bus.unsubscribe(TenantLaneSeries, self.on_tenant_series)
        self._bus = None

    def _tid(self, stream: str) -> int:
        if stream not in self._stream_tids:
            self._stream_tids[stream] = len(self._stream_tids) + 1
        return self._stream_tids[stream]

    def on_tenant_series(self, event: TenantLaneSeries) -> None:
        self.tenants_seen[event.tenant] = (
            self.tenants_seen.get(event.tenant, 0) + 1
        )
        tid = self._tid(event.stream)
        for intensity, value_us in event.points:
            self.trace_events.append(
                {
                    "name": event.stream,
                    "ph": "C",
                    "ts": intensity * self._INTENSITY_SCALE,
                    "pid": event.tenant + 1,
                    "tid": tid,
                    "args": {"us": value_us},
                }
            )

    def to_chrome_trace(self) -> Dict[str, Any]:
        metadata: List[Dict[str, Any]] = []
        for tenant in sorted(self.tenants_seen):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": tenant + 1,
                    "args": {"name": f"tenant-{tenant}"},
                }
            )
            for stream, tid in sorted(
                self._stream_tids.items(), key=lambda kv: kv[1]
            ):
                metadata.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": tenant + 1,
                        "tid": tid,
                        "args": {"name": stream},
                    }
                )
        return {
            "traceEvents": metadata + self.trace_events,
            "displayTimeUnit": "ns",
            "otherData": {"tenants": len(self.tenants_seen)},
        }

    def export(self, path: str) -> int:
        """Write the Chrome-trace JSON to ``path``; returns event count."""
        trace = self.to_chrome_trace()
        with open(path, "w") as fh:
            json.dump(trace, fh)
            fh.write("\n")
        return len(trace["traceEvents"])

    def summary_line(self) -> str:
        return (
            f"{len(self.tenants_seen)} tenant lanes, "
            f"{len(self.trace_events)} samples"
        )


def merge_latency_breakdowns(
    base: Dict[str, float], recorder: Optional[TraceRecorder]
) -> Dict[str, float]:
    """Fold a recorder's per-component breakdown into a queueing/service one."""
    if recorder is None:
        return base
    merged = dict(base)
    merged.update(recorder.latency_breakdown_ns())
    return merged
