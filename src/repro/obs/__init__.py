"""Observability: the typed event bus and its subscribers.

``repro.obs`` is the control/telemetry plane of the memory path.  The
:class:`~repro.obs.bus.EventBus` replaces the ad-hoc callback lists the
hierarchy used to expose (``mlc_wb_listeners``/``llc_wb_listeners``);
every interested party — the statistics bundle, the IDIO controller's
control plane, the IAT baseline, the optional trace recorder — is now a
subscriber to typed events published by the hierarchy and the software
stack.  The rack tier publishes per-server lane events on a rack-level
bus; :class:`~repro.obs.trace.RackTraceRecorder` renders them as one
Chrome-trace process per server.
"""

from .bus import EventBus
from .events import (
    CacheHitEvent,
    CacheMissEvent,
    CacheStoreEvent,
    LlcWritebackEvent,
    MlcWritebackEvent,
    PmdBatchEvent,
    ServerCompletedEvent,
    ServerLaneSeries,
)
from .trace import RackTraceRecorder, TraceRecorder

__all__ = [
    "CacheHitEvent",
    "CacheMissEvent",
    "CacheStoreEvent",
    "EventBus",
    "LlcWritebackEvent",
    "MlcWritebackEvent",
    "PmdBatchEvent",
    "RackTraceRecorder",
    "ServerCompletedEvent",
    "ServerLaneSeries",
    "TraceRecorder",
]
