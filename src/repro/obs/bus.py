"""A small, fast, typed publish/subscribe event bus.

Topics are *event types* (classes); handlers subscribed to a type receive
every published instance of exactly that type.  The design is tuned for a
simulator hot path:

* ``publish`` is a single dict lookup plus a loop over a list — and
  publishers that care can skip even that by caching the live subscriber
  list via :meth:`EventBus.live` and only *constructing* the event object
  when the list is non-empty;
* subscriber lists are stable objects mutated in place, so a cached
  reference never goes stale;
* dispatch order is subscription order, deterministically — the parallel
  runner's byte-identical-summaries guarantee depends on this.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Type

Handler = Callable[[Any], None]


class EventBus:
    """Typed pub/sub: one subscriber list per event class."""

    __slots__ = ("_topics",)

    def __init__(self) -> None:
        self._topics: Dict[Type, List[Handler]] = {}

    def live(self, event_type: Type) -> List[Handler]:
        """The *live* subscriber list for ``event_type``.

        The returned list object is stable for the lifetime of the bus
        (subscribe/unsubscribe mutate it in place), so hot-path
        publishers may cache it once and iterate it directly::

            subs = bus.live(MlcWritebackEvent)
            ...
            if subs:                       # skip event construction
                event = MlcWritebackEvent(core, now)
                for handler in subs:
                    handler(event)
        """
        subs = self._topics.get(event_type)
        if subs is None:
            subs = self._topics[event_type] = []
        return subs

    def subscribe(self, event_type: Type, handler: Handler) -> Handler:
        """Register ``handler`` for ``event_type``; returns the handler."""
        self.live(event_type).append(handler)
        return handler

    def unsubscribe(self, event_type: Type, handler: Handler) -> None:
        """Remove a previously subscribed handler (no-op when absent)."""
        subs = self._topics.get(event_type)
        if subs is None:
            return
        try:
            subs.remove(handler)
        except ValueError:
            pass

    def has_subscribers(self, event_type: Type) -> bool:
        return bool(self._topics.get(event_type))

    def publish(self, event: Any) -> None:
        """Deliver ``event`` to every subscriber of ``type(event)``."""
        for handler in self._topics.get(type(event), ()):
            handler(event)

    def topics(self) -> List[Type]:
        """Event types with at least one subscriber."""
        return [t for t, subs in self._topics.items() if subs]
