"""Flow construction and flow-to-server steering.

Experiments pin one application instance per core; each instance receives
one (or several) 5-tuple flows.  ``make_flows`` builds deterministic,
distinct flows so Flow Director steering is reproducible across runs.

The rack tier (``repro.rack``) raises the stakes: a ToR switch tracks
*millions* of concurrent flows and steers each one to a server.  Two
pieces here serve that regime:

* ``make_flow`` uses a lane/slot encoding so 5-tuples stay *valid*
  (ports within 16 bits) and *unique* out to ~2.8 billion flows — the
  naive ``base + index`` scheme silently overflowed the port fields past
  index ~45k;
* :class:`FlowSteering` maps flows to servers either RSS-style (a
  power-of-two indirection table indexed by the Toeplitz-like 5-tuple
  hash) or by rendezvous (highest-random-weight) consistent hashing,
  which keeps remapping minimal when a server leaves the rack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .packet import FiveTuple

#: Flow indices per source-IP lane.  ``src_port`` spans
#: ``[10_000, 55_000)`` and ``dst_port`` spans ``[20_000, 65_000)``, both
#: comfortably inside the 16-bit port space; indices below one span
#: reproduce the historical single-lane encoding exactly.
FLOW_LANE_SPAN = 45_000

#: Lanes available before ``src_ip`` would leave the 32-bit address
#: space (lane is encoded in bits 16+ above the ``10.0.0.1`` base).
_MAX_LANES = (0xFFFF_FFFF - 0x0A00_0001) >> 16

#: Hard ceiling on ``make_flow`` indices (~2.8 billion distinct flows).
MAX_FLOWS = _MAX_LANES * FLOW_LANE_SPAN


def make_flow(index: int, app_class: int = 0) -> FiveTuple:
    """A deterministic distinct flow for flow ``index``.

    The index is split into ``(lane, slot)`` with ``slot < FLOW_LANE_SPAN``:
    the slot offsets the ports and the low IP bits, the lane offsets the
    IP's third octet and up.  The mapping is injective (``src_ip`` alone
    recovers the index), so any two distinct indices below
    :data:`MAX_FLOWS` produce distinct — and valid — 5-tuples.
    """
    if index < 0:
        raise ValueError(f"flow index must be non-negative, got {index}")
    if index >= MAX_FLOWS:
        raise ValueError(f"flow index {index} exceeds MAX_FLOWS ({MAX_FLOWS})")
    lane, slot = divmod(index, FLOW_LANE_SPAN)
    lane_base = lane << 16
    return FiveTuple(
        src_ip=0x0A00_0001 + lane_base + slot,
        dst_ip=0x0A00_1001 + lane_base + slot,
        src_port=10_000 + slot,
        dst_port=20_000 + slot,
    )


def make_flows(count: int) -> List[FiveTuple]:
    """``count`` deterministic distinct flows."""
    return [make_flow(i) for i in range(count)]


def make_tenant_flow(tenant: int, slot: int) -> FiveTuple:
    """A deterministic flow tagged with a tenant id.

    Tenant tagging reuses the lane/slot encoding of :func:`make_flow`:
    the *lane* is the tenant id and the *slot* indexes the tenant's flow
    population, so a tenant-tagged flow is indistinguishable from any
    other ``make_flow`` product on the wire but carries its owner in the
    IP's upper bits.  :func:`flow_tenant` recovers the tag.
    """
    if tenant < 0:
        raise ValueError(f"tenant id must be non-negative, got {tenant}")
    if slot < 0 or slot >= FLOW_LANE_SPAN:
        raise ValueError(
            f"tenant flow slot must be in [0, {FLOW_LANE_SPAN}), got {slot}"
        )
    return make_flow(tenant * FLOW_LANE_SPAN + slot)


def flow_tenant(flow: FiveTuple) -> int:
    """The tenant id (lane) encoded in a :func:`make_tenant_flow` flow.

    Only meaningful for flows produced by the ``make_flow`` family: the
    lane bits of ``src_ip`` *are* the tenant id under tenant tagging.
    Untenanted single-server flows all decode to tenant 0.
    """
    return (flow.src_ip - 0x0A00_0001) >> 16


def flow_key(flow: FiveTuple) -> int:
    """The 5-tuple packed into one integer (a stable steering key)."""
    return (
        (flow.src_ip << 72)
        | (flow.dst_ip << 40)
        | (flow.src_port << 24)
        | (flow.dst_port << 8)
        | flow.protocol
    )


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a deterministic 64-bit avalanche mix."""
    value &= 0xFFFF_FFFF_FFFF_FFFF
    value = (value ^ (value >> 30)) * 0xBF58_476D_1CE4_E5B9 & 0xFFFF_FFFF_FFFF_FFFF
    value = (value ^ (value >> 27)) * 0x94D0_49BB_1331_11EB & 0xFFFF_FFFF_FFFF_FFFF
    return value ^ (value >> 31)


#: Steering modes understood by :class:`FlowSteering`.
STEERING_MODES = ("rss", "rendezvous")


class FlowSteering:
    """Deterministic flow-to-server steering for a rack's ToR switch.

    ``rss`` models the receive-side-scaling shape real ToR load balancers
    and NICs share: the flow hash indexes a ``2**table_bits``-entry
    indirection table whose entries name servers round-robin.  Constant
    time per flow and near-uniform at scale, but resizing the rack
    rewrites the whole table.

    ``rendezvous`` is highest-random-weight consistent hashing: each flow
    goes to the server maximizing ``mix(flow_key, server, seed)``.
    O(num_servers) per lookup, but removing a server remaps only the
    flows that server owned — the property rack-scale draining relies on.
    """

    __slots__ = ("num_servers", "mode", "table_bits", "seed", "_table")

    def __init__(
        self,
        num_servers: int,
        mode: str = "rss",
        table_bits: int = 17,
        seed: int = 0,
    ) -> None:
        if num_servers <= 0:
            raise ValueError(f"num_servers must be positive, got {num_servers}")
        if mode not in STEERING_MODES:
            raise ValueError(
                f"unknown steering mode {mode!r}; choose from {STEERING_MODES}"
            )
        if not 1 <= table_bits <= 24:
            raise ValueError(f"table_bits must be in [1, 24], got {table_bits}")
        self.num_servers = num_servers
        self.mode = mode
        self.table_bits = table_bits
        self.seed = seed
        self._table: List[int] = []
        if mode == "rss":
            # Round-robin fill starting at a seed-derived offset: the
            # indirection table is maximally balanced (entry counts per
            # server differ by at most one) and still seed-diverse.
            offset = _mix64(seed) % num_servers
            size = 1 << table_bits
            self._table = [(offset + i) % num_servers for i in range(size)]

    def server_for(self, flow: FiveTuple) -> int:
        """The server index (``0..num_servers-1``) this flow steers to."""
        if self.mode == "rss":
            return self._table[flow.hash_value(self.table_bits)]
        key = flow_key(flow)
        best_server = 0
        best_weight = -1
        for server in range(self.num_servers):
            weight = _mix64(key ^ _mix64((self.seed << 20) | server))
            if weight > best_weight:
                best_weight = weight
                best_server = server
        return best_server

    def assign(self, flows: Sequence[FiveTuple]) -> List[List[FiveTuple]]:
        """Partition ``flows`` into per-server lists (order-preserving)."""
        buckets: List[List[FiveTuple]] = [[] for _ in range(self.num_servers)]
        for flow in flows:
            buckets[self.server_for(flow)].append(flow)
        return buckets

    def assignment_counts(self, flows: Sequence[FiveTuple]) -> List[int]:
        """Flows per server without materializing the partition."""
        counts = [0] * self.num_servers
        for flow in flows:
            counts[self.server_for(flow)] += 1
        return counts

    def digest(self) -> int:
        """A deterministic fingerprint of the steering configuration.

        Built purely from integer mixing (never ``hash()``, which is
        salted per process) so the digest is stable across processes —
        it participates in the rack fingerprint.
        """
        mode_code = STEERING_MODES.index(self.mode)
        digest = _mix64(0x9E37_79B9)
        for part in (mode_code, self.num_servers, self.table_bits, self.seed):
            digest = _mix64(digest ^ _mix64(part))
        return digest


def steering_table_histogram(steering: FlowSteering) -> Dict[int, int]:
    """Server -> indirection-table entry count (``rss`` mode only)."""
    if steering.mode != "rss":
        raise ValueError("histogram is only defined for rss steering")
    counts: Dict[int, int] = {}
    for server in steering._table:
        counts[server] = counts.get(server, 0) + 1
    return counts
