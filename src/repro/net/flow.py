"""Flow construction helpers.

Experiments pin one application instance per core; each instance receives
one (or several) 5-tuple flows.  ``make_flows`` builds deterministic,
distinct flows so Flow Director steering is reproducible across runs.
"""

from __future__ import annotations

from typing import List

from .packet import FiveTuple


def make_flow(index: int, app_class: int = 0) -> FiveTuple:
    """A deterministic distinct flow for application instance ``index``."""
    if index < 0:
        raise ValueError(f"flow index must be non-negative, got {index}")
    return FiveTuple(
        src_ip=0x0A00_0001 + index,
        dst_ip=0x0A00_1001 + index,
        src_port=10_000 + index,
        dst_port=20_000 + index,
    )


def make_flows(count: int) -> List[FiveTuple]:
    """``count`` deterministic distinct flows."""
    return [make_flow(i) for i in range(count)]
