"""Packets, headers, and DSCP application classes.

Packets are lightweight metadata objects: the simulator moves cachelines,
not payload bytes.  The fields modeled are exactly the ones IDIO's
classifier consumes: the 5-tuple (for Flow Director hashing), the DSCP
application class (§V-A), and sizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..mem.line import LINE_SIZE, num_lines

#: Ethernet maximum transmission unit frame size used throughout the paper.
MTU_FRAME_BYTES = 1514
#: Bytes the header DMA transaction occupies.  Headers of all the common
#: protocols fit in one cacheline (§V-A).
HEADER_BYTES = LINE_SIZE
#: Per-packet wire overhead: preamble (8) + inter-frame gap (12) + FCS (4).
WIRE_OVERHEAD_BYTES = 24

#: IDIO application classes carried in the DSCP field (§V-A):
#: class 0 = short use distance (payload processed promptly);
#: class 1 = long use distance / payload rarely touched.
APP_CLASS_SHORT_USE = 0
APP_CLASS_LONG_USE = 1

_packet_ids = itertools.count()


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """The flow identity Flow Director hashes (§II-C)."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    def hash_value(self, table_bits: int) -> int:
        """Deterministic hash into a ``2**table_bits``-entry filter table."""
        h = (
            self.src_ip * 0x9E3779B1
            ^ self.dst_ip * 0x85EBCA77
            ^ (self.src_port << 16 | self.dst_port) * 0xC2B2AE3D
            ^ self.protocol * 0x27D4EB2F
        ) & 0xFFFFFFFF
        h ^= h >> 15
        return h & ((1 << table_bits) - 1)


@dataclass(slots=True)
class Packet:
    """One network frame (RX direction unless noted)."""

    size_bytes: int = MTU_FRAME_BYTES
    flow: FiveTuple = field(default_factory=lambda: FiveTuple(1, 2, 1000, 2000))
    app_class: int = APP_CLASS_SHORT_USE
    #: Wall-clock (simulator tick) the last bit arrived at the NIC.
    arrival_time: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Filled by the NIC once DMA-ed: byte address of the buffer.
    buffer_addr: Optional[int] = None
    #: Wall-clock the PMD started processing this packet (service start).
    service_start_time: Optional[int] = None
    #: Filled by the application when processing completes (for latency).
    completion_time: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes}")
        if self.app_class not in (APP_CLASS_SHORT_USE, APP_CLASS_LONG_USE):
            raise ValueError(f"app_class must be 0 or 1, got {self.app_class}")

    @property
    def num_lines(self) -> int:
        """Cachelines this packet's buffer spans (24 for a 1514 B frame)."""
        return num_lines(self.size_bytes)

    @property
    def header_lines(self) -> int:
        """Lines carrying the protocol header (always the first line)."""
        return num_lines(min(self.size_bytes, HEADER_BYTES))

    @property
    def payload_lines(self) -> int:
        return self.num_lines - self.header_lines

    @property
    def wire_bytes(self) -> int:
        """Bytes the frame occupies on the wire, including overhead."""
        return self.size_bytes + WIRE_OVERHEAD_BYTES

    @property
    def latency(self) -> Optional[int]:
        """Arrival-to-completion latency in ticks (None until processed)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time

    @property
    def queueing_delay(self) -> Optional[int]:
        """Arrival to service start: NIC pipeline + ring wait + batching."""
        if self.service_start_time is None:
            return None
        return self.service_start_time - self.arrival_time

    @property
    def service_time(self) -> Optional[int]:
        """Service start to completion: the pure processing component."""
        if self.completion_time is None or self.service_start_time is None:
            return None
        return self.completion_time - self.service_start_time
