"""Network substrate: packets, flows, and load generators."""

from .flow import make_flow, make_flows
from .packet import (
    APP_CLASS_LONG_USE,
    APP_CLASS_SHORT_USE,
    HEADER_BYTES,
    MTU_FRAME_BYTES,
    WIRE_OVERHEAD_BYTES,
    FiveTuple,
    Packet,
)
from .traffic import (
    IMIX_DISTRIBUTION,
    BurstProfile,
    SteadyProfile,
    TrafficGenerator,
)

__all__ = [
    "APP_CLASS_LONG_USE",
    "APP_CLASS_SHORT_USE",
    "BurstProfile",
    "FiveTuple",
    "HEADER_BYTES",
    "IMIX_DISTRIBUTION",
    "MTU_FRAME_BYTES",
    "Packet",
    "SteadyProfile",
    "TrafficGenerator",
    "WIRE_OVERHEAD_BYTES",
    "make_flow",
    "make_flows",
]
