"""Network substrate: packets, flows, steering, and load generators."""

from .flow import (
    FLOW_LANE_SPAN,
    MAX_FLOWS,
    STEERING_MODES,
    FlowSteering,
    flow_key,
    make_flow,
    make_flows,
)
from .packet import (
    APP_CLASS_LONG_USE,
    APP_CLASS_SHORT_USE,
    HEADER_BYTES,
    MTU_FRAME_BYTES,
    WIRE_OVERHEAD_BYTES,
    FiveTuple,
    Packet,
)
from .traffic import (
    IMIX_DISTRIBUTION,
    BurstProfile,
    DiurnalProfile,
    HeavyTailProfile,
    SteadyProfile,
    TrafficGenerator,
)

__all__ = [
    "APP_CLASS_LONG_USE",
    "APP_CLASS_SHORT_USE",
    "BurstProfile",
    "DiurnalProfile",
    "FLOW_LANE_SPAN",
    "FiveTuple",
    "FlowSteering",
    "HEADER_BYTES",
    "HeavyTailProfile",
    "IMIX_DISTRIBUTION",
    "MAX_FLOWS",
    "MTU_FRAME_BYTES",
    "Packet",
    "STEERING_MODES",
    "SteadyProfile",
    "TrafficGenerator",
    "WIRE_OVERHEAD_BYTES",
    "flow_key",
    "make_flow",
    "make_flows",
]
