"""Steady and bursty traffic generation (§VI methodology).

The paper drives the simulated server with a hardware load-generator model
rather than a second full system.  We do the same: a generator emits packet
arrival events directly into the NIC.

Bursty traffic is parameterized exactly as §VI defines it:

* *burst period* — time between the starts of two consecutive bursts
  (fixed at 10 ms in the paper);
* *burst rate*  — line rate during a burst (10/25/100 Gbps);
* *burst length* — chosen so each burst delivers exactly ``ring_size``
  packets, preventing intra-burst drops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence, Tuple

from ..sim import Simulator, units
from .packet import MTU_FRAME_BYTES, Packet, FiveTuple

#: The classic IMIX packet-size mix: (frame bytes, weight).
IMIX_DISTRIBUTION: Tuple[Tuple[int, int], ...] = ((64, 7), (594, 4), (1518, 1))


@dataclass(frozen=True)
class SteadyProfile:
    """Constant-rate traffic at ``rate_gbps`` for ``duration`` ticks."""

    rate_gbps: float
    duration: int
    packet_bytes: int = MTU_FRAME_BYTES
    start: int = 0

    def inter_arrival(self) -> int:
        """Ticks between consecutive packet arrivals (wire-rate spacing)."""
        wire = self.packet_bytes + 24
        return units.transfer_time(wire, self.rate_gbps)


@dataclass(frozen=True)
class BurstProfile:
    """Periodic bursts per §VI: period, rate, and packets-per-burst."""

    burst_rate_gbps: float
    packets_per_burst: int
    burst_period: int = units.milliseconds(10)
    num_bursts: int = 1
    packet_bytes: int = MTU_FRAME_BYTES
    start: int = 0

    def inter_arrival(self) -> int:
        wire = self.packet_bytes + 24
        return units.transfer_time(wire, self.burst_rate_gbps)

    @property
    def burst_length(self) -> int:
        """Duration of one burst in ticks (first to last packet)."""
        return self.inter_arrival() * max(0, self.packets_per_burst - 1)


class TrafficGenerator:
    """Schedules packet arrivals on the simulator and hands them to a sink.

    The sink is usually ``NIC.receive``.  One generator drives one flow;
    experiments create one generator per application instance.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: FiveTuple,
        sink: Callable[[Packet], None],
        app_class: int = 0,
    ) -> None:
        self.sim = sim
        self.flow = flow
        self.sink = sink
        self.app_class = app_class
        self.packets_emitted = 0
        #: Total arrivals scheduled on the simulator (emitted or pending).
        self.packets_scheduled = 0

    def _emit(self, size_bytes: int) -> None:
        packet = Packet(
            size_bytes=size_bytes,
            flow=self.flow,
            app_class=self.app_class,
            arrival_time=self.sim.now,
        )
        self.packets_emitted += 1
        self.sink(packet)

    def schedule_steady(self, profile: SteadyProfile) -> int:
        """Schedule a steady stream; returns the number of packets queued."""
        gap = profile.inter_arrival()
        if gap <= 0:
            raise ValueError("steady profile rate too high for packet size")
        count = 0
        t = profile.start
        end = profile.start + profile.duration
        while t < end:
            self.sim.schedule_at(
                t, lambda b=profile.packet_bytes: self._emit(b), "steady-arrival"
            )
            t += gap
            count += 1
        self.packets_scheduled += count
        return count

    def schedule_poisson(
        self,
        rate_gbps: float,
        duration: int,
        packet_bytes: int = MTU_FRAME_BYTES,
        start: int = 0,
        seed: int = 0,
    ) -> int:
        """Poisson arrivals at an average of ``rate_gbps``.

        Exponentially distributed inter-arrival times (seeded, so runs
        replay exactly) model uncoordinated senders — the natural
        in-between of the paper's perfectly steady and perfectly bursty
        profiles.  Returns the number of packets scheduled.
        """
        wire = packet_bytes + 24
        mean_gap = units.transfer_time(wire, rate_gbps)
        if mean_gap <= 0:
            raise ValueError("rate too high for packet size")
        rng = random.Random(seed)
        count = 0
        t = float(start)
        end = start + duration
        while True:
            t += rng.expovariate(1.0 / mean_gap)
            if t >= end:
                break
            self.sim.schedule_at(
                int(t), lambda b=packet_bytes: self._emit(b), "poisson-arrival"
            )
            count += 1
        self.packets_scheduled += count
        return count

    def schedule_imix(
        self,
        rate_gbps: float,
        duration: int,
        start: int = 0,
        seed: int = 0,
        distribution: Sequence[Tuple[int, int]] = IMIX_DISTRIBUTION,
    ) -> int:
        """A steady stream with IMIX packet sizes (64/594/1518, 7:4:1).

        Each arrival's size is drawn from ``distribution`` (seeded); the
        inter-arrival gap after each packet matches its own wire time at
        ``rate_gbps``, so the average offered load equals the target.
        """
        if not distribution:
            raise ValueError("empty size distribution")
        sizes = [s for s, _ in distribution]
        weights = [w for _, w in distribution]
        rng = random.Random(seed)
        count = 0
        t = start
        end = start + duration
        while t < end:
            size = rng.choices(sizes, weights=weights)[0]
            self.sim.schedule_at(t, lambda b=size: self._emit(b), "imix-arrival")
            t += units.transfer_time(size + 24, rate_gbps)
            count += 1
        self.packets_scheduled += count
        return count

    def schedule_bursts(self, profile: BurstProfile) -> int:
        """Schedule periodic bursts; returns the number of packets queued."""
        gap = profile.inter_arrival()
        count = 0
        for burst in range(profile.num_bursts):
            burst_start = profile.start + burst * profile.burst_period
            for i in range(profile.packets_per_burst):
                self.sim.schedule_at(
                    burst_start + i * gap,
                    lambda b=profile.packet_bytes: self._emit(b),
                    "burst-arrival",
                )
                count += 1
        self.packets_scheduled += count
        return count
