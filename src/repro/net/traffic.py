"""Steady and bursty traffic generation (§VI methodology).

The paper drives the simulated server with a hardware load-generator model
rather than a second full system.  We do the same: a generator emits packet
arrival events directly into the NIC.

Bursty traffic is parameterized exactly as §VI defines it:

* *burst period* — time between the starts of two consecutive bursts
  (fixed at 10 ms in the paper);
* *burst rate*  — line rate during a burst (10/25/100 Gbps);
* *burst length* — chosen so each burst delivers exactly ``ring_size``
  packets, preventing intra-burst drops.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence, Tuple

from ..sim import Simulator, units
from .packet import MTU_FRAME_BYTES, Packet, FiveTuple

#: The classic IMIX packet-size mix: (frame bytes, weight).
IMIX_DISTRIBUTION: Tuple[Tuple[int, int], ...] = ((64, 7), (594, 4), (1518, 1))


@dataclass(frozen=True)
class SteadyProfile:
    """Constant-rate traffic at ``rate_gbps`` for ``duration`` ticks."""

    rate_gbps: float
    duration: int
    packet_bytes: int = MTU_FRAME_BYTES
    start: int = 0

    def inter_arrival(self) -> int:
        """Ticks between consecutive packet arrivals (wire-rate spacing)."""
        wire = self.packet_bytes + 24
        return units.transfer_time(wire, self.rate_gbps)


@dataclass(frozen=True)
class BurstProfile:
    """Periodic bursts per §VI: period, rate, and packets-per-burst."""

    burst_rate_gbps: float
    packets_per_burst: int
    burst_period: int = units.milliseconds(10)
    num_bursts: int = 1
    packet_bytes: int = MTU_FRAME_BYTES
    start: int = 0

    def inter_arrival(self) -> int:
        wire = self.packet_bytes + 24
        return units.transfer_time(wire, self.burst_rate_gbps)

    @property
    def burst_length(self) -> int:
        """Duration of one burst in ticks (first to last packet)."""
        return self.inter_arrival() * max(0, self.packets_per_burst - 1)


@dataclass(frozen=True)
class HeavyTailProfile:
    """Pareto (heavy-tailed) inter-arrival gaps at a target mean rate.

    Datacenter inbound traffic is famously not Poisson: a few long idle
    gaps separate trains of closely spaced packets (the "last mile"
    observation the rack tier models).  Gaps are drawn from a Pareto
    distribution with shape ``alpha`` scaled so the *mean* gap matches
    ``rate_gbps`` — smaller ``alpha`` means burstier trains and longer
    tails; ``alpha`` must exceed 1 for the mean to exist at all.
    """

    rate_gbps: float
    duration: int
    alpha: float = 1.5
    packet_bytes: int = MTU_FRAME_BYTES
    start: int = 0
    seed: int = 0

    def mean_inter_arrival(self) -> int:
        """Mean ticks between arrivals (wire-rate spacing at the target)."""
        wire = self.packet_bytes + 24
        return units.transfer_time(wire, self.rate_gbps)


@dataclass(frozen=True)
class DiurnalProfile:
    """A sinusoidal day/night load swing between a trough and a peak rate.

    The instantaneous rate follows ``trough + (peak - trough) *
    (1 - cos(2*pi*t / period)) / 2`` — the trough at the start and end of
    each period, the peak halfway through.  ``period`` is a *simulated*
    day, compressed to whatever the experiment can afford (the shape, not
    the wall-time, is what stresses placement policies).  Arrivals are a
    non-homogeneous Poisson process realized by seeded thinning, so runs
    replay exactly.
    """

    trough_rate_gbps: float
    peak_rate_gbps: float
    duration: int
    period: int = units.milliseconds(1)
    packet_bytes: int = MTU_FRAME_BYTES
    start: int = 0
    seed: int = 0

    def rate_at(self, t: int) -> float:
        """Instantaneous offered rate (Gbps) at tick ``t`` past ``start``."""
        swing = self.peak_rate_gbps - self.trough_rate_gbps
        phase = 2.0 * math.pi * (t / self.period)
        return self.trough_rate_gbps + swing * (1.0 - math.cos(phase)) / 2.0

    def mean_rate_gbps(self) -> float:
        """The average offered rate over whole periods."""
        return (self.trough_rate_gbps + self.peak_rate_gbps) / 2.0


class TrafficGenerator:
    """Schedules packet arrivals on the simulator and hands them to a sink.

    The sink is usually ``NIC.receive``.  One generator drives one flow;
    experiments create one generator per application instance.
    """

    def __init__(
        self,
        sim: Simulator,
        flow: FiveTuple,
        sink: Callable[[Packet], None],
        app_class: int = 0,
    ) -> None:
        self.sim = sim
        self.flow = flow
        self.sink = sink
        self.app_class = app_class
        self.packets_emitted = 0
        #: Total arrivals scheduled on the simulator (emitted or pending).
        self.packets_scheduled = 0

    def _emit(self, size_bytes: int) -> None:
        packet = Packet(
            size_bytes=size_bytes,
            flow=self.flow,
            app_class=self.app_class,
            arrival_time=self.sim.now,
        )
        self.packets_emitted += 1
        self.sink(packet)

    def schedule_steady(self, profile: SteadyProfile) -> int:
        """Schedule a steady stream; returns the number of packets queued."""
        gap = profile.inter_arrival()
        if gap <= 0:
            raise ValueError("steady profile rate too high for packet size")
        count = 0
        t = profile.start
        end = profile.start + profile.duration
        while t < end:
            self.sim.schedule_at(
                t, lambda b=profile.packet_bytes: self._emit(b), "steady-arrival"
            )
            t += gap
            count += 1
        self.packets_scheduled += count
        return count

    def schedule_poisson(
        self,
        rate_gbps: float,
        duration: int,
        packet_bytes: int = MTU_FRAME_BYTES,
        start: int = 0,
        seed: int = 0,
    ) -> int:
        """Poisson arrivals at an average of ``rate_gbps``.

        Exponentially distributed inter-arrival times (seeded, so runs
        replay exactly) model uncoordinated senders — the natural
        in-between of the paper's perfectly steady and perfectly bursty
        profiles.  Returns the number of packets scheduled.
        """
        wire = packet_bytes + 24
        mean_gap = units.transfer_time(wire, rate_gbps)
        if mean_gap <= 0:
            raise ValueError("rate too high for packet size")
        rng = random.Random(seed)
        count = 0
        t = float(start)
        end = start + duration
        while True:
            t += rng.expovariate(1.0 / mean_gap)
            if t >= end:
                break
            self.sim.schedule_at(
                int(t), lambda b=packet_bytes: self._emit(b), "poisson-arrival"
            )
            count += 1
        self.packets_scheduled += count
        return count

    def schedule_imix(
        self,
        rate_gbps: float,
        duration: int,
        start: int = 0,
        seed: int = 0,
        distribution: Sequence[Tuple[int, int]] = IMIX_DISTRIBUTION,
    ) -> int:
        """A steady stream with IMIX packet sizes (64/594/1518, 7:4:1).

        Each arrival's size is drawn from ``distribution`` (seeded); the
        inter-arrival gap after each packet matches its own wire time at
        ``rate_gbps``, so the average offered load equals the target.
        """
        if not distribution:
            raise ValueError("empty size distribution")
        sizes = [s for s, _ in distribution]
        weights = [w for _, w in distribution]
        rng = random.Random(seed)
        count = 0
        t = start
        end = start + duration
        while t < end:
            size = rng.choices(sizes, weights=weights)[0]
            self.sim.schedule_at(t, lambda b=size: self._emit(b), "imix-arrival")
            t += units.transfer_time(size + 24, rate_gbps)
            count += 1
        self.packets_scheduled += count
        return count

    def schedule_heavy_tail(self, profile: HeavyTailProfile) -> int:
        """Schedule Pareto-gap arrivals; returns the number scheduled.

        Each gap is ``mean_gap * (alpha - 1) / alpha * paretovariate(alpha)``,
        whose expectation is exactly ``mean_gap`` (the Pareto mean is
        ``alpha / (alpha - 1)``), so the long-run offered load matches the
        profile's target rate while individual gaps are heavy-tailed.
        """
        if profile.alpha <= 1.0:
            raise ValueError(
                f"heavy-tail alpha must exceed 1 (finite mean), got {profile.alpha}"
            )
        mean_gap = profile.mean_inter_arrival()
        if mean_gap <= 0:
            raise ValueError("heavy-tail profile rate too high for packet size")
        scale = mean_gap * (profile.alpha - 1.0) / profile.alpha
        rng = random.Random(profile.seed)
        count = 0
        t = float(profile.start)
        end = profile.start + profile.duration
        while True:
            t += scale * rng.paretovariate(profile.alpha)
            if t >= end:
                break
            self.sim.schedule_at(
                int(t),
                lambda b=profile.packet_bytes: self._emit(b),
                "heavytail-arrival",
            )
            count += 1
        self.packets_scheduled += count
        return count

    def schedule_diurnal(self, profile: DiurnalProfile) -> int:
        """Schedule diurnal-swing arrivals; returns the number scheduled.

        A non-homogeneous Poisson process by Lewis-Shedler thinning:
        candidates arrive at the *peak* rate with exponential gaps and
        each is accepted with probability ``rate(t) / peak`` — exact for
        any bounded rate function, and deterministic under the seed.
        """
        if profile.peak_rate_gbps <= 0:
            raise ValueError("diurnal peak rate must be positive")
        if profile.trough_rate_gbps < 0:
            raise ValueError("diurnal trough rate must be non-negative")
        if profile.trough_rate_gbps > profile.peak_rate_gbps:
            raise ValueError("diurnal trough rate exceeds the peak rate")
        wire = profile.packet_bytes + 24
        peak_gap = units.transfer_time(wire, profile.peak_rate_gbps)
        if peak_gap <= 0:
            raise ValueError("diurnal peak rate too high for packet size")
        rng = random.Random(profile.seed)
        count = 0
        t = float(profile.start)
        end = profile.start + profile.duration
        while True:
            t += rng.expovariate(1.0 / peak_gap)
            if t >= end:
                break
            accept = profile.rate_at(int(t) - profile.start) / profile.peak_rate_gbps
            if rng.random() >= accept:
                continue
            self.sim.schedule_at(
                int(t),
                lambda b=profile.packet_bytes: self._emit(b),
                "diurnal-arrival",
            )
            count += 1
        self.packets_scheduled += count
        return count

    def schedule_bursts(self, profile: BurstProfile) -> int:
        """Schedule periodic bursts; returns the number of packets queued."""
        gap = profile.inter_arrival()
        count = 0
        for burst in range(profile.num_bursts):
            burst_start = profile.start + burst * profile.burst_period
            for i in range(profile.packets_per_burst):
                self.sim.schedule_at(
                    burst_start + i * gap,
                    lambda b=profile.packet_bytes: self._emit(b),
                    "burst-arrival",
                )
                count += 1
        self.packets_scheduled += count
        return count
