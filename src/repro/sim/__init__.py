"""Discrete-event simulation kernel used by every hardware model."""

from .event import Event, EventQueue
from .kernel import PeriodicTask, SimulationError, Simulator
from .process import Process, spawn
from . import units

__all__ = [
    "Event",
    "EventQueue",
    "PeriodicTask",
    "Process",
    "SimulationError",
    "Simulator",
    "spawn",
    "units",
]
