"""Event primitives for the discrete-event kernel.

An :class:`Event` pairs a firing time with a zero-argument callback.  Events
with equal timestamps fire in the order they were scheduled (FIFO), which is
required for deterministic replays of the NIC/CPU interleavings.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, sequence)`` where ``sequence`` is a
    monotonically increasing number assigned at scheduling time, giving
    deterministic FIFO ordering for simultaneous events.
    """

    __slots__ = ("time", "sequence", "callback", "name", "cancelled")

    def __init__(
        self,
        time: int,
        sequence: int,
        callback: Callable[[], Any],
        name: str = "",
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it is popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        label = self.name or self.callback.__name__
        return f"<Event t={self.time} seq={self.sequence} {label}{state}>"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    Heap entries are ``(time, sequence, event)`` tuples rather than bare
    events: tuple comparison runs in C, so every sift during push/pop
    skips the ``Event.__lt__`` Python call.  The ordering is identical —
    ``(time, sequence)`` is exactly the key ``Event.__lt__`` compares,
    and the sequence is unique so the event object itself is never
    compared.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, event.sequence, event))

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises :class:`IndexError` when no live events remain.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if not event.cancelled:
                return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> Optional[int]:
        """Time of the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]
