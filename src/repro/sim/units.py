"""Time and bandwidth units used throughout the simulator.

The simulation clock counts integer *picoseconds*.  Using an integer tick
avoids floating-point drift when millions of events are scheduled and keeps
event ordering exact.  All public helpers convert human-friendly quantities
(nanoseconds, gigabits per second, CPU cycles) into ticks and back.
"""

from __future__ import annotations

#: Number of simulator ticks per picosecond (the base unit).
PICOSECOND = 1
#: Ticks per nanosecond.
NANOSECOND = 1_000 * PICOSECOND
#: Ticks per microsecond.
MICROSECOND = 1_000 * NANOSECOND
#: Ticks per millisecond.
MILLISECOND = 1_000 * MICROSECOND
#: Ticks per second.
SECOND = 1_000 * MILLISECOND


def picoseconds(value: float) -> int:
    """Convert a picosecond quantity to simulator ticks."""
    return int(round(value * PICOSECOND))


def nanoseconds(value: float) -> int:
    """Convert a nanosecond quantity to simulator ticks."""
    return int(round(value * NANOSECOND))


def microseconds(value: float) -> int:
    """Convert a microsecond quantity to simulator ticks."""
    return int(round(value * MICROSECOND))


def milliseconds(value: float) -> int:
    """Convert a millisecond quantity to simulator ticks."""
    return int(round(value * MILLISECOND))


def seconds(value: float) -> int:
    """Convert a second quantity to simulator ticks."""
    return int(round(value * SECOND))


def to_nanoseconds(ticks: int) -> float:
    """Convert simulator ticks to nanoseconds."""
    return ticks / NANOSECOND


def to_microseconds(ticks: int) -> float:
    """Convert simulator ticks to microseconds."""
    return ticks / MICROSECOND


def to_milliseconds(ticks: int) -> float:
    """Convert simulator ticks to milliseconds."""
    return ticks / MILLISECOND


def to_seconds(ticks: int) -> float:
    """Convert simulator ticks to seconds."""
    return ticks / SECOND


def cycles(count: float, freq_ghz: float = 3.0) -> int:
    """Convert a CPU cycle count at ``freq_ghz`` GHz into ticks.

    One cycle at 3 GHz is 1/3 ns, i.e. 333.33 ps.
    """
    if freq_ghz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_ghz}")
    return int(round(count * 1_000 / freq_ghz)) * PICOSECOND


def gbps_to_bytes_per_tick(gbps: float) -> float:
    """Convert a bandwidth in gigabits per second to bytes per tick."""
    bits_per_second = gbps * 1e9
    bytes_per_second = bits_per_second / 8.0
    return bytes_per_second / SECOND


def transfer_time(num_bytes: int, gbps: float) -> int:
    """Ticks needed to transfer ``num_bytes`` at ``gbps`` gigabits/second."""
    if gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {gbps}")
    return int(round(num_bytes / gbps_to_bytes_per_tick(gbps)))


def bytes_to_gbps(num_bytes: int, ticks: int) -> float:
    """Average bandwidth in Gbps of ``num_bytes`` moved over ``ticks``."""
    if ticks <= 0:
        return 0.0
    bytes_per_second = num_bytes * SECOND / ticks
    return bytes_per_second * 8.0 / 1e9
