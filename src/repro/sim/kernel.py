"""Discrete-event simulation kernel.

The :class:`Simulator` owns the virtual clock and the event queue.  All
hardware models (NIC, caches, cores, controllers) schedule callbacks on a
shared simulator instance.  Time is measured in integer picosecond ticks
(see :mod:`repro.sim.units`).
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Any, Callable, Optional

from .event import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised for scheduling bugs such as scheduling into the past."""


class Simulator:
    """The event loop driving a simulation.

    Typical usage::

        sim = Simulator()
        sim.schedule_at(units.microseconds(5), lambda: print("hello"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0
        self._sequence = 0
        self._queue = EventQueue()
        self._running = False
        self._events_fired = 0
        self._wall_seconds = 0.0

    @property
    def now(self) -> int:
        """Current virtual time in ticks."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def wall_seconds(self) -> float:
        """Host wall-clock time spent inside :meth:`run` so far."""
        return self._wall_seconds

    @property
    def events_per_second(self) -> float:
        """Wall-clock simulation throughput (events fired per host second).

        The quickest perf diagnostic: a regression in the hot path shows up
        here in any normal run, without a profiler.  Returns 0.0 before the
        first :meth:`run` call.
        """
        if self._wall_seconds <= 0.0:
            return 0.0
        return self._events_fired / self._wall_seconds

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule_at(
        self,
        time: int,
        callback: Callable[[], Any],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        self._sequence += 1
        event = Event(time, self._sequence, callback, name)
        self._queue.push(event)
        return event

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[], Any],
        name: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, name)

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        Returns the simulator time when the run stops.  If ``until`` is
        given, the clock is advanced to ``until`` even if the queue drains
        earlier, so periodic samplers observe a consistent end time.

        The loop operates on the queue's heap directly and drains each
        run of same-timestamp events as one batched tick: after the clock
        advances, follow-on events at the same instant fire back to back
        without re-entering the outer scheduling checks.  Ordering is
        unchanged — the heap already yields FIFO within a timestamp via
        the ``(time, sequence)`` key — only the per-event bookkeeping is
        hoisted out of the inner drain.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        fired = 0
        wall_start = time.perf_counter()
        heap = self._queue._heap
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                if not heap:
                    if until is not None and self._now < until:
                        self._now = until
                    break
                entry = heappop(heap)
                event = entry[2]
                if event.cancelled:
                    continue
                tick = entry[0]
                if until is not None and tick > until:
                    # Not due yet: put it back for the next run() call.
                    heappush(heap, entry)
                    self._now = until
                    break
                self._now = tick
                event.callback()
                fired += 1
                # Batched tick: drain the same-timestamp run.  Callbacks
                # may push new events for this instant; the heap check
                # picks those up in FIFO sequence order.
                while heap and heap[0][0] == tick:
                    if max_events is not None and fired >= max_events:
                        break
                    event = heappop(heap)[2]
                    if event.cancelled:
                        continue
                    event.callback()
                    fired += 1
        finally:
            self._events_fired += fired
            self._running = False
            self._wall_seconds += time.perf_counter() - wall_start
        return self._now

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ticks from the current time."""
        return self.run(until=self._now + duration)


class PeriodicTask:
    """Re-schedules a callback every ``period`` ticks until stopped.

    Used for the IDIO control plane (1 us / 8192 us loops), burst-counter
    resets, and statistics samplers.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        callback: Callable[[], Any],
        name: str = "",
        start_offset: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.name = name
        self._stopped = False
        first = sim.now + (period if start_offset is None else start_offset)
        self._event = sim.schedule_at(first, self._fire, name)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            self._event = self.sim.schedule_after(self.period, self._fire, self.name)

    def stop(self) -> None:
        """Stop future firings (the current one, if mid-flight, completes)."""
        self._stopped = True
        self._event.cancel()
