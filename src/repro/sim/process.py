"""Coroutine-style timed processes on the event kernel.

Agents with sequential behavior (poll, work, sleep, repeat) read more
naturally as generators than as chains of callbacks.  A process is a
generator that *yields the number of ticks to sleep*; the kernel resumes
it after that delay:

    def worker(sim):
        while True:
            do_something(sim.now)
            yield units.microseconds(1)   # sleep 1 us

    process = spawn(sim, worker(sim))
    ...
    process.stop()

The callback-based models in this package predate this helper; it is
provided (and used by examples/tests) as the ergonomic way to script
custom agents against the simulator.
"""

from __future__ import annotations

from typing import Generator

from .kernel import SimulationError, Simulator

#: The generator protocol: yield ticks-to-sleep, return to finish.
ProcessBody = Generator[int, None, None]


class Process:
    """A running coroutine process; returned by :func:`spawn`."""

    def __init__(self, sim: Simulator, body: ProcessBody, name: str = "process") -> None:
        self.sim = sim
        self.body = body
        self.name = name
        self.finished = False
        self._stopped = False

    def _step(self) -> None:
        if self._stopped or self.finished:
            return
        try:
            delay = next(self.body)
        except StopIteration:
            self.finished = True
            return
        if not isinstance(delay, int) or delay < 0:
            raise SimulationError(
                f"process {self.name!r} must yield a non-negative int delay, "
                f"got {delay!r}"
            )
        self.sim.schedule_after(max(delay, 1), self._step, self.name)

    def stop(self) -> None:
        """Stop the process; it will not be resumed again."""
        self._stopped = True
        self.body.close()


def spawn(
    sim: Simulator,
    body: ProcessBody,
    name: str = "process",
    start_delay: int = 0,
) -> Process:
    """Start a coroutine process; its first segment runs after ``start_delay``."""
    process = Process(sim, body, name)
    sim.schedule_after(start_delay, process._step, name)
    return process
