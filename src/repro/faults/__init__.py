"""Seeded, deterministic fault injection for the whole pipeline.

Declare *what goes wrong and when* as a :class:`FaultPlan` (a frozen,
picklable schedule of :class:`FaultSpec` entries plus one master seed),
hand it to :class:`~repro.harness.server.ServerConfig` via its
``fault_plan`` field, and every layer of the simulated server — NIC,
PCIe, memory, CPU — injects its faults deterministically, publishing a
typed :class:`FaultEvent` per injection on the observability bus.
``harness.*`` fault kinds drive the resilient sweep runner
(:func:`repro.harness.runner.run_sweep`) instead of the simulation.

See ``docs/api.md`` for the fault-injection guide and the
``repro faults`` CLI for the policy x intensity degradation matrix.
"""

from .events import FaultEvent
from .injectors import (
    CpuFaults,
    FaultInjectors,
    MemFaults,
    NicFaults,
    PcieFaults,
)
from .plan import (
    FAULT_KINDS,
    FAULT_LAYERS,
    FaultPlan,
    FaultSpec,
    standard_plan,
)

__all__ = [
    "CpuFaults",
    "FAULT_KINDS",
    "FAULT_LAYERS",
    "FaultEvent",
    "FaultInjectors",
    "FaultPlan",
    "FaultSpec",
    "MemFaults",
    "NicFaults",
    "PcieFaults",
    "standard_plan",
]
