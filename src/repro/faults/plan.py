"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is the whole configuration surface of the fault
subsystem: an immutable list of :class:`FaultSpec` entries plus one master
seed.  Every injector derives its private ``random.Random`` stream from
``(plan.seed, spec index)``, so the same plan replayed against the same
experiment produces byte-identical fault decisions — in-process, in a
worker process, and across hosts.  Plans ride inside
:class:`~repro.harness.server.ServerConfig` (they are frozen dataclasses
of tuples, so they pickle with the experiment), which is what lets the
process-pool runner fan out faulted sweeps without extra plumbing.

Fault kinds are namespaced by the layer that injects them::

    nic.desc_wb_jitter     extra descriptor-writeback delay (magnitude = max extra ns)
    nic.rx_drop_burst      forced RX drops at wire arrival (probability per packet)
    nic.ring_backpressure  ring slots withheld from the NIC (magnitude = slots)
    pcie.tlp_delay         extra PCIe link occupancy per DMA (magnitude = max extra ns)
    pcie.tlp_reorder       legal reorder of write TLPs inside one burst
    pcie.meta_corrupt      flipped IDIO reserved bits in the TLP header
    mem.dram_spike         transient extra DRAM latency (magnitude = extra ns)
    mem.ddio_starve        DDIO ways clamped down (magnitude = ways left)
    cpu.pmd_stall          PMD scheduled out for the window (preemption)
    harness.crash          worker raises before the run (resilience testing)
    harness.hang           worker sleeps magnitude seconds (timeout testing)

``harness.*`` kinds never touch the simulation; they exist so the
resilient sweep runner's crash/timeout handling can be driven
deterministically from a plan like every other fault.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

#: Every fault kind the injectors implement, with the meaning of
#: ``magnitude`` for each.  ``FaultSpec.validate`` rejects anything else,
#: so a typo fails at plan-construction time, not silently mid-sweep.
FAULT_KINDS: Dict[str, str] = {
    "nic.desc_wb_jitter": "max extra descriptor-writeback delay in ns",
    "nic.rx_drop_burst": "forced RX drop (probability per packet in window)",
    "nic.ring_backpressure": "RX ring slots withheld from the NIC",
    "pcie.tlp_delay": "max extra PCIe link occupancy per DMA batch in ns",
    "pcie.tlp_reorder": "reorder write TLPs within one DMA burst (legal)",
    "pcie.meta_corrupt": "flip one IDIO reserved bit in the TLP header",
    "mem.dram_spike": "extra DRAM access latency in ns while active",
    "mem.ddio_starve": "DDIO ways available while active (starved down)",
    "cpu.pmd_stall": "PMD descheduled for the active window (preemption)",
    "harness.crash": "worker crashes before the run (magnitude = crashing attempts; 0 = all)",
    "harness.hang": "worker process sleeps this many wall seconds",
}

#: The four simulated layers, in pipeline order (the degradation matrix
#: iterates these).  ``harness`` is deliberately absent: it is not a
#: simulated fault surface.
FAULT_LAYERS: Tuple[str, ...] = ("nic", "pcie", "mem", "cpu")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what to inject, when, and how hard.

    The window is ``[start_us, start_us + duration_us)`` in simulated
    time; ``duration_us=None`` keeps the fault active until the end of
    the run, and ``period_us`` repeats the window every period (a bursty
    fault).  ``probability`` is the per-opportunity chance *inside* the
    window for event-granular faults (drops, delays, corruption);
    window-granular faults (stalls, starvation, spikes) apply it once
    per window occurrence, so ``plan.scaled(0.0)`` disables every fault.
    """

    kind: str
    start_us: float = 0.0
    duration_us: Optional[float] = None
    period_us: Optional[float] = None
    probability: float = 1.0
    magnitude: float = 0.0

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.start_us < 0:
            raise ValueError(f"start_us must be >= 0, got {self.start_us}")
        if self.duration_us is not None and self.duration_us <= 0:
            raise ValueError(f"duration_us must be positive, got {self.duration_us}")
        if self.period_us is not None:
            if self.duration_us is None:
                raise ValueError("period_us requires duration_us")
            if self.period_us <= self.duration_us:
                raise ValueError(
                    f"period_us ({self.period_us}) must exceed duration_us "
                    f"({self.duration_us})"
                )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.magnitude < 0:
            raise ValueError(f"magnitude must be >= 0, got {self.magnitude}")

    @property
    def layer(self) -> str:
        """The injecting layer (``"nic"``, ``"pcie"``, ``"mem"``, ...)."""
        return self.kind.split(".", 1)[0]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults for one experiment."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Tolerate list input at the construction site; store a tuple so
        # the plan stays hashable/frozen/picklable.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            spec.validate()

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def specs_for(self, layer: str) -> Tuple[Tuple[int, FaultSpec], ...]:
        """(index, spec) pairs for one layer; the index salts the RNG."""
        return tuple(
            (i, s) for i, s in enumerate(self.specs) if s.layer == layer
        )

    def rng_seed(self, spec_index: int) -> int:
        """The derived integer seed for one spec's private RNG stream."""
        return self.seed * 1_000_003 + spec_index

    def scaled(self, intensity: float) -> "FaultPlan":
        """A copy with every probability scaled by ``intensity`` (capped
        at 1.0).  The degradation matrix sweeps this knob."""
        if intensity < 0:
            raise ValueError(f"intensity must be >= 0, got {intensity}")
        return FaultPlan(
            specs=tuple(
                replace(s, probability=min(1.0, s.probability * intensity))
                for s in self.specs
            ),
            seed=self.seed,
        )

    def fingerprint_key(self) -> Tuple:
        """A deterministic tuple identifying this plan (for digests)."""
        return (
            self.seed,
            tuple(
                (s.kind, s.start_us, s.duration_us, s.period_us,
                 s.probability, s.magnitude)
                for s in self.specs
            ),
        )


#: Reference fault schedules per layer, used by the ``repro faults``
#: degradation matrix and the smoke tests.  Magnitudes are sized for the
#: reference burst experiment (one ring-sized burst at tens of Gbps over
#: a few hundred microseconds).
_STANDARD_SPECS: Dict[str, Tuple[FaultSpec, ...]] = {
    "nic": (
        FaultSpec("nic.desc_wb_jitter", probability=0.5, magnitude=2_000.0),
        FaultSpec("nic.rx_drop_burst", start_us=30.0, duration_us=20.0,
                  period_us=100.0, probability=0.2),
        FaultSpec("nic.ring_backpressure", start_us=50.0, duration_us=25.0,
                  period_us=150.0, magnitude=16.0),
    ),
    "pcie": (
        FaultSpec("pcie.tlp_delay", probability=0.25, magnitude=1_000.0),
        FaultSpec("pcie.tlp_reorder", probability=0.25),
        FaultSpec("pcie.meta_corrupt", probability=0.05),
    ),
    "mem": (
        FaultSpec("mem.dram_spike", start_us=20.0, duration_us=40.0,
                  period_us=120.0, magnitude=200.0),
        FaultSpec("mem.ddio_starve", start_us=40.0, duration_us=60.0,
                  period_us=200.0, magnitude=1.0),
    ),
    "cpu": (
        FaultSpec("cpu.pmd_stall", start_us=60.0, duration_us=15.0,
                  period_us=140.0),
    ),
}


def standard_plan(layer: str, intensity: float = 1.0, seed: int = 0) -> FaultPlan:
    """The reference :class:`FaultPlan` for one fault layer.

    ``layer`` is one of :data:`FAULT_LAYERS` (or ``"all"`` for every
    layer's specs combined); ``intensity`` scales the per-event fault
    probabilities, which is the x-axis of the degradation matrix.
    """
    if layer == "all":
        specs: Tuple[FaultSpec, ...] = tuple(
            s for lay in FAULT_LAYERS for s in _STANDARD_SPECS[lay]
        )
    else:
        try:
            specs = _STANDARD_SPECS[layer]
        except KeyError:
            raise ValueError(
                f"unknown fault layer {layer!r}; choose from "
                f"{FAULT_LAYERS + ('all',)}"
            ) from None
    return FaultPlan(specs=specs, seed=seed).scaled(intensity)
