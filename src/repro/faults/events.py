"""Typed fault events published on the observability bus.

Every injected fault — a delayed writeback, a dropped packet, a flipped
metadata bit — publishes exactly one :class:`FaultEvent` on the
simulation's :class:`~repro.obs.bus.EventBus`.  The TraceRecorder renders
them as instant events, the sanitizer uses them to widen its tolerances,
and the harness counts them into ``ExperimentSummary.fault_counts`` so a
degradation matrix can report how much adversity each cell actually saw.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One injected fault occurrence.

    ``layer`` is the injecting subsystem (``"nic"``, ``"pcie"``,
    ``"mem"``, ``"cpu"``), ``kind`` the full spec kind
    (e.g. ``"nic.rx_drop_burst"``), ``now`` the simulated tick, and
    ``detail`` a short human-readable note (magnitude applied, address
    affected, ...).
    """

    layer: str
    kind: str
    now: int
    detail: str


__all__ = ["FaultEvent"]
