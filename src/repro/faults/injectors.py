"""Per-layer fault injectors driven by a :class:`~repro.faults.plan.FaultPlan`.

Each simulated layer gets one injector object holding the layer's parsed
fault windows and private RNG streams.  The pipeline components keep a
``self.faults`` attribute that is ``None`` by default, so the hot path
pays exactly one attribute load + ``is None`` test when no plan is
installed (the same zero-cost pattern as hop recording).  When a plan is
present, :class:`FaultInjectors` builds only the injectors whose layers
actually have specs.

Determinism contract: every random decision draws either from a
``random.Random`` seeded with ``plan.rng_seed(spec_index)`` (event-order
streams: the simulator's event order is itself deterministic) or from a
per-occurrence derived seed (window gates: independent of query order).
The same plan against the same experiment therefore produces identical
fault decisions in-process, in a pool worker, and across hosts.

Every injected fault publishes one :class:`~repro.faults.events.FaultEvent`
on the server's EventBus — window-granular faults (stalls, starvation,
spikes) publish once per window occurrence, event-granular faults (drops,
jitter, corruption) once per affected event.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..obs.bus import EventBus
from ..sim import units
from .events import FaultEvent
from .plan import FaultPlan, FaultSpec

#: Stand-in for ``duration_us=None`` (active until the end of the run) —
#: far beyond any reachable tick, but safe to add to without overflow.
_FOREVER = 1 << 62


class _Window:
    """One :class:`FaultSpec` compiled to integer-tick schedule + RNG.

    ``occurrence(now)`` maps a tick to the 0-based index of the active
    window occurrence (always 0 for one-shot windows) or ``-1`` when the
    fault is dormant.  ``gated(occ)`` applies the spec's probability once
    per occurrence, with a draw derived from ``(seed, occ)`` so the
    answer does not depend on which component asked first.
    """

    __slots__ = (
        "kind",
        "magnitude",
        "probability",
        "rng",
        "start",
        "span",
        "period",
        "_seed",
        "_gate",
        "_noted",
    )

    def __init__(self, spec: FaultSpec, seed: int) -> None:
        self.kind = spec.kind
        self.magnitude = spec.magnitude
        self.probability = spec.probability
        #: Event-order stream for per-event draws (drop? how much jitter?).
        self.rng = random.Random(seed)
        self.start = units.microseconds(spec.start_us)
        self.span = (
            _FOREVER
            if spec.duration_us is None
            else max(1, units.microseconds(spec.duration_us))
        )
        self.period = (
            None if spec.period_us is None else units.microseconds(spec.period_us)
        )
        self._seed = seed
        self._gate: Dict[int, bool] = {}
        self._noted: Dict[Hashable, bool] = {}

    def occurrence(self, now: int) -> int:
        if now < self.start:
            return -1
        if self.period is None:
            return 0 if now - self.start < self.span else -1
        if (now - self.start) % self.period >= self.span:
            return -1
        return (now - self.start) // self.period

    def occurrence_start(self, occ: int) -> int:
        return self.start + (self.period or 0) * occ

    def occurrence_end(self, occ: int) -> int:
        return self.occurrence_start(occ) + self.span

    def in_window(self, now: int) -> bool:
        return self.occurrence(now) >= 0

    def gated(self, occ: int) -> bool:
        """Whether occurrence ``occ`` fires at all (probability gate)."""
        if self.probability >= 1.0:
            return True
        hit = self._gate.get(occ)
        if hit is None:
            draw = random.Random((self._seed << 17) ^ (occ + 1)).random()
            hit = draw < self.probability
            self._gate[occ] = hit
        return hit

    def active(self, now: int) -> int:
        """Gated occurrence index at ``now`` (-1 when dormant/gated off)."""
        occ = self.occurrence(now)
        if occ >= 0 and self.gated(occ):
            return occ
        return -1


def _windows(plan: FaultPlan, kind: str) -> List[_Window]:
    return [
        _Window(spec, plan.rng_seed(i))
        for i, spec in enumerate(plan.specs)
        if spec.kind == kind
    ]


class _Injector:
    """Shared FaultEvent emission (cached live-subscriber pattern)."""

    __slots__ = ("_subs",)

    layer = "?"

    def __init__(self, bus: EventBus) -> None:
        self._subs = bus.live(FaultEvent)

    def _emit(self, kind: str, now: int, detail: str) -> None:
        subs = self._subs
        if subs:
            event = FaultEvent(self.layer, kind, now, detail)
            for fn in subs:
                fn(event)

    def _emit_once(self, w: _Window, key: Hashable, now: int, detail: str) -> None:
        """Emit one event per window occurrence (``key`` includes occ)."""
        if key not in w._noted:
            w._noted[key] = True
            self._emit(w.kind, now, detail)


class NicFaults(_Injector):
    """NIC-layer hooks, called from ``NIC.receive`` and the descriptor
    writeback path."""

    __slots__ = ("_jitter", "_drops", "_backpressure")

    layer = "nic"

    def __init__(self, plan: FaultPlan, bus: EventBus) -> None:
        super().__init__(bus)
        self._jitter = _windows(plan, "nic.desc_wb_jitter")
        self._drops = _windows(plan, "nic.rx_drop_burst")
        self._backpressure = _windows(plan, "nic.ring_backpressure")

    def wb_extra_ticks(self, now: int) -> int:
        """Extra descriptor-writeback delay (ticks) for one descriptor."""
        extra = 0
        for w in self._jitter:
            if w.in_window(now) and w.rng.random() < w.probability:
                jitter = units.nanoseconds(w.rng.random() * w.magnitude)
                if jitter > 0:
                    extra += jitter
                    self._emit(
                        w.kind,
                        now,
                        f"+{units.to_nanoseconds(jitter):.0f}ns writeback delay",
                    )
        return extra

    def drop_rx(self, now: int) -> bool:
        """Whether to force-drop the packet arriving at ``now``."""
        for w in self._drops:
            if w.in_window(now) and w.rng.random() < w.probability:
                self._emit(w.kind, now, "forced RX drop")
                return True
        return False

    def backpressure_drop(self, free_slots: int, now: int) -> bool:
        """Whether withheld ring slots turn this arrival into a drop."""
        held = 0
        for w in self._backpressure:
            if w.active(now) >= 0:
                held += int(w.magnitude)
        if held and free_slots <= held:
            self._emit(
                "nic.ring_backpressure",
                now,
                f"{held} ring slots withheld ({free_slots} free)",
            )
            return True
        return False


class PcieFaults(_Injector):
    """PCIe-layer hooks, called from the DMA engine (link timing) and the
    root complex (per-burst TLP order, per-line header words)."""

    __slots__ = ("_delay", "_reorder", "_corrupt", "_meta_bits", "data_faults")

    layer = "pcie"

    def __init__(self, plan: FaultPlan, bus: EventBus) -> None:
        super().__init__(bus)
        # Imported here, not at module level: obs -> faults -> pcie ->
        # mem -> obs would otherwise be a circular import chain.
        from ..pcie.tlp import IDIO_METADATA_BITS

        self._delay = _windows(plan, "pcie.tlp_delay")
        self._reorder = _windows(plan, "pcie.tlp_reorder")
        self._corrupt = _windows(plan, "pcie.meta_corrupt")
        self._meta_bits = IDIO_METADATA_BITS
        #: True when the root complex must take the per-line slow path.
        self.data_faults = bool(self._reorder or self._corrupt)

    def link_extra_ticks(self, now: int, num_lines: int) -> int:
        """Extra link occupancy (ticks) charged to one DMA batch."""
        extra = 0
        for w in self._delay:
            if w.in_window(now) and w.rng.random() < w.probability:
                stall = units.nanoseconds(w.rng.random() * w.magnitude)
                if stall > 0:
                    extra += stall
                    self._emit(
                        w.kind,
                        now,
                        f"+{units.to_nanoseconds(stall):.0f}ns link occupancy "
                        f"({num_lines}-line batch)",
                    )
        return extra

    def permute_batch(
        self,
        addrs: Sequence[int],
        tags: Optional[Sequence],
        now: int,
    ) -> Tuple[Sequence[int], Optional[Sequence]]:
        """Legally reorder the write TLPs of one burst (same tick, same
        link slot — only cache-fill order changes)."""
        for w in self._reorder:
            if (
                len(addrs) > 1
                and w.in_window(now)
                and w.rng.random() < w.probability
            ):
                order = list(range(len(addrs)))
                w.rng.shuffle(order)
                addrs = [addrs[i] for i in order]
                if tags is not None:
                    tags = [tags[i] for i in order]
                self._emit(w.kind, now, f"shuffled {len(order)}-TLP burst")
        return addrs, tags

    def corrupt_word(self, word: int, now: int) -> int:
        """Possibly flip one IDIO reserved bit in an encoded TLP header."""
        for w in self._corrupt:
            if w.in_window(now) and w.rng.random() < w.probability:
                bit = w.rng.choice(self._meta_bits)
                word ^= 1 << bit
                self._emit(w.kind, now, f"flipped TLP header bit {bit}")
        return word


class MemFaults(_Injector):
    """Memory-layer hooks: DRAM latency spikes (pulled per access) and
    DDIO-way starvation (pushed by a self-scheduling sim task)."""

    __slots__ = ("_spikes", "_starve")

    layer = "mem"

    def __init__(self, plan: FaultPlan, bus: EventBus) -> None:
        super().__init__(bus)
        self._spikes = _windows(plan, "mem.dram_spike")
        self._starve = _windows(plan, "mem.ddio_starve")

    def dram_extra_ticks(self, now: int) -> int:
        """Extra latency (ticks) for one DRAM access at ``now``."""
        extra = 0
        for w in self._spikes:
            occ = w.active(now)
            if occ >= 0:
                extra += units.nanoseconds(w.magnitude)
                self._emit_once(
                    w, occ, now, f"+{w.magnitude:.0f}ns DRAM latency window"
                )
        return extra

    def schedule_starvation(self, sim, llc) -> None:
        """Install one :class:`DdioStarveTask` per starvation window."""
        for w in self._starve:
            DdioStarveTask(sim, llc, w, self)


class DdioStarveTask:
    """Self-scheduling simulator task that clamps the LLC's DDIO ways
    inside each fault window and restores them at the window end.

    Resident lines are untouched (``set_ddio_ways`` only rebuilds the
    allocation masks), which models the real reprogramming of
    ``IIO LLC WAYS`` — future inbound DMA fills contend for fewer ways.
    """

    __slots__ = ("_sim", "_llc", "_window", "_owner", "_orig", "_starved")

    def __init__(self, sim, llc, window: _Window, owner: MemFaults) -> None:
        self._sim = sim
        self._llc = llc
        self._window = window
        self._owner = owner
        self._orig = llc.ddio_ways
        # magnitude = ways left while starved; clamp to a legal value.
        self._starved = max(1, min(int(window.magnitude) or 1, self._orig))
        first = max(window.occurrence_start(0), sim.now)
        sim.schedule_at(first, self._begin, "fault-ddio-starve")

    def _begin(self) -> None:
        now = self._sim.now
        w = self._window
        occ = w.occurrence(now)
        if occ < 0:
            return
        if w.gated(occ):
            self._llc.set_ddio_ways(self._starved)
            self._owner._emit(
                w.kind, now, f"DDIO ways {self._orig} -> {self._starved}"
            )
            if w.span < _FOREVER:
                self._sim.schedule_at(
                    w.occurrence_end(occ), self._end, "fault-ddio-restore"
                )
            return
        self._schedule_next(occ)

    def _end(self) -> None:
        self._llc.set_ddio_ways(self._orig)
        w = self._window
        occ = w.occurrence(self._sim.now - 1)
        self._schedule_next(occ if occ >= 0 else 0)

    def _schedule_next(self, occ: int) -> None:
        if self._window.period is None:
            return
        self._sim.schedule_at(
            self._window.occurrence_start(occ + 1), self._begin, "fault-ddio-starve"
        )


class CpuFaults(_Injector):
    """CPU-layer hook: PMD stall windows (scheduler preemption).  The
    poll-mode driver asks before each poll whether it is descheduled."""

    __slots__ = ("_stalls",)

    layer = "cpu"

    def __init__(self, plan: FaultPlan, bus: EventBus) -> None:
        super().__init__(bus)
        self._stalls = _windows(plan, "cpu.pmd_stall")

    def stall_until(self, now: int, core: int) -> int:
        """Tick at which a stalled PMD core may poll again (``<= now``
        means it is not stalled)."""
        resume = now
        for w in self._stalls:
            occ = w.active(now)
            if occ >= 0:
                end = w.occurrence_end(occ)
                if end > resume:
                    resume = end
                self._emit_once(
                    w,
                    (occ, core),
                    now,
                    f"core {core} PMD stalled for "
                    f"{units.to_microseconds(end - now):.1f}us",
                )
        return resume


class FaultInjectors:
    """Every per-layer injector for one server, built from one plan.

    Layers whose plan has no specs stay ``None`` so components keep their
    zero-cost ``faults is None`` fast path even inside a faulted run.
    """

    __slots__ = ("plan", "nic", "pcie", "mem", "cpu")

    def __init__(self, plan: FaultPlan, bus: EventBus) -> None:
        self.plan = plan
        self.nic = NicFaults(plan, bus) if plan.specs_for("nic") else None
        self.pcie = PcieFaults(plan, bus) if plan.specs_for("pcie") else None
        self.mem = MemFaults(plan, bus) if plan.specs_for("mem") else None
        self.cpu = CpuFaults(plan, bus) if plan.specs_for("cpu") else None

    def schedule_window_tasks(self, sim, llc) -> None:
        """Install the push-style window tasks (DDIO starvation)."""
        if self.mem is not None:
            self.mem.schedule_starvation(sim, llc)


__all__ = [
    "CpuFaults",
    "DdioStarveTask",
    "FaultInjectors",
    "MemFaults",
    "NicFaults",
    "PcieFaults",
]
