"""Trace export: turn event logs into CSV for external analysis/plotting.

The simulator records timestamped event streams (writebacks, DMA
transactions, DRAM traffic).  These helpers bin selected streams on a
common time axis and write a CSV a user can load into pandas/gnuplot to
re-plot any of the paper's timelines.
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional, Sequence, TextIO

from ..mem.stats import StatsBundle
from ..sim import units

#: The streams the paper's timeline figures plot.
DEFAULT_STREAMS = (
    "pcie_writes",
    "mlc_writebacks",
    "llc_writebacks",
    "dram_reads",
    "dram_writes",
    "mlc_invalidations",
    "self_invalidations",
)


def binned_rows(
    stats: StatsBundle,
    streams: Sequence[str],
    start: int,
    end: int,
    bin_ticks: int = units.microseconds(10),
) -> List[List[float]]:
    """Rows of ``[time_us, rate_mtps_per_stream...]`` on a shared axis."""
    if end <= start:
        raise ValueError("end must be after start")
    series = {
        stream: dict(stats.events.mtps_series(stream, bin_ticks, start, end))
        for stream in streams
    }
    num_bins = -(-(end - start) // bin_ticks)
    rows: List[List[float]] = []
    for i in range(num_bins):
        t_us = units.to_microseconds(start + i * bin_ticks)
        rows.append([t_us] + [series[s].get(t_us, 0.0) for s in streams])
    return rows


def write_csv(
    stats: StatsBundle,
    out: TextIO,
    start: int,
    end: int,
    streams: Optional[Sequence[str]] = None,
    bin_ticks: int = units.microseconds(10),
) -> int:
    """Write binned rates as CSV; returns the number of data rows."""
    streams = list(streams or DEFAULT_STREAMS)
    writer = csv.writer(out)
    writer.writerow(["time_us"] + [f"{s}_mtps" for s in streams])
    rows = binned_rows(stats, streams, start, end, bin_ticks)
    for row in rows:
        writer.writerow([f"{v:.6g}" for v in row])
    return len(rows)


def export_csv(
    stats: StatsBundle,
    path: str,
    start: int,
    end: int,
    streams: Optional[Sequence[str]] = None,
    bin_ticks: int = units.microseconds(10),
) -> int:
    """Write binned rates to ``path``; returns the number of data rows."""
    with open(path, "w", newline="") as fh:
        return write_csv(stats, fh, start, end, streams, bin_ticks)


def to_csv_string(
    stats: StatsBundle,
    start: int,
    end: int,
    streams: Optional[Sequence[str]] = None,
    bin_ticks: int = units.microseconds(10),
) -> str:
    """The CSV as a string (used by the CLI's ``--csv -``)."""
    buf = io.StringIO()
    write_csv(stats, buf, start, end, streams, bin_ticks)
    return buf.getvalue()
