"""Extension and ablation experiments beyond the paper's figures.

DESIGN.md §6 lists the follow-on studies this reproduction adds on top of
the published evaluation:

* per-mechanism ablation vs the related-work IAT baseline;
* the §VII future-work regulated (CPU-pointer-following) prefetcher;
* the §II-B buffer-recycling-mode comparison;
* rxBurstTHR sensitivity (the paper only sweeps mlcTHR);
* ring-size sweep under IDIO (the paper sweeps it only for DDIO, Fig. 4);
* the inclusive-LLC counterfactual (DMA bloating requires non-inclusion).

Each function mirrors the ``figures`` module: it declares its sweep,
fans it out through :func:`repro.harness.runner.run_named_experiments`
(``jobs > 1`` rides the warm session pool shared with the figure
sweeps — see ``docs/performance.md``), and returns a
:class:`~repro.harness.figures.FigureReport` over summaries.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core import policies
from ..sim import units
from .experiment import Experiment
from .figures import FigureReport, _bursty_experiment, _us
from .report import format_table
from .runner import run_named_experiments
from .server import ServerConfig


def ext_baselines(
    burst_rates: Sequence[float] = (100.0, 25.0),
    ring_size: int = 1024,
    jobs: int = 1,
) -> FigureReport:
    """DDIO vs IAT (dynamic DDIO ways) vs IDIO vs regulated IDIO.

    Shows the paper's S1 argument quantitatively: way-resizing alone trims
    the DMA leak but cannot remove dead-buffer MLC writebacks or use the
    MLC, while the pointer-following prefetcher removes the MLC-flooding
    limitation IDIO's FSM merely mitigates.
    """
    names = ("ddio", "iat", "idio", "idio-regulated")
    sweep: List[Tuple[str, Experiment]] = []
    for rate in burst_rates:
        for name in names:
            policy = policies.policy_by_name(name)
            exp = _bursty_experiment(
                f"ext-{name}-{rate:g}g", rate, ring_size
            ).with_policy(policy)
            sweep.append((f"{name}@{rate:g}g", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for rate in burst_rates:
        for name in names:
            result = results[f"{name}@{rate:g}g"]
            rows.append(
                {
                    "policy": name,
                    "rate_gbps": rate,
                    "mlc_wb": result.window.mlc_writebacks,
                    "llc_wb": result.window.llc_writebacks,
                    "dram_wr": result.window.dram_writes,
                    "burst_time_us": _us(result.burst_processing_time),
                    "p99_us": (result.p99_ns or 0) / 1000.0,
                }
            )

    table = format_table(
        ["policy", "rate", "MLC WB", "LLC WB", "DRAM wr", "burst us", "p99 us"],
        [
            [r["policy"], r["rate_gbps"], r["mlc_wb"], r["llc_wb"], r["dram_wr"],
             r["burst_time_us"], r["p99_us"]]
            for r in rows
        ],
        title="Extension — baseline ladder: DDIO / IAT / IDIO / regulated IDIO",
    )
    return FigureReport("ext-baselines", "Baseline ladder", rows, table, results)


def ext_recycling_modes(
    burst_rate_gbps: float = 50.0,
    ring_size: int = 512,
    policy_names: Sequence[str] = ("ddio", "idio"),
    jobs: int = 1,
) -> FigureReport:
    """The §II-B recycling modes under DDIO and IDIO.

    Run-to-completion (DPDK) is the paper's focus; the copy mode (Linux
    stack) doubles core-side memory traffic, and the re-allocate mode
    doubles the live DMA footprint.
    """
    modes = ("run_to_completion", "copy", "reallocate")
    sweep: List[Tuple[str, Experiment]] = []
    for policy_name in policy_names:
        for mode in modes:
            exp = Experiment(
                name=f"ext-recycle-{policy_name}-{mode}",
                server=ServerConfig(
                    policy=policies.policy_by_name(policy_name),
                    app="touchdrop",
                    ring_size=ring_size,
                    recycle_mode=mode,
                ),
                traffic="bursty",
                burst_rate_gbps=burst_rate_gbps,
            )
            sweep.append((f"{policy_name}/{mode}", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for policy_name in policy_names:
        for mode in modes:
            result = results[f"{policy_name}/{mode}"]
            rows.append(
                {
                    "policy": policy_name,
                    "mode": mode,
                    "mlc_wb": result.window.mlc_writebacks,
                    "llc_wb": result.window.llc_writebacks,
                    "dram_wr": result.window.dram_writes,
                    "core_accesses": sum(result.core_mem_accesses),
                    "burst_time_us": _us(result.burst_processing_time),
                    "p99_us": (result.p99_ns or 0) / 1000.0,
                }
            )

    table = format_table(
        ["policy", "recycle mode", "MLC WB", "LLC WB", "DRAM wr",
         "core accesses", "burst us", "p99 us"],
        [
            [r["policy"], r["mode"], r["mlc_wb"], r["llc_wb"], r["dram_wr"],
             r["core_accesses"], r["burst_time_us"], r["p99_us"]]
            for r in rows
        ],
        title="Extension — §II-B buffer recycling modes",
    )
    return FigureReport("ext-recycling", "Recycling modes", rows, table, results)


def ext_burst_threshold(
    thresholds_gbps: Sequence[float] = (2.0, 5.0, 10.0, 20.0, 50.0),
    burst_rate_gbps: float = 100.0,
    ring_size: int = 1024,
    jobs: int = 1,
) -> FigureReport:
    """rxBurstTHR sensitivity (the paper fixes it at 10 Gbps)."""
    sweep: List[Tuple[str, Experiment]] = [
        ("ddio", _bursty_experiment("ext-thr-ddio", burst_rate_gbps, ring_size))
    ]
    for thr in thresholds_gbps:
        policy = policies.idio().with_burst_threshold(thr)
        exp = _bursty_experiment(
            f"ext-thr-{thr:g}", burst_rate_gbps, ring_size
        ).with_policy(policy)
        sweep.append((f"thr{thr:g}", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    baseline = results["ddio"]
    rows: List[Dict[str, object]] = []
    for thr in thresholds_gbps:
        result = results[f"thr{thr:g}"]
        normalized = result.normalized_to(baseline)
        rows.append(
            {
                "rx_burst_thr_gbps": thr,
                "bursts_detected": result.bursts_detected,
                **normalized,
            }
        )

    table = format_table(
        ["rxBurstTHR (Gbps)", "bursts detected", "MLC WB", "LLC WB", "DRAM wr", "Exe time"],
        [
            [r["rx_burst_thr_gbps"], r["bursts_detected"], r.get("mlc_writebacks"),
             r.get("llc_writebacks"), r.get("dram_writes"), r.get("exe_time")]
            for r in rows
        ],
        title="Extension — rxBurstTHR sweep (ratios vs DDIO)",
    )
    return FigureReport("ext-burstthr", "rxBurstTHR sweep", rows, table, results)


def ext_ring_sweep(
    ring_sizes: Sequence[int] = (256, 512, 1024, 2048),
    burst_rate_gbps: float = 25.0,
    jobs: int = 1,
) -> FigureReport:
    """Ring-size sweep under IDIO (Fig. 4 swept it only for DDIO)."""
    sweep: List[Tuple[str, Experiment]] = []
    for ring in ring_sizes:
        for name in ("ddio", "idio"):
            policy = policies.policy_by_name(name)
            exp = _bursty_experiment(
                f"ext-ring{ring}-{name}", burst_rate_gbps, ring
            ).with_policy(policy)
            sweep.append((f"{name}@ring{ring}", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for ring in ring_sizes:
        for name in ("ddio", "idio"):
            result = results[f"{name}@ring{ring}"]
            rows.append(
                {
                    "ring": ring,
                    "policy": name,
                    "mlc_wb": result.window.mlc_writebacks,
                    "llc_wb": result.window.llc_writebacks,
                    "dram_wr": result.window.dram_writes,
                    "burst_time_us": _us(result.burst_processing_time),
                }
            )

    table = format_table(
        ["ring", "policy", "MLC WB", "LLC WB", "DRAM wr", "burst us"],
        [
            [r["ring"], r["policy"], r["mlc_wb"], r["llc_wb"], r["dram_wr"],
             r["burst_time_us"]]
            for r in rows
        ],
        title="Extension — ring-size sweep, DDIO vs IDIO",
    )
    return FigureReport("ext-ring", "Ring-size sweep", rows, table, results)


def ext_traffic_realism(
    rate_gbps_per_nf: float = 8.0,
    imix_rate_gbps_per_nf: float = 2.0,
    duration_us: float = 1500.0,
    ring_size: int = 1024,
    jobs: int = 1,
) -> FigureReport:
    """IDIO under stochastic traffic: Poisson arrivals and IMIX sizes.

    The paper evaluates perfectly steady and perfectly periodic-burst
    traffic.  Real links carry neither: Poisson arrivals add queueing
    variance, and the IMIX size mix makes most packets header-dominated.
    This extension checks that IDIO's benefits survive both.

    IMIX gets its own (lower) bit rate: the cores are packet-rate bound,
    and IMIX's ~362 B average frame reaches the per-core pps limit at a
    fraction of the MTU-frame bit rate.
    """
    kinds = ("steady", "poisson", "imix")
    sweep: List[Tuple[str, Experiment]] = []
    for traffic in kinds:
        for name in ("ddio", "idio"):
            rate = imix_rate_gbps_per_nf if traffic == "imix" else rate_gbps_per_nf
            exp = Experiment(
                name=f"ext-traffic-{traffic}-{name}",
                server=ServerConfig(
                    policy=policies.policy_by_name(name),
                    app="touchdrop",
                    ring_size=ring_size,
                ),
                traffic=traffic,
                steady_rate_gbps_per_nf=rate,
                steady_duration=units.microseconds(duration_us),
            )
            sweep.append((f"{traffic}/{name}", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for traffic in kinds:
        for name in ("ddio", "idio"):
            result = results[f"{traffic}/{name}"]
            rows.append(
                {
                    "traffic": traffic,
                    "policy": name,
                    "rx": result.rx_packets,
                    "mlc_wb": result.window.mlc_writebacks,
                    "llc_wb": result.window.llc_writebacks,
                    "p99_us": (result.p99_ns or 0) / 1000.0,
                }
            )

    table = format_table(
        ["traffic", "policy", "RX pkts", "MLC WB", "LLC WB", "p99 us"],
        [
            [r["traffic"], r["policy"], r["rx"], r["mlc_wb"], r["llc_wb"], r["p99_us"]]
            for r in rows
        ],
        title="Extension — stochastic traffic (Poisson arrivals, IMIX sizes)",
    )
    return FigureReport("ext-traffic", "Traffic realism", rows, table, results)


def ext_mixed_deployment(
    burst_rate_gbps: float = 50.0,
    ring_size: int = 512,
    packet_bytes: int = 1024,
    jobs: int = 1,
) -> FigureReport:
    """Heterogeneous deployment: a class-0 and a class-1 NF share the LLC.

    Core 0 runs TouchDrop (class 0: payload processed promptly); core 1
    runs the header-only firewall variant (class 1: payload rarely used).
    Under IDIO the class-1 payload bypasses the cache hierarchy while the
    class-0 neighbor keeps its MLC steering — the per-flow differentiation
    that motivates carrying the DSCP class in the TLP bits (§V-A).
    """
    sweep: List[Tuple[str, Experiment]] = []
    for name in ("ddio", "idio"):
        exp = Experiment(
            name=f"ext-mixed-{name}",
            server=ServerConfig(
                policy=policies.policy_by_name(name),
                apps=["touchdrop", "l2fwd-payload-drop"],
                ring_size=ring_size,
                packet_bytes=packet_bytes,
            ),
            traffic="bursty",
            burst_rate_gbps=burst_rate_gbps,
        )
        sweep.append((name, exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for name in ("ddio", "idio"):
        result = results[name]
        rows.append(
            {
                "policy": name,
                "direct_dram_wr": result.counters.get("direct_dram_writes", 0),
                "mlc_wb": result.window.mlc_writebacks,
                "llc_wb": result.window.llc_writebacks,
                "touchdrop_avg_us": result.per_core_mean_latency_us[0],
                "firewall_avg_us": result.per_core_mean_latency_us[1],
            }
        )

    table = format_table(
        ["policy", "direct DRAM wr", "MLC WB", "LLC WB",
         "touchdrop avg us", "firewall avg us"],
        [
            [r["policy"], r["direct_dram_wr"], r["mlc_wb"], r["llc_wb"],
             r["touchdrop_avg_us"], r["firewall_avg_us"]]
            for r in rows
        ],
        title="Extension — mixed class-0/class-1 deployment",
    )
    return FigureReport("ext-mixed", "Mixed deployment", rows, table, results)


def ext_cachedirector(
    burst_rate_gbps: float = 25.0,
    ring_size: int = 1024,
    packet_bytes: int = 1024,
    llc_slices: int = 8,
    jobs: int = 1,
) -> FigureReport:
    """CacheDirector baseline on a sliced (NUCA) LLC, vs DDIO and IDIO.

    Related work [14] steers packet headers to the LLC slice next to the
    consuming core.  On the same NUCA topology we compare plain DDIO,
    CacheDirector, and IDIO running the shallow L2Fwd NF: slice pinning
    trims header access latency but leaves every writeback pathology in
    place — the paper's argument for finer-grained control.
    """
    names = ("ddio", "cachedirector", "idio")
    sweep: List[Tuple[str, Experiment]] = []
    for name in names:
        exp = Experiment(
            name=f"ext-cd-{name}",
            server=ServerConfig(
                policy=policies.policy_by_name(name),
                app="l2fwd",
                ring_size=ring_size,
                packet_bytes=packet_bytes,
                llc_slices=llc_slices,
            ),
            traffic="bursty",
            burst_rate_gbps=burst_rate_gbps,
        )
        sweep.append((name, exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for name in names:
        result = results[name]
        rows.append(
            {
                "policy": name,
                "p50_us": (result.p50_ns or 0) / 1000.0,
                "p99_us": (result.p99_ns or 0) / 1000.0,
                "mlc_wb": result.window.mlc_writebacks,
                "llc_wb": result.window.llc_writebacks,
                "headers_steered": result.headers_steered,
            }
        )

    table = format_table(
        ["policy", "p50 us", "p99 us", "MLC WB", "LLC WB", "headers steered"],
        [
            [r["policy"], r["p50_us"], r["p99_us"], r["mlc_wb"], r["llc_wb"],
             r["headers_steered"]]
            for r in rows
        ],
        title=f"Extension — CacheDirector on a {llc_slices}-slice NUCA LLC (L2Fwd)",
    )
    return FigureReport("ext-cachedirector", "CacheDirector baseline", rows, table, results)


def ext_saturation(
    rates_gbps: Sequence[float] = (10.0, 12.0, 14.0, 16.0, 20.0),
    ring_size: int = 256,
    duration_us: float = 4000.0,
    policy_names: Sequence[str] = ("ddio", "idio"),
    jobs: int = 1,
) -> FigureReport:
    """Per-core saturation sweep under steady load.

    §VII observes packet drops above ~12 Gbps per core.  Because IDIO
    shortens per-packet processing (MLC-resident data), it sustains a
    higher lossless rate than DDIO — a capacity benefit the paper implies
    but does not plot.  This sweep measures the drop rate per steady load
    level for each policy.

    The defaults use a 256-entry ring and a 4 ms window so that a
    persistent arrival/service imbalance actually overflows the ring
    within the measurement (a 1024-entry ring absorbs several ms of
    mild overload without dropping, hiding the onset).
    """
    sweep: List[Tuple[str, Experiment]] = []
    for policy_name in policy_names:
        for rate in rates_gbps:
            exp = Experiment(
                name=f"ext-sat-{policy_name}-{rate:g}",
                server=ServerConfig(
                    policy=policies.policy_by_name(policy_name),
                    app="touchdrop",
                    ring_size=ring_size,
                ),
                traffic="steady",
                steady_rate_gbps_per_nf=rate,
                steady_duration=units.microseconds(duration_us),
            )
            sweep.append((f"{policy_name}@{rate:g}", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for policy_name in policy_names:
        for rate in rates_gbps:
            result = results[f"{policy_name}@{rate:g}"]
            offered = result.rx_packets + result.rx_drops
            rows.append(
                {
                    "policy": policy_name,
                    "rate_gbps": rate,
                    "offered": offered,
                    "drops": result.rx_drops,
                    "drop_pct": 100.0 * result.rx_drops / offered if offered else 0.0,
                    "p99_us": (result.p99_ns or 0) / 1000.0,
                }
            )

    table = format_table(
        ["policy", "rate (Gbps/NF)", "offered", "drops", "drop %", "p99 us"],
        [
            [r["policy"], r["rate_gbps"], r["offered"], r["drops"],
             r["drop_pct"], r["p99_us"]]
            for r in rows
        ],
        title="Extension — steady-load saturation sweep (paper: drops > ~12 Gbps/core)",
    )
    return FigureReport("ext-saturation", "Saturation sweep", rows, table, results)


def ext_inclusive_counterfactual(
    burst_rate_gbps: float = 100.0,
    ring_size: int = 1024,
    jobs: int = 1,
) -> FigureReport:
    """Inclusive-LLC counterfactual: DMA bloating needs non-inclusion.

    In an inclusive hierarchy MLC victims need no LLC allocation (the copy
    already exists), so consumed DMA buffers cannot bloat into the
    non-DDIO ways — at the price of the LLC back-invalidating MLC lines on
    its own evictions.
    """
    labels = ("non-inclusive", "inclusive")
    sweep: List[Tuple[str, Experiment]] = []
    for inclusive in (False, True):
        label = labels[int(inclusive)]
        exp = Experiment(
            name=f"ext-{label}",
            server=ServerConfig(
                app="touchdrop", ring_size=ring_size, llc_inclusive=inclusive
            ),
            traffic="bursty",
            burst_rate_gbps=burst_rate_gbps,
        )
        sweep.append((label, exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for label in labels:
        result = results[label]
        rows.append(
            {
                "hierarchy": label,
                "mlc_wb": result.window.mlc_writebacks,
                "llc_wb": result.window.llc_writebacks,
                "dram_rd": result.window.dram_reads,
                "back_invalidations": result.counters.get("back_invalidations", 0),
                "burst_time_us": _us(result.burst_processing_time),
            }
        )

    table = format_table(
        ["hierarchy", "MLC WB", "LLC WB", "DRAM rd", "back-invals", "burst us"],
        [
            [r["hierarchy"], r["mlc_wb"], r["llc_wb"], r["dram_rd"],
             r["back_invalidations"], r["burst_time_us"]]
            for r in rows
        ],
        title="Extension — inclusive-LLC counterfactual (DDIO policy)",
    )
    return FigureReport("ext-inclusive", "Inclusion counterfactual", rows, table, results)
