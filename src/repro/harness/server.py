"""Builds a complete simulated server for one experiment.

A :class:`SimulatedServer` wires together everything the paper's testbed
contains: NF cores with private caches, the shared non-inclusive LLC with
DDIO ways, DRAM, the PCIe root complex, a multi-queue NIC with Flow
Director, per-core DPDK PMD loops running a network function, optionally
an LLCAntagonist core, and — depending on the placement policy — the IDIO
classifier/controller/prefetchers.

The default geometry is the paper's scaled gem5 configuration (§III
Obs. 4 / Table I): 3 MB 12-way LLC with 2 DDIO ways, 1 MB 8-way MLC per NF
core, a 256 KB MLC for the antagonist core, 1024-entry rings, 1514 B
packets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.sanitizer import InvariantSanitizer
from ..core.cachedirector import CacheDirectorController
from ..core.config import IDIOConfig
from ..core.controller import IDIOController
from ..core.iat import IATController
from ..core.ioca import IOCAController
from ..core.policies import (
    PREFETCH_OFF,
    PREFETCH_STATIC,
    PolicyConfig,
    ddio,
)
from ..core.prefetcher import RegulatedMLCPrefetcher
from ..cpu.apps import (
    CostModel,
    L2Fwd,
    L2FwdPayloadDrop,
    LLCAntagonist,
    NetworkFunction,
    TouchDrop,
)
from ..cpu.core import Core
from ..cpu.dpdk import AntagonistDriver, PollModeDriver
from ..cpu.maintenance import MaintenanceUnit
from ..cpu.mempool import BufferPool
from ..cpu.pagetable import PageTable
from ..faults import FaultEvent, FaultInjectors, FaultPlan
from ..mem.hierarchy import HierarchyConfig, MemoryHierarchy
from ..mem.line import num_lines
from ..mem.stats import StatsBundle
from ..net.flow import make_flow, make_tenant_flow
from ..net.packet import MTU_FRAME_BYTES, Packet
from ..net.traffic import (
    BurstProfile,
    DiurnalProfile,
    HeavyTailProfile,
    SteadyProfile,
    TrafficGenerator,
)
from ..nic.classifier import ClassifierConfig
from ..nic.descriptor import DESCRIPTOR_BYTES
from ..nic.dma import DMAEngine
from ..nic.nic import NIC, NicConfig
from ..obs.trace import TraceRecorder
from ..pcie.root_complex import RootComplex
from ..sim import Simulator, units
from ..tenants.config import TenantSet, tenant_rng

APP_FACTORIES: Dict[str, Callable[[Optional[CostModel]], NetworkFunction]] = {
    "touchdrop": lambda cost: TouchDrop(cost),
    "l2fwd": lambda cost: L2Fwd(cost),
    "l2fwd-payload-drop": lambda cost: L2FwdPayloadDrop(cost),
}


@dataclass
class ServerConfig:
    """Everything needed to instantiate one simulated server."""

    policy: PolicyConfig = field(default_factory=ddio)
    app: str = "touchdrop"
    #: Heterogeneous deployments: one app name per NF core (overrides
    #: ``app``; length must equal ``num_nf_cores``).  Lets class-0 and
    #: class-1 applications share the socket, which is the scenario
    #: selective direct DRAM access (M3) is designed for.
    apps: Optional[List[str]] = None
    num_nf_cores: int = 2
    ring_size: int = 1024
    packet_bytes: int = MTU_FRAME_BYTES
    #: Add an LLCAntagonist core (Fig. 10/12 co-run scenarios).
    antagonist: bool = False
    antagonist_buffer_bytes: int = 2 * 1024 * 1024
    antagonist_mlc_bytes: int = 256 * 1024
    #: LLC geometry (3 MB total, 12 ways, 2 DDIO ways by default).
    llc_bytes: int = 3 * 1024 * 1024
    llc_ways: int = 12
    ddio_ways: int = 2
    llc_inclusive: bool = False
    nf_mlc_bytes: int = 1024 * 1024
    l1_enabled: bool = True
    #: CAT-style restriction of each NF core's LLC fills ("_1way" configs
    #: in Fig. 4).  ``None`` = no restriction.
    nf_cat_ways: Optional[int] = None
    #: Buffer recycling mode (§II-B): "run_to_completion" (DPDK default),
    #: "copy" (Linux-stack-style), or "reallocate" (pool swap).
    recycle_mode: str = "run_to_completion"
    #: NUCA slice count for the LLC (0 = monolithic; policies with slice
    #: steering need > 0 — defaulted to 8 when they are selected).
    llc_slices: int = 0
    #: NIC ports, each with its own PCIe link (the paper's testbed runs
    #: two 100 GbE ports).  NF core i is served by port (i mod num_nics).
    num_nics: int = 1
    #: DRAM model: "fixed" (constant latency) or "banked" (channels,
    #: banks, open-row tracking).
    dram_model: str = "fixed"
    #: Cache replacement policy for every level (``None`` = per-level
    #: default, ``lru``).  ``"lru-vec"`` opts into the numpy-vectorized
    #: exact-LRU path (identical results; falls back to ``lru`` without
    #: numpy — see :mod:`repro.mem._vec`).
    replacement: Optional[str] = None
    #: Extra pool buffers per ring slot in re-allocate mode.
    reallocate_pool_factor: int = 2
    cost_model: Optional[CostModel] = None
    nic: NicConfig = field(default_factory=NicConfig)
    freq_ghz: float = 3.0
    #: Reset statistics after warmup so Fig.-style windows start clean.
    reset_stats_after_warmup: bool = True
    #: Attach a :class:`~repro.obs.trace.TraceRecorder` to the hierarchy's
    #: event bus (enables per-hop recording — off by default; tracing
    #: costs both time and memory, so it is strictly opt-in).
    trace_enabled: bool = False
    #: Event cap for the recorder when tracing is enabled.
    trace_max_events: int = 2_000_000
    #: Attach the :class:`~repro.analysis.sanitizer.InvariantSanitizer`
    #: (ASan-style runtime invariant checks on every transaction plus
    #: periodic structural barriers).  Off by default: checked mode costs
    #: simulation throughput and exists for tests and ``repro check``.
    checked_mode: bool = False
    #: Transactions between two structural-barrier sweeps in checked mode.
    checked_barrier_interval: int = 4096
    #: Seeded fault schedule (``repro.faults``).  The default empty plan
    #: leaves every layer on its zero-cost fast path; ``harness.*`` kinds
    #: are interpreted by the sweep runner, not the server.
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    #: Co-located tenants (``repro.tenants``).  When set, NF cores are
    #: assigned to tenants in contiguous blocks (``num_nf_cores`` must
    #: equal the set's total), flows carry tenant tags, DMA writes are
    #: attributed per tenant, and ``tenant_partitioning`` policies can
    #: split the DDIO ways between tenants.  ``None`` keeps the classic
    #: single-tenant server with zero added hot-path cost.
    tenants: Optional[TenantSet] = None

    def app_for_core(self, core: int) -> str:
        if self.tenants is not None and core < self.num_nf_cores:
            return self.tenants.tenants[self.tenants.core_tenant(core)].app
        if self.apps is None:
            return self.app
        return self.apps[core]

    @property
    def num_cores(self) -> int:
        extra = self.tenants.num_antagonists if self.tenants is not None else 0
        return self.num_nf_cores + (1 if self.antagonist else 0) + extra

    @property
    def antagonist_core(self) -> Optional[int]:
        return self.num_nf_cores if self.antagonist else None


class _Allocator:
    """A bump allocator for the abstract physical address space."""

    def __init__(self, base: int = 0x1000_0000) -> None:
        self._next = base

    def take(self, num_bytes: int, align: int = 4096) -> int:
        addr = (self._next + align - 1) // align * align
        self._next = addr + num_bytes
        return addr


class SimulatedServer:
    """One fully wired server instance plus its load generators."""

    def __init__(self, config: ServerConfig) -> None:
        if config.apps is not None and len(config.apps) != config.num_nf_cores:
            raise ValueError(
                f"apps lists {len(config.apps)} entries for "
                f"{config.num_nf_cores} NF cores"
            )
        for core in range(config.num_nf_cores):
            name = config.app_for_core(core)
            if name not in APP_FACTORIES:
                raise ValueError(
                    f"unknown app {name!r}; choose from {sorted(APP_FACTORIES)}"
                )
        if config.tenants is not None:
            if config.tenants.total_nf_cores != config.num_nf_cores:
                raise ValueError(
                    f"tenant set needs {config.tenants.total_nf_cores} NF cores "
                    f"but the server config provides {config.num_nf_cores}"
                )
            if (
                config.policy.tenant_partitioning != "none"
                and config.tenants.total_way_quota > config.ddio_ways
            ):
                raise ValueError(
                    f"tenant way quotas sum to {config.tenants.total_way_quota} "
                    f"but the server has only {config.ddio_ways} DDIO ways"
                )
        self.config = config
        self.sim = Simulator()
        self.stats = StatsBundle()

        mlc_sizes = [config.nf_mlc_bytes] * config.num_nf_cores
        if config.antagonist:
            mlc_sizes.append(config.antagonist_mlc_bytes)
        if config.tenants is not None:
            # Per-tenant antagonist cores (LLC-sensitive, small MLC).
            mlc_sizes.extend(
                [config.antagonist_mlc_bytes] * config.tenants.num_antagonists
            )
        llc_slices = config.llc_slices
        if config.policy.slice_header_steering and llc_slices == 0:
            llc_slices = 8  # CacheDirector needs a NUCA topology
        hier_config = HierarchyConfig(
            num_cores=config.num_cores,
            freq_ghz=config.freq_ghz,
            l1_enabled=config.l1_enabled,
            mlc_sizes=mlc_sizes,
            llc=None,
            ddio_ways=config.ddio_ways,
            llc_inclusive=config.llc_inclusive,
            llc_slices=llc_slices,
            dram_model=config.dram_model,
            replacement=config.replacement,
        )
        # Custom LLC geometry.
        from ..mem.cache import CacheConfig

        hier_config.llc = CacheConfig(
            "llc",
            config.llc_bytes,
            config.llc_ways,
            units.cycles(24, config.freq_ghz),
            mshrs=32,
        )
        self.hierarchy = MemoryHierarchy(hier_config, self.stats)

        #: Optional per-hop transaction recorder (``trace_enabled``).
        self.trace_recorder: Optional[TraceRecorder] = None
        if config.trace_enabled:
            self.trace_recorder = TraceRecorder(
                max_events=config.trace_max_events
            ).attach(self.hierarchy)

        #: Optional runtime invariant checker (``checked_mode``).
        self.sanitizer: Optional[InvariantSanitizer] = None
        if config.checked_mode:
            self.sanitizer = InvariantSanitizer(
                self.hierarchy,
                barrier_interval=config.checked_barrier_interval,
            ).attach()

        #: Per-layer fault injectors (``fault_plan``) plus a per-kind
        #: injection counter; both stay empty for the default plan.
        self.fault_injectors: Optional[FaultInjectors] = None
        self.fault_counts: Dict[str, int] = {}
        if not config.fault_plan.is_empty:
            self.hierarchy.bus.subscribe(FaultEvent, self._count_fault)
            self.fault_injectors = FaultInjectors(
                config.fault_plan, self.hierarchy.bus
            )
            if self.sanitizer is not None:
                self.sanitizer.register_faults(config.fault_plan)

        if config.nf_cat_ways is not None:
            # Restrict NF-core fills to the first nf_cat_ways non-DDIO ways.
            allowed = list(
                range(config.ddio_ways, config.ddio_ways + config.nf_cat_ways)
            )
            for core in range(config.num_nf_cores):
                self.hierarchy.llc.set_core_way_mask(core, allowed)

        self.page_table = PageTable()
        self.root_complex = RootComplex(self.sim, self.hierarchy)

        nic_config = replace(
            config.nic,
            ring_size=config.ring_size,
            classifier_enabled=config.policy.needs_classifier,
            classifier=ClassifierConfig(
                rx_burst_threshold_gbps=config.policy.idio.rx_burst_threshold_gbps,
                num_cores=max(config.num_cores, 1),
            ),
        )
        # One NIC per port, each on its own PCIe link (the paper's testbed
        # has 2x100 GbE).  NF core i is served by NIC (i mod num_nics).
        self.nics: List[NIC] = []
        self.dmas: List[DMAEngine] = []
        for _ in range(max(1, config.num_nics)):
            dma = DMAEngine(self.sim, self.root_complex, pcie_gbps=config.nic.pcie_gbps)
            self.dmas.append(dma)
            self.nics.append(NIC(self.sim, dma, nic_config))
        self.nic = self.nics[0]  # primary port (back-compat accessor)
        self.dma = self.dmas[0]

        if self.fault_injectors is not None:
            fi = self.fault_injectors
            if fi.nic is not None:
                for nic in self.nics:
                    nic.faults = fi.nic
            if fi.pcie is not None:
                self.root_complex.faults = fi.pcie
                for dma in self.dmas:
                    dma.faults = fi.pcie
            if fi.mem is not None:
                self.hierarchy.dram.faults = fi.mem
            fi.schedule_window_tasks(self.sim, self.hierarchy.llc)

        self.controller: Optional[IDIOController] = None
        self.iat_controller: Optional[IATController] = None
        self.cachedirector: Optional[CacheDirectorController] = None
        self.ioca_controller: Optional[IOCAController] = None
        if config.policy.needs_controller:
            self.controller = IDIOController(
                self.sim,
                self.hierarchy,
                config=config.policy.idio,
                static_mlc=(config.policy.prefetch_mode == PREFETCH_STATIC),
                prefetch_enabled=(config.policy.prefetch_mode != PREFETCH_OFF),
                direct_dram_enabled=config.policy.direct_dram,
            )
            self.root_complex.attach_controller(self.controller.steer)
            if self.sanitizer is not None:
                self.sanitizer.register_controller(self.controller)
        elif config.policy.dynamic_ddio_ways:
            self.iat_controller = IATController(self.sim, self.hierarchy)
        elif config.policy.slice_header_steering:
            self.cachedirector = CacheDirectorController(self.sim, self.hierarchy)
            self.root_complex.attach_controller(self.cachedirector.steer)
        elif config.policy.tenant_partitioning == "dynamic" and config.tenants is not None:
            self.ioca_controller = IOCAController(
                self.sim, self.hierarchy, config.tenants
            )
        elif config.policy.tenant_partitioning == "static" and config.tenants is not None:
            # Static quota baseline: each tenant gets exactly its quota,
            # contiguous in tenant order, fixed for the whole run.
            start_way = 0
            for tenant in config.tenants:
                self.hierarchy.llc.set_tenant_io_ways(
                    tenant.tenant_id,
                    range(start_way, start_way + tenant.llc_way_quota),
                )
                start_way += tenant.llc_way_quota

        # -- per-NF-core plumbing ------------------------------------------
        alloc = _Allocator()
        self.cores: List[Core] = [
            Core(self.sim, i, self.hierarchy, config.freq_ghz)
            for i in range(config.num_cores)
        ]
        self.apps: List[NetworkFunction] = []
        self.drivers: List[PollModeDriver] = []
        self.generators: List[TrafficGenerator] = []
        #: Tenant id behind each generator (parallel to ``generators``;
        #: all zeros on an untenanted server).
        self._generator_tenants: List[int] = []
        #: ``(start, end, tenant)`` DMA attribution ranges (tenanted only).
        self.tenant_ranges: List[Tuple[int, int, int]] = []
        tenant_slots: Dict[int, int] = {}
        stride = config.nic.buffer_stride
        for i in range(config.num_nf_cores):
            port = self.nics[i % len(self.nics)]
            core_tenant = (
                config.tenants.core_tenant(i) if config.tenants is not None else 0
            )
            desc_base = alloc.take(config.ring_size * DESCRIPTOR_BYTES)
            self.page_table.map_range(desc_base, config.ring_size * DESCRIPTOR_BYTES)
            if config.tenants is not None:
                self.tenant_ranges.append(
                    (
                        desc_base,
                        desc_base + config.ring_size * DESCRIPTOR_BYTES,
                        core_tenant,
                    )
                )

            buffer_pool = None
            copy_pool = None
            if config.recycle_mode == "reallocate":
                # One contiguous DMA region covering the ring's initial
                # buffers plus the mempool's spares; the ring's initial
                # slots are reserved out of the pool.
                total = config.ring_size * max(2, config.reallocate_pool_factor)
                buf_base = alloc.take(total * stride)
                buf_bytes = total * stride
                buffer_pool = BufferPool(buf_base, stride, total)
                for slot in range(config.ring_size):
                    buffer_pool.reserve(buf_base + slot * stride)
                self.page_table.allocate_invalidatable(buf_base, total * stride)
            else:
                buf_base = alloc.take(config.ring_size * stride)
                buf_bytes = config.ring_size * stride
                self.page_table.allocate_invalidatable(
                    buf_base, config.ring_size * stride
                )
                if config.recycle_mode == "copy":
                    # Application-space destination buffers for the copy
                    # loop (reused round-robin, like a socket read buffer).
                    n_copies = 64
                    copy_base = alloc.take(n_copies * stride)
                    self.page_table.map_range(copy_base, n_copies * stride)
                    copy_pool = [copy_base + k * stride for k in range(n_copies)]

            if config.tenants is not None:
                self.tenant_ranges.append(
                    (buf_base, buf_base + buf_bytes, core_tenant)
                )
            queue = port.add_queue(i, i, desc_base, buf_base)
            app = APP_FACTORIES[config.app_for_core(i)](config.cost_model)
            if app.transmits:
                tx_desc_base = alloc.take(config.ring_size * DESCRIPTOR_BYTES)
                self.page_table.map_range(
                    tx_desc_base, config.ring_size * DESCRIPTOR_BYTES
                )
                port.add_tx_queue(i, tx_desc_base)
            if config.tenants is not None:
                tconf = config.tenants.tenants[core_tenant]
                base_slot = tenant_slots.get(core_tenant, 0)
                flows = [
                    make_tenant_flow(core_tenant, base_slot + k)
                    for k in range(tconf.flows_per_core)
                ]
                tenant_slots[core_tenant] = base_slot + tconf.flows_per_core
            else:
                flows = [make_flow(i)]
            for flow in flows:
                port.flow_director.install_rule(flow, i)
            maintenance = MaintenanceUnit(
                i, self.hierarchy, page_table=self.page_table, scope="all"
            )
            driver = PollModeDriver(
                self.sim,
                self.cores[i],
                port,
                queue,
                app,
                maintenance=maintenance,
                self_invalidate=config.policy.self_invalidate,
                recycle_mode=config.recycle_mode,
                buffer_pool=buffer_pool,
                copy_pool=copy_pool,
            )
            if self.controller is not None:
                prefetcher = self.controller.prefetchers[i]
                if isinstance(prefetcher, RegulatedMLCPrefetcher):
                    prefetcher.attach_ring(
                        queue.ring,
                        buf_base,
                        stride,
                        lines_per_buffer=num_lines(config.packet_bytes),
                    )
            if self.sanitizer is not None and buffer_pool is not None:
                self.sanitizer.register_pool(buffer_pool)
            if self.fault_injectors is not None:
                driver.faults = self.fault_injectors.cpu
            self.apps.append(app)
            self.drivers.append(driver)
            for flow in flows:
                self.generators.append(
                    TrafficGenerator(self.sim, flow, port.receive, app.app_class)
                )
                self._generator_tenants.append(core_tenant)

        if self.tenant_ranges:
            self.hierarchy.set_tenant_ranges(self.tenant_ranges)
        if self.sanitizer is not None and config.tenants is not None:
            self.sanitizer.register_tenants(config.tenants)

        # -- antagonist -----------------------------------------------------
        self.antagonist: Optional[LLCAntagonist] = None
        self.antagonist_driver: Optional[AntagonistDriver] = None
        if config.antagonist:
            buf = alloc.take(config.antagonist_buffer_bytes)
            self.page_table.map_range(buf, config.antagonist_buffer_bytes)
            core_id = config.antagonist_core
            assert core_id is not None
            self.antagonist = LLCAntagonist(buf, config.antagonist_buffer_bytes)
            self.antagonist_driver = AntagonistDriver(
                self.sim, self.cores[core_id], self.antagonist
            )

        # -- per-tenant antagonists ----------------------------------------
        #: ``(tenant_id, driver)`` pairs, one per ``antagonist=True`` tenant.
        self.tenant_antagonists: List[Tuple[int, AntagonistDriver]] = []
        if config.tenants is not None and config.tenants.num_antagonists:
            core_id = config.num_nf_cores + (1 if config.antagonist else 0)
            for tenant in config.tenants:
                if not tenant.antagonist:
                    continue
                buf = alloc.take(tenant.antagonist_footprint_bytes)
                self.page_table.map_range(buf, tenant.antagonist_footprint_bytes)
                # Seeded from the tenant's own RNG stream (SIM016): the
                # access pattern never depends on other tenants.
                seed = tenant_rng(config.tenants.seed, tenant.tenant_id).getrandbits(32)
                thrasher = LLCAntagonist(
                    buf, tenant.antagonist_footprint_bytes, seed=seed
                )
                self.tenant_antagonists.append(
                    (
                        tenant.tenant_id,
                        AntagonistDriver(self.sim, self.cores[core_id], thrasher),
                    )
                )
                core_id += 1

        self._started = False

    def _count_fault(self, event: FaultEvent) -> None:
        counts = self.fault_counts
        counts[event.kind] = counts.get(event.kind, 0) + 1

    # ------------------------------------------------------------------
    # experiment control
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Warm up, reset statistics, and start all software agents."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self.antagonist_driver is not None:
            self.antagonist_driver.warmup()
        for _tenant, t_driver in self.tenant_antagonists:
            t_driver.warmup()
        for driver in self.drivers:
            driver.init_ring()
        if self.config.reset_stats_after_warmup:
            self.stats.reset()
            for core in self.cores:
                core.stats.mem_accesses = 0
                core.stats.mem_ticks = 0
                core.stats.compute_ticks = 0
                core.stats.hits_by_level.clear()
        for driver in self.drivers:
            driver.start()
        if self.antagonist_driver is not None:
            self.antagonist_driver.start()
        for _tenant, t_driver in self.tenant_antagonists:
            t_driver.start()

    def inject_bursty(
        self,
        burst_rate_gbps: float,
        packets_per_burst: Optional[int] = None,
        num_bursts: int = 1,
        burst_period: int = units.milliseconds(10),
        start: int = 0,
    ) -> int:
        """Schedule §VI bursty traffic on every NF flow.

        ``packets_per_burst`` defaults to the ring size, matching the
        paper's choice of burst length (exactly one ring fill per burst).
        """
        per_burst = packets_per_burst or self.config.ring_size
        total = 0
        for gen in self.generators:
            profile = BurstProfile(
                burst_rate_gbps=burst_rate_gbps,
                packets_per_burst=per_burst,
                burst_period=burst_period,
                num_bursts=num_bursts,
                packet_bytes=self.config.packet_bytes,
                start=start,
            )
            total += gen.schedule_bursts(profile)
        return total

    def inject_steady(
        self,
        rate_gbps_per_nf: float,
        duration: int,
        start: int = 0,
    ) -> int:
        """Schedule §VI steady traffic on every NF flow."""
        total = 0
        for gen in self.generators:
            profile = SteadyProfile(
                rate_gbps=rate_gbps_per_nf,
                duration=duration,
                packet_bytes=self.config.packet_bytes,
                start=start,
            )
            total += gen.schedule_steady(profile)
        return total

    def inject_poisson(
        self,
        rate_gbps_per_nf: float,
        duration: int,
        start: int = 0,
        seed: int = 0,
    ) -> int:
        """Schedule Poisson-arrival traffic on every NF flow."""
        total = 0
        for i, gen in enumerate(self.generators):
            total += gen.schedule_poisson(
                rate_gbps_per_nf,
                duration,
                packet_bytes=self.config.packet_bytes,
                start=start,
                seed=seed + i,
            )
        return total

    def inject_heavy_tail(
        self,
        rate_gbps_per_nf: float,
        duration: int,
        alpha: float = 1.5,
        start: int = 0,
        seed: int = 0,
    ) -> int:
        """Schedule heavy-tailed (Pareto-gap) traffic on every NF flow."""
        total = 0
        for i, gen in enumerate(self.generators):
            profile = HeavyTailProfile(
                rate_gbps=rate_gbps_per_nf,
                duration=duration,
                alpha=alpha,
                packet_bytes=self.config.packet_bytes,
                start=start,
                seed=seed + i,
            )
            total += gen.schedule_heavy_tail(profile)
        return total

    def inject_diurnal(
        self,
        trough_rate_gbps_per_nf: float,
        peak_rate_gbps_per_nf: float,
        duration: int,
        period: int,
        start: int = 0,
        seed: int = 0,
    ) -> int:
        """Schedule diurnal-swing traffic on every NF flow."""
        total = 0
        for i, gen in enumerate(self.generators):
            profile = DiurnalProfile(
                trough_rate_gbps=trough_rate_gbps_per_nf,
                peak_rate_gbps=peak_rate_gbps_per_nf,
                duration=duration,
                period=period,
                packet_bytes=self.config.packet_bytes,
                start=start,
                seed=seed + i,
            )
            total += gen.schedule_diurnal(profile)
        return total

    def inject_imix(
        self,
        rate_gbps_per_nf: float,
        duration: int,
        start: int = 0,
        seed: int = 0,
    ) -> int:
        """Schedule IMIX-sized steady traffic on every NF flow."""
        total = 0
        for i, gen in enumerate(self.generators):
            total += gen.schedule_imix(
                rate_gbps_per_nf, duration, start=start, seed=seed + i
            )
        return total

    def inject_tenants(self, duration: int, start: int = 0) -> int:
        """Schedule each tenant's traffic on its tagged flows.

        Every flow follows its owner's traffic profile; stochastic
        profiles draw their seeds from the owner's :func:`tenant_rng`
        stream in flow order, so tenant ``k``'s arrivals are invariant
        to every other tenant's configuration (SIM016's contract).
        """
        tenants = self.config.tenants
        if tenants is None:
            raise RuntimeError("inject_tenants requires ServerConfig.tenants")
        rngs = {t.tenant_id: tenant_rng(tenants.seed, t.tenant_id) for t in tenants}
        packet_bytes = self.config.packet_bytes
        total = 0
        for tenant_id, gen in zip(self._generator_tenants, self.generators):
            tenant = tenants.tenants[tenant_id]
            rng = rngs[tenant_id]
            if tenant.traffic == "steady":
                total += gen.schedule_steady(
                    SteadyProfile(
                        rate_gbps=tenant.rate_gbps,
                        duration=duration,
                        packet_bytes=packet_bytes,
                        start=start,
                    )
                )
            elif tenant.traffic == "bursty":
                total += gen.schedule_bursts(
                    BurstProfile(
                        burst_rate_gbps=tenant.rate_gbps,
                        packets_per_burst=tenant.packets_per_burst,
                        burst_period=units.microseconds(tenant.burst_period_us),
                        num_bursts=tenant.num_bursts,
                        packet_bytes=packet_bytes,
                        start=start,
                    )
                )
            elif tenant.traffic == "heavy-tail":
                total += gen.schedule_heavy_tail(
                    HeavyTailProfile(
                        rate_gbps=tenant.rate_gbps,
                        duration=duration,
                        alpha=tenant.heavy_tail_alpha,
                        packet_bytes=packet_bytes,
                        start=start,
                        seed=rng.getrandbits(32),
                    )
                )
            else:  # poisson (TENANT_TRAFFIC_KINDS is validated)
                total += gen.schedule_poisson(
                    tenant.rate_gbps,
                    duration,
                    packet_bytes=packet_bytes,
                    start=start,
                    seed=rng.getrandbits(32),
                )
        return total

    def run(self, until: int) -> int:
        """Advance the simulation to ``until`` (absolute ticks)."""
        return self.sim.run(until=until)

    def all_queues(self):
        """Every RX queue across all NIC ports."""
        for nic in self.nics:
            yield from nic.queues.values()

    @property
    def total_rx(self) -> int:
        return sum(nic.total_rx for nic in self.nics)

    @property
    def total_drops(self) -> int:
        return sum(nic.total_drops for nic in self.nics)

    @property
    def total_tx(self) -> int:
        return sum(nic.total_tx for nic in self.nics)

    def all_packets_drained(self) -> bool:
        """True when every accepted packet has been fully consumed."""
        return all(q.ring.occupancy() == 0 for q in self.all_queues())

    def run_until_drained(
        self,
        deadline: int,
        check_interval: int = units.microseconds(50),
    ) -> int:
        """Run until all rings drain (or ``deadline``); returns stop time."""
        while self.sim.now < deadline:
            step = min(check_interval, deadline - self.sim.now)
            self.sim.run(until=self.sim.now + step)
            if self.all_packets_drained() and self.sim.pending_events == 0:
                break
            if self.all_packets_drained():
                # Stop early only once every *scheduled* arrival has been
                # seen by the NIC (multi-burst runs have future arrivals
                # pending long after the current burst drains).
                scheduled = sum(g.packets_scheduled for g in self.generators)
                accepted = self.total_rx + self.total_drops
                if accepted >= scheduled > 0:
                    break
        return self.sim.now

    def stop(self) -> None:
        """Stop all periodic agents (end of measurement)."""
        for driver in self.drivers:
            driver.stop()
        if self.antagonist_driver is not None:
            self.antagonist_driver.stop()
        if self.controller is not None:
            self.controller.stop()
        if self.iat_controller is not None:
            self.iat_controller.stop()
        if self.ioca_controller is not None:
            self.ioca_controller.stop()
        for _tenant, t_driver in self.tenant_antagonists:
            t_driver.stop()
        for nic in self.nics:
            nic.stop()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def completed_packets(self) -> List[Packet]:
        packets: List[Packet] = []
        for driver in self.drivers:
            packets.extend(driver.completed_packets)
        return packets

    def packet_latencies_ns(self) -> List[float]:
        return [
            units.to_nanoseconds(p.latency)
            for p in self.completed_packets()
            if p.latency is not None
        ]

    def tenant_stats(self) -> Dict[int, Dict[str, float]]:
        """Per-tenant attribution: completion, tail latency, LLC footprint.

        Keys per tenant: ``completed`` (packets), ``p50_us``/``p95_us``/
        ``p99_us`` (0.0 when the tenant completed nothing — the sentinel
        is documented in ``ExperimentSummary.tenant_stats``),
        ``dma_writes`` (attributed inbound DMA), ``io_lines`` (I/O-origin
        LLC lines resident in the tenant's ranges at end of run), and
        ``io_ways`` (ways in the tenant's partition; 0 when unpartitioned).
        """
        tenants = self.config.tenants
        if tenants is None:
            return {}
        from .metrics import percentile

        llc = self.hierarchy.llc
        counter_values = self.hierarchy._counter_values
        way_table = llc.tenant_way_table()
        io_lines: Dict[int, int] = {}
        for line in llc.data.lines():
            if line.origin == "io":
                owner = self.hierarchy.tenant_of_addr(line.addr)
                if owner >= 0:
                    io_lines[owner] = io_lines.get(owner, 0) + 1
        stats: Dict[int, Dict[str, float]] = {}
        for tenant in tenants:
            latencies_us = []
            completed = 0
            for core in tenants.tenant_cores(tenant.tenant_id):
                packets = self.drivers[core].completed_packets
                completed += len(packets)
                for p in packets:
                    if p.latency is not None:
                        latencies_us.append(units.to_nanoseconds(p.latency) / 1000.0)
            entry = {
                "completed": float(completed),
                "dma_writes": float(
                    counter_values.get(f"tenant_dma_writes_t{tenant.tenant_id}", 0)
                ),
                "io_lines": float(io_lines.get(tenant.tenant_id, 0)),
                "io_ways": float(len(way_table.get(tenant.tenant_id, []))),
            }
            for p in (50, 95, 99):
                entry[f"p{p}_us"] = (
                    percentile(latencies_us, p) if latencies_us else 0.0
                )
            stats[tenant.tenant_id] = entry
        return stats
