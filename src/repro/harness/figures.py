"""Per-figure experiment definitions (the paper's evaluation section).

Each ``figN`` function runs the workload(s) behind one paper figure and
returns a :class:`FigureReport` holding structured rows plus a printable
text block that places the paper's reported values next to the measured
ones.  The benchmarks in ``benchmarks/`` are thin wrappers over these.

All functions accept scaling knobs so the same code path serves both quick
smoke tests (small rings, short bursts) and full paper-scale runs, plus a
``jobs`` knob: every figure declares its full sweep up front and hands it
to :func:`repro.harness.runner.run_experiments`, so ``jobs > 1`` fans the
independent runs out over the *warm session pool* — one set of worker
processes shared by every sweep of the session, fed by spool-file
broadcast (see ``docs/performance.md``), so back-to-back figures pay no
per-call fork or per-task experiment pickling.  Results are therefore
:class:`~repro.harness.experiment.ExperimentSummary` objects (slim and
picklable), not live servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import policies
from ..sim import units
from . import metrics
from .experiment import Experiment, ExperimentSummary
from .report import format_table, timeline_block
from .runner import run_named_experiments
from .server import ServerConfig


@dataclass
class FigureReport:
    """Structured + printable results for one reproduced figure/table."""

    figure: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    text: str = ""
    results: Dict[str, ExperimentSummary] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.text


# ---------------------------------------------------------------------------
# Paper-reported values (for the side-by-side columns / EXPERIMENTS.md).
# ---------------------------------------------------------------------------

#: Fig. 10 — IDIO vs DDIO reductions (percent) per burst rate, solo runs.
PAPER_FIG10_MLC_WB_REDUCTION = {100.0: 73.9, 25.0: 83.7, 10.0: 63.8}
#: Fig. 10 — burst processing time improvement (percent), solo runs.
PAPER_FIG10_EXE_IMPROVEMENT = {100.0: 18.5, 25.0: 22.0, 10.0: 0.0}
#: Fig. 10 — co-run burst processing time improvement (percent).
PAPER_FIG10_CORUN_EXE_IMPROVEMENT = {100.0: 10.9, 25.0: 20.8}
#: Fig. 12 — p99 latency reduction (percent), solo / co-run per rate.
PAPER_FIG12_P99_REDUCTION_SOLO = {100.0: 7.9, 25.0: 30.5, 10.0: 10.9}
PAPER_FIG12_P99_REDUCTION_CORUN = {100.0: 6.1, 25.0: 32.0, 10.0: 8.2}
#: Fig. 4 — MLC writeback rate at ring 1024 normalized to RX line rate.
PAPER_FIG4_MLC_WB_RATIO_RING1024 = 1.52


def _bursty_experiment(
    name: str,
    burst_rate_gbps: float,
    ring_size: int,
    packet_bytes: int = 1514,
    app: str = "touchdrop",
    antagonist: bool = False,
    num_bursts: int = 1,
    packets_per_burst: Optional[int] = None,
) -> Experiment:
    return Experiment(
        name=name,
        server=ServerConfig(
            app=app,
            ring_size=ring_size,
            packet_bytes=packet_bytes,
            antagonist=antagonist,
        ),
        traffic="bursty",
        burst_rate_gbps=burst_rate_gbps,
        num_bursts=num_bursts,
        packets_per_burst=packets_per_burst,
    )


# ---------------------------------------------------------------------------
# Fig. 4 — MLC and DRAM leaks vs load level and ring size (DDIO baseline)
# ---------------------------------------------------------------------------

def fig4(
    ring_sizes: Sequence[int] = (64, 1024, 2048),
    loads_gbps_per_nf: Dict[str, float] = None,
    duration_us: float = 1500.0,
    packet_bytes: int = 1514,
    include_1way: bool = True,
    ring_wraps: float = 1.5,
    max_duration_us: float = 30_000.0,
    jobs: int = 1,
) -> FigureReport:
    """Fig. 4: steady-load MLC/DRAM leak characterization under DDIO.

    The paper's physical experiment runs 10 NFs at aggregate loads of
    8 Mbps / 1 Gbps / 20 Gbps; our simulated server runs 2 NF cores, so
    the per-NF load levels below keep the same per-core pressure ordering
    (low ≪ med < high, with high near the per-core saturation point).

    The measurement window per cell is stretched so the NIC wraps the DMA
    ring at least ``ring_wraps`` times (the paper measures in steady
    state; a window shorter than one wrap would miss the MLC-invalidation
    and writeback steady-state behavior at low loads), capped at
    ``max_duration_us``.
    """
    if loads_gbps_per_nf is None:
        loads_gbps_per_nf = {"low": 1.0, "med": 4.0, "high": 10.0}

    configs: List[Tuple[str, int, bool]] = []
    for ring in ring_sizes:
        for load in loads_gbps_per_nf:
            configs.append((load, ring, False))
    if include_1way:
        for ring in ring_sizes:
            if ring >= 1024:
                configs.append(("high", ring, True))

    sweep: List[Tuple[str, Experiment]] = []
    for load_name, ring, one_way in configs:
        load = loads_gbps_per_nf[load_name]
        wire_bits = (packet_bytes + 24) * 8
        packets_needed = ring * ring_wraps
        needed_us = packets_needed * wire_bits / (load * 1e3)
        cell_duration = units.microseconds(
            min(max(duration_us, needed_us), max_duration_us)
        )
        exp = Experiment(
            name=f"fig4-{load_name}-ring{ring}{'-1way' if one_way else ''}",
            server=ServerConfig(
                app="touchdrop",
                ring_size=ring,
                packet_bytes=packet_bytes,
                nf_cat_ways=1 if one_way else None,
            ),
            traffic="steady",
            steady_rate_gbps_per_nf=load,
            steady_duration=cell_duration,
        )
        sweep.append((exp.name, exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for (load_name, ring, one_way), (name, _) in zip(configs, sweep):
        summary = results[name]
        rows.append(
            {
                "config": name,
                "load": load_name,
                "ring": ring,
                "one_way": one_way,
                "mlc_wb_per_rx_line": summary.rate_per_rx_line("mlc_writebacks"),
                "mlc_inval_per_rx_line": summary.rate_per_rx_line(
                    "mlc_invalidations"
                ),
                "dram_read_gbps": summary.dram_gbps("dram_reads"),
                "dram_write_gbps": summary.dram_gbps("dram_writes"),
                "rx_drops": summary.rx_drops,
            }
        )

    table = format_table(
        [
            "config",
            "MLC WB / RX line",
            "MLC inval / RX line",
            "DRAM rd Gbps",
            "DRAM wr Gbps",
            "drops",
        ],
        [
            [
                r["config"],
                r["mlc_wb_per_rx_line"],
                r["mlc_inval_per_rx_line"],
                r["dram_read_gbps"],
                r["dram_write_gbps"],
                r["rx_drops"],
            ]
            for r in rows
        ],
        title="Fig. 4 — MLC/DRAM leaks vs load and ring size (DDIO)",
    )
    notes = (
        f"\nPaper shape: ring 64 -> low MLC WB ratio & high invalidation ratio;"
        f"\n  ring >= 1024 -> MLC WB ratio ~{PAPER_FIG4_MLC_WB_RATIO_RING1024}x RX"
        " at every load; _1way at high load -> much higher DRAM write BW."
    )
    return FigureReport("fig4", "MLC and DRAM leaks (DDIO)", rows, table + notes, results)


# ---------------------------------------------------------------------------
# Fig. 5 — MLC/LLC writeback timeline over bursts (DDIO baseline)
# ---------------------------------------------------------------------------

def fig5(
    ring_size: int = 1024,
    num_bursts: int = 3,
    burst_rate_gbps: float = 100.0,
    burst_period_ms: float = 10.0,
    jobs: int = 1,
) -> FigureReport:
    """Fig. 5: writeback phases (DMA phase vs execution phase) under DDIO."""
    exp = _bursty_experiment(
        "fig5", burst_rate_gbps, ring_size, num_bursts=num_bursts
    )
    exp = replace(exp, burst_period=units.milliseconds(burst_period_ms))
    results = run_named_experiments([("ddio", exp)], jobs=jobs)
    result = results["ddio"]

    mlc_tl = result.timeline("mlc_writebacks")
    llc_tl = result.timeline("llc_writebacks")
    dma_tl = result.timeline("pcie_writes")
    rows = [
        {
            "stream": "mlc_writebacks",
            "total": result.window.mlc_writebacks,
            "peak_mtps": max((v for _, v in mlc_tl), default=0.0),
        },
        {
            "stream": "llc_writebacks",
            "total": result.window.llc_writebacks,
            "peak_mtps": max((v for _, v in llc_tl), default=0.0),
        },
    ]
    text = "\n".join(
        [
            "Fig. 5 — writebacks processing bursty traffic (DDIO, TouchDrop)",
            timeline_block("DMA writes", dma_tl),
            timeline_block("MLC writebacks", mlc_tl),
            timeline_block("LLC writebacks", llc_tl),
            f"totals: MLC WB={result.window.mlc_writebacks} "
            f"LLC WB={result.window.llc_writebacks} "
            f"DRAM wr={result.window.dram_writes}",
            "Paper shape: LLC WBs spike during the DMA phase (DMA leak), MLC",
            "WBs dominate the execution phase (dead-buffer writebacks).",
        ]
    )
    return FigureReport("fig5", "Burst writeback timeline (DDIO)", rows, text, results)


# ---------------------------------------------------------------------------
# Fig. 9 — per-policy writeback timelines at 100/25 Gbps bursts
# ---------------------------------------------------------------------------

FIG9_POLICY_ORDER = ["ddio", "invalidate", "prefetch", "static", "idio"]


def fig9(
    burst_rates: Sequence[float] = (100.0, 25.0),
    ring_size: int = 1024,
    policy_names: Sequence[str] = tuple(FIG9_POLICY_ORDER),
    jobs: int = 1,
) -> FigureReport:
    """Fig. 9: the five placement configurations, one burst each."""
    sweep: List[Tuple[str, Experiment]] = []
    for rate in burst_rates:
        for name in policy_names:
            policy = policies.policy_by_name(name)
            exp = _bursty_experiment(
                f"fig9-{name}-{rate:g}g", rate, ring_size
            ).with_policy(policy)
            sweep.append((f"{name}@{rate:g}g", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    blocks: List[str] = ["Fig. 9 — per-policy writebacks (TouchDrop, one burst)"]
    for rate in burst_rates:
        for name in policy_names:
            key = f"{name}@{rate:g}g"
            result = results[key]
            rows.append(
                {
                    "policy": name,
                    "rate_gbps": rate,
                    "mlc_wb": result.window.mlc_writebacks,
                    "llc_wb": result.window.llc_writebacks,
                    "dram_wr": result.window.dram_writes,
                    "burst_time_us": _us(result.burst_processing_time),
                }
            )
            blocks.append(
                timeline_block(
                    f"{key} MLC WB", result.timeline("mlc_writebacks")
                )
            )
            blocks.append(
                timeline_block(
                    f"{key} LLC WB", result.timeline("llc_writebacks")
                )
            )

    table = format_table(
        ["policy", "rate", "MLC WB", "LLC WB", "DRAM wr", "burst time us"],
        [
            [r["policy"], r["rate_gbps"], r["mlc_wb"], r["llc_wb"], r["dram_wr"], r["burst_time_us"]]
            for r in rows
        ],
    )
    blocks.append(table)
    blocks.append(
        "Paper shape: Invalidate kills most MLC WBs; Prefetch shortens the"
        "\nburst; Static == IDIO except MLC WB overshoot at 100 Gbps; IDIO"
        "\ncuts LLC WBs at every rate."
    )
    return FigureReport("fig9", "Policy writeback timelines", rows, "\n".join(blocks), results)


# ---------------------------------------------------------------------------
# Fig. 10 — normalized transactions + burst processing time
# ---------------------------------------------------------------------------

def fig10(
    burst_rates: Sequence[float] = (100.0, 25.0, 10.0),
    ring_size: int = 1024,
    include_static: bool = True,
    include_corun: bool = True,
    corun_rates: Sequence[float] = (100.0, 25.0),
    jobs: int = 1,
) -> FigureReport:
    """Fig. 10: Static/IDIO stats normalized to DDIO, plus the co-run."""

    def experiment(rate: float, policy_name: str, antagonist: bool) -> Experiment:
        policy = policies.policy_by_name(policy_name)
        return _bursty_experiment(
            f"fig10-{policy_name}-{rate:g}g{'-corun' if antagonist else ''}",
            rate,
            ring_size,
            antagonist=antagonist,
        ).with_policy(policy)

    scenario_policies = ["static", "idio"] if include_static else ["idio"]
    sweep: List[Tuple[str, Experiment]] = []
    for rate in burst_rates:
        for name in ["ddio"] + scenario_policies:
            exp = experiment(rate, name, False)
            sweep.append((exp.name, exp))
    if include_corun:
        for rate in corun_rates:
            for name in ("ddio", "idio"):
                exp = experiment(rate, name, True)
                sweep.append((exp.name, exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for rate in burst_rates:
        baseline = results[f"fig10-ddio-{rate:g}g"]
        for name in scenario_policies:
            result = results[f"fig10-{name}-{rate:g}g"]
            normalized = result.normalized_to(baseline)
            rows.append(
                {
                    "scenario": "solo",
                    "policy": name,
                    "rate_gbps": rate,
                    **normalized,
                    "paper_mlc_wb": _paper_norm(PAPER_FIG10_MLC_WB_REDUCTION, rate)
                    if name == "idio"
                    else None,
                    "paper_exe": _paper_norm(PAPER_FIG10_EXE_IMPROVEMENT, rate)
                    if name == "idio"
                    else None,
                }
            )

    if include_corun:
        for rate in corun_rates:
            baseline = results[f"fig10-ddio-{rate:g}g-corun"]
            result = results[f"fig10-idio-{rate:g}g-corun"]
            normalized = result.normalized_to(baseline)
            row: Dict[str, object] = {
                "scenario": "corun",
                "policy": "idio",
                "rate_gbps": rate,
                **normalized,
                "paper_mlc_wb": None,
                "paper_exe": _paper_norm(PAPER_FIG10_CORUN_EXE_IMPROVEMENT, rate),
            }
            if (
                result.antagonist_access_ns
                and baseline.antagonist_access_ns
                and baseline.antagonist_access_ns > 0
            ):
                row["antagonist_access_ratio"] = (
                    result.antagonist_access_ns / baseline.antagonist_access_ns
                )
            rows.append(row)

    table = format_table(
        [
            "scenario",
            "policy",
            "rate",
            "MLC WB (norm)",
            "LLC WB (norm)",
            "DRAM rd (norm)",
            "DRAM wr (norm)",
            "Exe time (norm)",
            "paper MLC WB",
            "paper Exe",
        ],
        [
            [
                r["scenario"],
                r["policy"],
                r["rate_gbps"],
                r.get("mlc_writebacks"),
                r.get("llc_writebacks"),
                r.get("dram_reads"),
                r.get("dram_writes"),
                r.get("exe_time"),
                r.get("paper_mlc_wb"),
                r.get("paper_exe"),
            ]
            for r in rows
        ],
        title="Fig. 10 — transactions & exe time normalized to DDIO (lower is better)",
    )
    return FigureReport("fig10", "Normalized transactions", rows, table, results)


# ---------------------------------------------------------------------------
# Fig. 11 — L2Fwd timelines (shallow NF) + direct DRAM variant
# ---------------------------------------------------------------------------

def fig11(
    burst_rate_gbps: float = 100.0,
    ring_size: int = 1024,
    packet_bytes: int = 1024,
    include_payload_drop: bool = True,
    jobs: int = 1,
) -> FigureReport:
    """Fig. 11: zero-copy L2Fwd under DDIO vs IDIO, plus the class-1 variant."""
    sweep: List[Tuple[str, Experiment]] = []
    for name in ("ddio", "idio"):
        policy = policies.policy_by_name(name)
        exp = _bursty_experiment(
            f"fig11-{name}", burst_rate_gbps, ring_size, packet_bytes, app="l2fwd"
        ).with_policy(policy)
        sweep.append((name, exp))
    if include_payload_drop:
        exp = _bursty_experiment(
            "fig11-payload-drop",
            burst_rate_gbps,
            ring_size,
            packet_bytes,
            app="l2fwd-payload-drop",
        ).with_policy(policies.idio())
        sweep.append(("idio-payload-drop", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    blocks: List[str] = ["Fig. 11 — L2Fwd (zero-copy forward), 1024 B packets"]
    for name in ("ddio", "idio"):
        result = results[name]
        rows.append(_fig11_row(name, result))
        blocks.append(timeline_block(f"{name} MLC WB", result.timeline("mlc_writebacks")))
        blocks.append(timeline_block(f"{name} LLC WB", result.timeline("llc_writebacks")))
    if include_payload_drop:
        rows.append(_fig11_row("idio-payload-drop", results["idio-payload-drop"]))

    table = format_table(
        ["config", "MLC WB", "LLC WB", "DRAM wr", "direct DRAM wr", "TX pkts"],
        [
            [
                r["config"],
                r["mlc_wb"],
                r["llc_wb"],
                r["dram_wr"],
                r["direct_dram_wr"],
                r["tx_packets"],
            ]
            for r in rows
        ],
    )
    blocks.append(table)
    blocks.append(
        "Paper shape: DDIO shows ~no MLC activity but rising LLC WBs; IDIO"
        "\nadmits data to the idle MLC and invalidates after TX; the class-1"
        "\nvariant pushes payload DRAM writes ~= RX bandwidth."
    )
    return FigureReport("fig11", "L2Fwd timelines", rows, "\n".join(blocks), results)


def _fig11_row(name: str, result: ExperimentSummary) -> Dict[str, object]:
    return {
        "config": name,
        "mlc_wb": result.window.mlc_writebacks,
        "llc_wb": result.window.llc_writebacks,
        "dram_wr": result.window.dram_writes,
        "direct_dram_wr": result.counters.get("direct_dram_writes", 0),
        "tx_packets": result.tx_packets,
    }


# ---------------------------------------------------------------------------
# Fig. 12 — p50/p99 packet latency, solo and co-run
# ---------------------------------------------------------------------------

def fig12(
    burst_rates: Sequence[float] = (100.0, 25.0, 10.0),
    ring_size: int = 1024,
    include_corun: bool = True,
    jobs: int = 1,
) -> FigureReport:
    """Fig. 12: tail latency of TouchDrop under DDIO vs IDIO."""
    scenarios = [("solo", False)] + ([("corun", True)] if include_corun else [])

    sweep: List[Tuple[str, Experiment]] = []
    for scenario, antagonist in scenarios:
        for rate in burst_rates:
            for name in ("ddio", "idio"):
                policy = policies.policy_by_name(name)
                exp = _bursty_experiment(
                    f"fig12-{name}-{rate:g}g-{scenario}",
                    rate,
                    ring_size,
                    antagonist=antagonist,
                ).with_policy(policy)
                sweep.append((exp.name, exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    for scenario, _ in scenarios:
        for rate in burst_rates:
            base = results[f"fig12-ddio-{rate:g}g-{scenario}"]
            result = results[f"fig12-idio-{rate:g}g-{scenario}"]
            paper = (
                PAPER_FIG12_P99_REDUCTION_SOLO
                if scenario == "solo"
                else PAPER_FIG12_P99_REDUCTION_CORUN
            ).get(rate)
            rows.append(
                {
                    "scenario": scenario,
                    "rate_gbps": rate,
                    "ddio_p50_us": _us_f(base.p50_ns),
                    "idio_p50_us": _us_f(result.p50_ns),
                    "ddio_p99_us": _us_f(base.p99_ns),
                    "idio_p99_us": _us_f(result.p99_ns),
                    "p99_reduction_pct": metrics.reduction_percent(
                        base.p99_ns or 0.0, result.p99_ns or 0.0
                    ),
                    "paper_p99_reduction_pct": paper,
                }
            )

    table = format_table(
        [
            "scenario",
            "rate",
            "DDIO p50 us",
            "IDIO p50 us",
            "DDIO p99 us",
            "IDIO p99 us",
            "p99 cut %",
            "paper p99 cut %",
        ],
        [
            [
                r["scenario"],
                r["rate_gbps"],
                r["ddio_p50_us"],
                r["idio_p50_us"],
                r["ddio_p99_us"],
                r["idio_p99_us"],
                r["p99_reduction_pct"],
                r["paper_p99_reduction_pct"],
            ]
            for r in rows
        ],
        title="Fig. 12 — TouchDrop latency percentiles (1514 B packets)",
    )
    return FigureReport("fig12", "Tail latency", rows, table, results)


# ---------------------------------------------------------------------------
# Fig. 13 — steady-traffic writeback timelines
# ---------------------------------------------------------------------------

def fig13(
    rate_gbps_per_nf: float = 10.0,
    ring_size: int = 1024,
    duration_us: float = 1500.0,
    jobs: int = 1,
) -> FigureReport:
    """Fig. 13: steady 10 Gbps/NF TouchDrop under DDIO vs IDIO."""
    sweep: List[Tuple[str, Experiment]] = []
    for name in ("ddio", "idio"):
        policy = policies.policy_by_name(name)
        exp = Experiment(
            name=f"fig13-{name}",
            server=ServerConfig(app="touchdrop", ring_size=ring_size),
            traffic="steady",
            steady_rate_gbps_per_nf=rate_gbps_per_nf,
            steady_duration=units.microseconds(duration_us),
        ).with_policy(policy)
        sweep.append((name, exp))
    results = run_named_experiments(sweep, jobs=jobs)

    rows: List[Dict[str, object]] = []
    blocks: List[str] = [
        f"Fig. 13 — steady {rate_gbps_per_nf:g} Gbps per NF (TouchDrop)"
    ]
    for name in ("ddio", "idio"):
        result = results[name]
        rows.append(
            {
                "policy": name,
                "mlc_wb": result.window.mlc_writebacks,
                "llc_wb": result.window.llc_writebacks,
                "dram_wr": result.window.dram_writes,
                "rx_drops": result.rx_drops,
            }
        )
        blocks.append(timeline_block(f"{name} MLC WB", result.timeline("mlc_writebacks")))
        blocks.append(timeline_block(f"{name} LLC WB", result.timeline("llc_writebacks")))

    table = format_table(
        ["policy", "MLC WB", "LLC WB", "DRAM wr", "drops"],
        [[r["policy"], r["mlc_wb"], r["llc_wb"], r["dram_wr"], r["rx_drops"]] for r in rows],
    )
    blocks.append(table)
    blocks.append(
        "Paper shape: DDIO shows consistent MLC (and some LLC) WBs at steady"
        "\nload; IDIO's self-invalidation removes most of them."
    )
    return FigureReport("fig13", "Steady-traffic writebacks", rows, "\n".join(blocks), results)


# ---------------------------------------------------------------------------
# Fig. 14 — sensitivity to mlcTHR
# ---------------------------------------------------------------------------

def fig14(
    thresholds_mtps: Sequence[float] = (10.0, 25.0, 50.0, 75.0, 100.0),
    burst_rate_gbps: float = 100.0,
    ring_size: int = 1024,
    jobs: int = 1,
) -> FigureReport:
    """Fig. 14: sweep mlcTHR from 10 to 100 MTPS at the 100 Gbps burst."""
    sweep: List[Tuple[str, Experiment]] = [
        ("ddio", _bursty_experiment("fig14-ddio", burst_rate_gbps, ring_size))
    ]
    for thr in thresholds_mtps:
        policy = policies.idio().with_threshold(thr)
        exp = _bursty_experiment(
            f"fig14-idio-thr{thr:g}", burst_rate_gbps, ring_size
        ).with_policy(policy)
        sweep.append((f"thr{thr:g}", exp))
    results = run_named_experiments(sweep, jobs=jobs)

    baseline = results["ddio"]
    rows: List[Dict[str, object]] = []
    for thr in thresholds_mtps:
        normalized = results[f"thr{thr:g}"].normalized_to(baseline)
        rows.append({"mlc_thr_mtps": thr, **normalized})

    table = format_table(
        ["mlcTHR (MTPS)", "MLC WB", "LLC WB", "DRAM rd", "DRAM wr", "Exe time"],
        [
            [
                r["mlc_thr_mtps"],
                r.get("mlc_writebacks"),
                r.get("llc_writebacks"),
                r.get("dram_reads"),
                r.get("dram_writes"),
                r.get("exe_time"),
            ]
            for r in rows
        ],
        title="Fig. 14 — IDIO/DDIO ratios vs mlcTHR (100 Gbps burst; flat = insensitive)",
    )
    return FigureReport("fig14", "mlcTHR sensitivity", rows, table, results)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _us(ticks: Optional[int]) -> Optional[float]:
    if ticks is None:
        return None
    return units.to_microseconds(ticks)


def _us_f(ns: Optional[float]) -> Optional[float]:
    if ns is None:
        return None
    return ns / 1000.0


def _paper_norm(table: Dict[float, float], rate: float) -> Optional[float]:
    """Convert a paper 'X % reduction' entry into a normalized ratio."""
    pct = table.get(rate)
    if pct is None:
        return None
    return 1.0 - pct / 100.0
