"""Parallel experiment runner: fan sweeps out over a process pool.

Every figure in the evaluation is a sweep of independent, seeded
:class:`~repro.harness.experiment.Experiment` runs, so the natural unit
of parallelism is one experiment per worker process.  Workers return
:class:`~repro.harness.experiment.ExperimentSummary` objects — the slim,
picklable slice of a run — never the live server, which keeps the
transfer cheap and the parent's memory flat over long sweeps.

Guarantees:

* **Determinism** — an experiment carries its own seeds; a worker process
  replays it identically to a serial run (the determinism regression test
  compares the two fingerprints byte for byte).
* **Ordered results** — ``run_experiments`` returns summaries in the
  order the experiments were given, regardless of completion order.
* **Graceful fallback** — ``jobs <= 1``, a single experiment, or a host
  where process pools cannot be created (sandboxes without ``fork`` /
  semaphores) all degrade to the serial path with identical results.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .experiment import Experiment, ExperimentSummary, run_experiment


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores" (``jobs=None``)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_experiment_summary(experiment: Experiment) -> ExperimentSummary:
    """Run one experiment and reduce it to a summary, releasing the server."""
    result = run_experiment(experiment)
    summary = result.summary()
    result.drop_server()
    return summary


def _run_serial(experiments: Sequence[Experiment]) -> List[ExperimentSummary]:
    return [run_experiment_summary(exp) for exp in experiments]


def run_experiments(
    experiments: Iterable[Experiment], jobs: int = 1
) -> List[ExperimentSummary]:
    """Run a batch of experiments, ``jobs`` at a time, preserving order.

    ``jobs=1`` (the default) runs serially in-process; ``jobs=None`` uses
    one worker per available core.  The pool path and the serial path
    produce identical summaries for seeded experiments.
    """
    batch = list(experiments)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(batch) <= 1:
        return _run_serial(batch)
    try:
        pool = multiprocessing.get_context().Pool(min(jobs, len(batch)))
    except (OSError, PermissionError, ValueError):
        # No semaphores / fork support (restricted sandbox): run serially.
        return _run_serial(batch)
    try:
        return pool.map(run_experiment_summary, batch, chunksize=1)
    finally:
        pool.close()
        pool.join()


# ----------------------------------------------------------------------
# resilient sweeps
# ----------------------------------------------------------------------


class InjectedCrash(RuntimeError):
    """Raised by a worker whose experiment carries a ``harness.crash``
    fault — the deterministic stand-in for a worker that dies mid-sweep."""


def _apply_harness_faults(experiment: Experiment, attempt: int) -> None:
    """Execute the ``harness.*`` fault kinds for one worker attempt.

    ``harness.crash`` raises before the simulation starts; ``magnitude``
    is the number of attempts that crash (0 = every attempt, so the
    experiment can never succeed).  ``harness.hang`` sleeps ``magnitude``
    wall seconds, which is how the timeout path is tested without a real
    wedge.  ``probability`` gates each fault with a draw derived from
    ``(plan seed, spec index, attempt)`` so retries re-roll
    deterministically.
    """
    plan = experiment.server.fault_plan
    for i, spec in plan.specs_for("harness"):
        if spec.probability < 1.0:
            draw = random.Random((plan.rng_seed(i) << 7) ^ attempt).random()
            if draw >= spec.probability:
                continue
        if spec.kind == "harness.crash":
            crashing = int(spec.magnitude)
            if crashing == 0 or attempt <= crashing:
                raise InjectedCrash(
                    f"injected worker crash (attempt {attempt})"
                )
        elif spec.kind == "harness.hang":
            time.sleep(spec.magnitude)


def _sweep_worker(job: Tuple[Experiment, int]) -> ExperimentSummary:
    """Pool entry point: apply harness faults, then run one experiment."""
    experiment, attempt = job
    _apply_harness_faults(experiment, attempt)
    return run_experiment_summary(experiment)


@dataclass
class SweepRecord:
    """The fate of one experiment inside a resilient sweep."""

    name: str
    #: "ok", "retried" (succeeded after >= 1 crash), "timeout", "failed".
    status: str
    attempts: int
    error: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "retried")


@dataclass
class SweepResult:
    """Partial-result report of one sweep: every experiment is accounted
    for, whether it produced a summary or not.

    ``summaries[i]`` is ``None`` exactly when ``records[i]`` reports a
    timeout or failure, so positional pairing with the input experiments
    is preserved even through losses.
    """

    summaries: List[Optional[ExperimentSummary]] = field(default_factory=list)
    records: List[SweepRecord] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        """``{status: count}`` over every record (absent statuses omitted)."""
        out: Dict[str, int] = {}
        for rec in self.records:
            out[rec.status] = out.get(rec.status, 0) + 1
        return out

    @property
    def num_failed(self) -> int:
        return sum(1 for rec in self.records if not rec.succeeded)

    @property
    def exit_code(self) -> int:
        """0 = all succeeded; 1 = partial failure; 2 = nothing succeeded."""
        if self.num_failed == 0:
            return 0
        if self.num_failed == len(self.records):
            return 2
        return 1

    def failure_manifest(self) -> Dict[str, Any]:
        """A JSON-able report of the sweep's losses (for CI artifacts)."""
        return {
            "total": len(self.records),
            "counts": self.counts(),
            "exit_code": self.exit_code,
            "failures": [
                {
                    "name": rec.name,
                    "status": rec.status,
                    "attempts": rec.attempts,
                    "error": rec.error,
                    "wall_seconds": round(rec.wall_seconds, 3),
                }
                for rec in self.records
                if not rec.succeeded
            ],
        }


def _finish_summary(
    summary: ExperimentSummary, attempts: int
) -> Tuple[ExperimentSummary, SweepRecord]:
    summary.status = "ok" if attempts == 1 else "retried"
    summary.attempts = attempts
    record = SweepRecord(
        name=summary.experiment.name,
        status=summary.status,
        attempts=attempts,
        wall_seconds=summary.wall_seconds,
    )
    return summary, record


def _run_sweep_serial(
    batch: Sequence[Experiment],
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
) -> SweepResult:
    """In-process sweep with the same crash/retry semantics as the pool.

    Timeouts are best-effort here: a run is marked ``timeout`` when its
    wall time *exceeded* the budget (serial execution cannot interrupt a
    wedged simulation the way the pool's ``get(timeout)`` can).
    """
    result = SweepResult()
    for exp in batch:
        attempts = 0
        start = time.perf_counter()
        while True:
            attempts += 1
            try:
                summary = _sweep_worker((exp, attempts))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                if attempts <= retries:
                    time.sleep(retry_backoff_s * attempts)
                    continue
                result.summaries.append(None)
                result.records.append(
                    SweepRecord(
                        name=exp.name,
                        status="failed",
                        attempts=attempts,
                        error=f"{type(exc).__name__}: {exc}",
                        wall_seconds=time.perf_counter() - start,
                    )
                )
                break
            wall = time.perf_counter() - start
            if timeout_s is not None and wall > timeout_s:
                result.summaries.append(None)
                result.records.append(
                    SweepRecord(
                        name=exp.name,
                        status="timeout",
                        attempts=attempts,
                        error=f"exceeded {timeout_s}s budget",
                        wall_seconds=wall,
                    )
                )
                break
            summary, record = _finish_summary(summary, attempts)
            record.wall_seconds = wall
            result.summaries.append(summary)
            result.records.append(record)
            break
    return result


def run_sweep(
    experiments: Iterable[Experiment],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    retry_backoff_s: float = 0.05,
) -> SweepResult:
    """Run a sweep that survives crashed, hung, and failing experiments.

    Unlike :func:`run_experiments` (which propagates the first worker
    exception and loses the whole batch), every experiment here resolves
    to a :class:`SweepRecord`: crashes are retried up to ``retries``
    extra attempts with linear backoff, a worker that exceeds
    ``timeout_s`` wall seconds is abandoned and reported as ``timeout``,
    and the rest of the sweep completes regardless.  ``jobs``/``jobs=None``
    follow :func:`run_experiments`; a host without process pools degrades
    to the serial path (where timeouts are detected after the fact rather
    than enforced).
    """
    batch = list(experiments)
    if jobs is None:
        jobs = default_jobs()
    if not batch:
        return SweepResult()
    if jobs <= 1:
        return _run_sweep_serial(batch, timeout_s, retries, retry_backoff_s)
    try:
        pool = multiprocessing.get_context().Pool(min(jobs, len(batch)))
    except (OSError, PermissionError, ValueError):
        return _run_sweep_serial(batch, timeout_s, retries, retry_backoff_s)

    result = SweepResult()
    timed_out = False
    try:
        pending = [pool.apply_async(_sweep_worker, ((exp, 1),)) for exp in batch]
        for exp, handle in zip(batch, pending):
            attempts = 1
            start = time.perf_counter()
            while True:
                try:
                    summary = handle.get(timeout_s)
                except multiprocessing.TimeoutError:
                    # The worker is still wedged in its pool slot; the
                    # pool is terminated (not joined) once all results
                    # are accounted for.
                    timed_out = True
                    result.summaries.append(None)
                    result.records.append(
                        SweepRecord(
                            name=exp.name,
                            status="timeout",
                            attempts=attempts,
                            error=f"no result within {timeout_s}s",
                            wall_seconds=time.perf_counter() - start,
                        )
                    )
                    break
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    if attempts <= retries:
                        time.sleep(retry_backoff_s * attempts)
                        attempts += 1
                        handle = pool.apply_async(_sweep_worker, ((exp, attempts),))
                        continue
                    result.summaries.append(None)
                    result.records.append(
                        SweepRecord(
                            name=exp.name,
                            status="failed",
                            attempts=attempts,
                            error=f"{type(exc).__name__}: {exc}",
                            wall_seconds=time.perf_counter() - start,
                        )
                    )
                    break
                summary, record = _finish_summary(summary, attempts)
                record.wall_seconds = time.perf_counter() - start
                result.summaries.append(summary)
                result.records.append(record)
                break
    finally:
        if timed_out:
            pool.terminate()
        else:
            pool.close()
        pool.join()
    return result


def run_named_experiments(
    named: Sequence[Tuple[str, Experiment]], jobs: int = 1
) -> Dict[str, ExperimentSummary]:
    """Run ``(key, experiment)`` pairs and return ``{key: summary}``.

    The figure harness builds its result dictionaries this way: declare
    the whole sweep up front, fan it out, then index summaries by key.
    Insertion order of the dict follows the input order.
    """
    summaries = run_experiments([exp for _, exp in named], jobs=jobs)
    return {key: summary for (key, _), summary in zip(named, summaries)}
