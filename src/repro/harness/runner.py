"""Parallel experiment runner: fan sweeps out over a warm process pool.

Every figure in the evaluation is a sweep of independent, seeded
:class:`~repro.harness.experiment.Experiment` runs, so the natural unit
of parallelism is one experiment per worker process.  Workers return
:class:`~repro.harness.experiment.ExperimentSummary` objects — the slim,
picklable slice of a run — never the live server, which keeps the
transfer cheap and the parent's memory flat over long sweeps.

The pool is *warm*: created once per session (first parallel call) and
reused by every subsequent ``run_experiments`` / ``run_sweep`` until
:func:`shutdown_pool` (registered via ``atexit``, wrapped by
:func:`pool_session`).  Short sweeps no longer pay pool spawn on every
call, and tasks no longer carry pickled experiments: each batch is
broadcast once through a spool file tagged with a generation counter,
workers memoize the table per generation, and the per-task payload is a
``(generation, index)`` tuple.  Fork hosts additionally inherit all
read-only module state (configs, policies) for free at pool creation.

Guarantees:

* **Determinism** — an experiment carries its own seeds; a worker process
  replays it identically to a serial run (the determinism regression test
  compares the two fingerprints byte for byte).
* **Ordered results** — ``run_experiments`` returns summaries in the
  order the experiments were given, regardless of completion order.
* **Graceful fallback** — ``jobs <= 1``, a single experiment, or a host
  where process pools cannot be created (sandboxes without ``fork`` /
  semaphores) all degrade to the serial path with identical results.
* **Containment** — a sweep timeout terminates and discards the session
  pool (a wedged worker cannot be reclaimed); the next parallel call
  transparently warms a fresh one.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import os
import pickle
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..cache import resolve_cache
from .experiment import Experiment, ExperimentSummary, run_experiment


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores" (``jobs=None``)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_experiment_summary(experiment: Experiment) -> ExperimentSummary:
    """Run one experiment and reduce it to a summary, releasing the server."""
    result = run_experiment(experiment)
    summary = result.summary()
    result.drop_server()
    return summary


def _run_serial(experiments: Sequence[Experiment]) -> List[ExperimentSummary]:
    return [run_experiment_summary(exp) for exp in experiments]


# ----------------------------------------------------------------------
# warm worker pool
# ----------------------------------------------------------------------

# Worker-side state.  ``_worker_init`` runs once per worker process and
# records where batches are spooled; ``_worker_table`` memoizes the most
# recently loaded batch so the spool file is read once per (worker,
# generation), not once per task.
_worker_spool: Optional[str] = None
_worker_generation: int = -1
_worker_table: List[Experiment] = []


def _worker_init(spool_path: str) -> None:
    global _worker_spool
    _worker_spool = spool_path


def _worker_experiment(generation: int, index: int) -> Experiment:
    global _worker_generation, _worker_table
    if generation != _worker_generation:
        assert _worker_spool is not None, "worker used before initialization"
        with open(_worker_spool, "rb") as fh:
            spooled_generation, table = pickle.load(fh)
        if spooled_generation != generation:
            # A new batch was broadcast while this stale task sat queued;
            # its result has no consumer, so failing loudly is safe.
            raise RuntimeError(
                f"stale pool task: generation {generation} requested but "
                f"generation {spooled_generation} is spooled"
            )
        _worker_generation, _worker_table = spooled_generation, table
    return _worker_table[index]


def _run_indexed(task: Tuple[int, int]) -> ExperimentSummary:
    """Pool entry point for plain batches: ``(generation, index)``."""
    generation, index = task
    return run_experiment_summary(_worker_experiment(generation, index))


def _run_indexed_attempt(task: Tuple[int, int, int]) -> ExperimentSummary:
    """Pool entry point for resilient sweeps: applies harness faults."""
    generation, index, attempt = task
    experiment = _worker_experiment(generation, index)
    _apply_harness_faults(experiment, attempt)
    return run_experiment_summary(experiment)


def _chunksize(num_tasks: int, workers: int) -> int:
    """Adaptive chunk size: ~4 chunks per worker.

    Large enough to amortize IPC per task, small enough that a slow
    chunk cannot idle the rest of the pool for long (each worker gets
    several bites at the queue, so stragglers rebalance).
    """
    return max(1, num_tasks // (workers * 4))


class WarmPool:
    """A reusable process pool fed through a generation-tagged spool file.

    ``broadcast`` pickles the batch *once* to the spool file;
    ``map``/``submit`` then dispatch ``(generation, index)`` tuples.
    Workers reload the table only when the generation changes, so a
    thousand-experiment sweep pickles its experiments once rather than a
    thousand times, and repeat sweeps over the same pool pay no spawn.
    """

    def __init__(self, workers: int):
        self.workers = workers
        fd, spool_path = tempfile.mkstemp(prefix="repro-sweep-", suffix=".table")
        os.close(fd)
        self.spool_path = spool_path
        self.generation = 0
        self.batches_dispatched = 0
        try:
            self._pool = multiprocessing.get_context().Pool(
                workers, initializer=_worker_init, initargs=(spool_path,)
            )
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(spool_path)
            raise

    def broadcast(self, experiments: Sequence[Experiment]) -> int:
        """Publish a batch to the workers; returns its generation tag."""
        self.generation += 1
        staged = f"{self.spool_path}.{self.generation}"
        with open(staged, "wb") as fh:
            pickle.dump(
                (self.generation, list(experiments)),
                fh,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        # Atomic swap: a worker opening the spool sees either the old
        # complete table or the new complete table, never a torn write.
        os.replace(staged, self.spool_path)
        self.batches_dispatched += 1
        return self.generation

    def map(
        self, experiments: Sequence[Experiment], chunksize: int
    ) -> List[ExperimentSummary]:
        generation = self.broadcast(experiments)
        tasks = [(generation, index) for index in range(len(experiments))]
        return self._pool.map(_run_indexed, tasks, chunksize=chunksize)

    def submit(self, generation: int, index: int, attempt: int):
        """Async dispatch of one sweep attempt; returns the pool handle."""
        return self._pool.apply_async(
            _run_indexed_attempt, ((generation, index, attempt),)
        )

    def close(self, terminate: bool = False) -> None:
        if terminate:
            self._pool.terminate()
        else:
            self._pool.close()
        self._pool.join()
        with contextlib.suppress(OSError):
            os.unlink(self.spool_path)


_session_pool: Optional[WarmPool] = None

#: Introspection of the most recent dispatch decision (read by the bench
#: harness to record chunk sizes alongside throughput numbers).
last_dispatch: Dict[str, Any] = {}


def _note_dispatch(mode: str, workers: int, chunksize: int, batch: int) -> None:
    last_dispatch.clear()
    last_dispatch.update(
        {"mode": mode, "workers": workers, "chunksize": chunksize, "batch": batch}
    )


def get_pool(jobs: Optional[int]) -> Optional[WarmPool]:
    """Return the warm session pool, creating or growing it as needed.

    Returns ``None`` when ``jobs <= 1`` or the host cannot create process
    pools — callers fall back to the serial path.  A pool wider than
    requested is reused as-is (idle workers are free); a narrower one is
    replaced so ``jobs`` is always an upper bound honored by capacity.
    """
    global _session_pool
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1:
        return None
    pool = _session_pool
    if pool is not None and pool.workers >= jobs:
        return pool
    if pool is not None:
        shutdown_pool()
    try:
        _session_pool = WarmPool(jobs)
    except (OSError, PermissionError, ValueError):
        # No semaphores / fork support (restricted sandbox): no pool.
        _session_pool = None
    return _session_pool


def shutdown_pool(terminate: bool = False) -> None:
    """Tear down the session pool (idempotent; re-warmed on next use)."""
    global _session_pool
    pool = _session_pool
    _session_pool = None
    if pool is not None:
        pool.close(terminate=terminate)


atexit.register(shutdown_pool)


@contextlib.contextmanager
def pool_session(jobs: Optional[int] = None) -> Iterator[Optional[WarmPool]]:
    """Scope a warm pool to a ``with`` block: pre-warm, run, tear down.

    The CLI and the validation harness wrap their sweeps in this so a
    multi-figure session shares one pool and still exits clean.
    """
    pool = get_pool(jobs)
    try:
        yield pool
    finally:
        shutdown_pool()


def run_experiments(
    experiments: Iterable[Experiment], jobs: int = 1, cache=None
) -> List[ExperimentSummary]:
    """Run a batch of experiments, ``jobs`` at a time, preserving order.

    ``jobs=1`` (the default) runs serially in-process; ``jobs=None`` uses
    one worker per available core.  Parallel batches run on the warm
    session pool (created on first use, reused across calls) with an
    adaptive chunk size.  The pool path and the serial path produce
    identical summaries for seeded experiments.

    ``cache`` is consulted *before* dispatch: hits skip simulation
    entirely and only the misses fan out to the pool, after which each
    freshly computed summary is stored atomically.  ``cache=None``
    (default) uses the process-default cache if one is installed
    (:func:`repro.cache.set_default_cache`); ``cache=False`` disables
    caching for this call.  Cached and computed summaries are returned
    interleaved in input order, and a hit's fingerprint is byte-identical
    to what a cold run of the same experiment would produce.
    """
    batch = list(experiments)
    resolved = resolve_cache(cache)
    if resolved is None:
        return _run_uncached(batch, jobs)
    hits: Dict[int, ExperimentSummary] = {}
    misses: List[Tuple[int, Experiment]] = []
    for index, exp in enumerate(batch):
        summary = resolved.get(exp)
        if summary is not None:
            hits[index] = summary
        else:
            misses.append((index, exp))
    if not misses:
        _note_dispatch("cached", 0, 0, len(batch))
        return [hits[i] for i in range(len(batch))]
    computed = _run_uncached([exp for _, exp in misses], jobs)
    for (index, exp), summary in zip(misses, computed):
        resolved.put(exp, summary)
        hits[index] = summary
    return [hits[i] for i in range(len(batch))]


def _run_uncached(
    batch: List[Experiment], jobs: Optional[int]
) -> List[ExperimentSummary]:
    """The pre-cache dispatch logic: serial or warm-pool, order-preserving."""
    if jobs is None:
        jobs = default_jobs()
    pool = None
    if jobs > 1 and len(batch) > 1:
        pool = get_pool(jobs)
    if pool is None:
        _note_dispatch("serial", 1, 0, len(batch))
        return _run_serial(batch)
    chunksize = _chunksize(len(batch), pool.workers)
    _note_dispatch("warm-pool", pool.workers, chunksize, len(batch))
    return pool.map(batch, chunksize)


# ----------------------------------------------------------------------
# resilient sweeps
# ----------------------------------------------------------------------


class InjectedCrash(RuntimeError):
    """Raised by a worker whose experiment carries a ``harness.crash``
    fault — the deterministic stand-in for a worker that dies mid-sweep."""


def _apply_harness_faults(experiment: Experiment, attempt: int) -> None:
    """Execute the ``harness.*`` fault kinds for one worker attempt.

    ``harness.crash`` raises before the simulation starts; ``magnitude``
    is the number of attempts that crash (0 = every attempt, so the
    experiment can never succeed).  ``harness.hang`` sleeps ``magnitude``
    wall seconds, which is how the timeout path is tested without a real
    wedge.  ``probability`` gates each fault with a draw derived from
    ``(plan seed, spec index, attempt)`` so retries re-roll
    deterministically.
    """
    plan = experiment.server.fault_plan
    for i, spec in plan.specs_for("harness"):
        if spec.probability < 1.0:
            draw = random.Random((plan.rng_seed(i) << 7) ^ attempt).random()
            if draw >= spec.probability:
                continue
        if spec.kind == "harness.crash":
            crashing = int(spec.magnitude)
            if crashing == 0 or attempt <= crashing:
                raise InjectedCrash(
                    f"injected worker crash (attempt {attempt})"
                )
        elif spec.kind == "harness.hang":
            time.sleep(spec.magnitude)


def _sweep_worker(job: Tuple[Experiment, int]) -> ExperimentSummary:
    """Serial entry point: apply harness faults, then run one experiment."""
    experiment, attempt = job
    _apply_harness_faults(experiment, attempt)
    return run_experiment_summary(experiment)


@dataclass
class SweepRecord:
    """The fate of one experiment inside a resilient sweep."""

    name: str
    #: "ok", "retried" (succeeded after >= 1 crash), "cached" (served
    #: from the result cache, no simulation), "timeout", "failed".
    status: str
    attempts: int
    error: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.status in ("ok", "retried", "cached")


@dataclass
class SweepResult:
    """Partial-result report of one sweep: every experiment is accounted
    for, whether it produced a summary or not.

    ``summaries[i]`` is ``None`` exactly when ``records[i]`` reports a
    timeout or failure, so positional pairing with the input experiments
    is preserved even through losses.
    """

    summaries: List[Optional[ExperimentSummary]] = field(default_factory=list)
    records: List[SweepRecord] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        """``{status: count}`` over every record (absent statuses omitted)."""
        out: Dict[str, int] = {}
        for rec in self.records:
            out[rec.status] = out.get(rec.status, 0) + 1
        return out

    @property
    def num_failed(self) -> int:
        return sum(1 for rec in self.records if not rec.succeeded)

    @property
    def exit_code(self) -> int:
        """0 = all succeeded; 1 = partial failure; 2 = nothing succeeded."""
        if self.num_failed == 0:
            return 0
        if self.num_failed == len(self.records):
            return 2
        return 1

    def failure_manifest(self) -> Dict[str, Any]:
        """A JSON-able report of the sweep's losses (for CI artifacts)."""
        return {
            "total": len(self.records),
            "counts": self.counts(),
            "exit_code": self.exit_code,
            "failures": [
                {
                    "name": rec.name,
                    "status": rec.status,
                    "attempts": rec.attempts,
                    "error": rec.error,
                    "wall_seconds": round(rec.wall_seconds, 3),
                }
                for rec in self.records
                if not rec.succeeded
            ],
        }


def _finish_summary(
    summary: ExperimentSummary, attempts: int
) -> Tuple[ExperimentSummary, SweepRecord]:
    summary.status = "ok" if attempts == 1 else "retried"
    summary.attempts = attempts
    record = SweepRecord(
        name=summary.experiment.name,
        status=summary.status,
        attempts=attempts,
        wall_seconds=summary.wall_seconds,
    )
    return summary, record


def _run_sweep_serial(
    batch: Sequence[Experiment],
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
) -> SweepResult:
    """In-process sweep with the same crash/retry semantics as the pool.

    Timeouts are best-effort here: a run is marked ``timeout`` when its
    wall time *exceeded* the budget (serial execution cannot interrupt a
    wedged simulation the way the pool's ``get(timeout)`` can).
    """
    result = SweepResult()
    for exp in batch:
        attempts = 0
        start = time.perf_counter()
        while True:
            attempts += 1
            try:
                summary = _sweep_worker((exp, attempts))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                if attempts <= retries:
                    time.sleep(retry_backoff_s * attempts)
                    continue
                result.summaries.append(None)
                result.records.append(
                    SweepRecord(
                        name=exp.name,
                        status="failed",
                        attempts=attempts,
                        error=f"{type(exc).__name__}: {exc}",
                        wall_seconds=time.perf_counter() - start,
                    )
                )
                break
            wall = time.perf_counter() - start
            if timeout_s is not None and wall > timeout_s:
                result.summaries.append(None)
                result.records.append(
                    SweepRecord(
                        name=exp.name,
                        status="timeout",
                        attempts=attempts,
                        error=f"exceeded {timeout_s}s budget",
                        wall_seconds=wall,
                    )
                )
                break
            summary, record = _finish_summary(summary, attempts)
            record.wall_seconds = wall
            result.summaries.append(summary)
            result.records.append(record)
            break
    return result


def run_sweep(
    experiments: Iterable[Experiment],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    retry_backoff_s: float = 0.05,
    cache=None,
) -> SweepResult:
    """Run a sweep that survives crashed, hung, and failing experiments.

    Unlike :func:`run_experiments` (which propagates the first worker
    exception and loses the whole batch), every experiment here resolves
    to a :class:`SweepRecord`: crashes are retried up to ``retries``
    extra attempts with linear backoff, a worker that exceeds
    ``timeout_s`` wall seconds is abandoned and reported as ``timeout``,
    and the rest of the sweep completes regardless.  ``jobs``/``jobs=None``
    follow :func:`run_experiments` and share the same warm session pool;
    a host without process pools degrades to the serial path (where
    timeouts are detected after the fact rather than enforced).

    ``cache`` follows :func:`run_experiments`: hits are reported with
    status ``"cached"`` (``attempts=0``) and skip the worker entirely;
    clean first-try results are stored.  Experiments whose fault plan
    carries ``harness.*`` kinds are *uncacheable by design* — their
    crashes and hangs act on this runner, so they force-miss on every
    sweep and are never stored, keeping resilience paths live.

    A timeout poisons the pool — the wedged worker still occupies a
    slot — so the session pool is terminated and discarded; the next
    parallel call warms a fresh one.
    """
    batch = list(experiments)
    if not batch:
        return SweepResult()
    resolved = resolve_cache(cache)
    if resolved is None:
        return _run_sweep_uncached(batch, jobs, timeout_s, retries, retry_backoff_s)
    hits: Dict[int, ExperimentSummary] = {}
    misses: List[Tuple[int, Experiment]] = []
    for index, exp in enumerate(batch):
        summary = resolved.get(exp)
        if summary is not None:
            summary.status = "cached"
            summary.attempts = 0
            hits[index] = summary
        else:
            misses.append((index, exp))
    inner = _run_sweep_uncached(
        [exp for _, exp in misses], jobs, timeout_s, retries, retry_backoff_s
    )
    result = SweepResult(
        summaries=[hits.get(i) for i in range(len(batch))],
        records=[
            SweepRecord(name=batch[i].name, status="cached", attempts=0)
            if i in hits
            else None  # type: ignore[list-item] - filled below
            for i in range(len(batch))
        ],
    )
    for (index, exp), summary, record in zip(
        misses, inner.summaries, inner.records
    ):
        if summary is not None and summary.status == "ok":
            resolved.put(exp, summary)
        result.summaries[index] = summary
        result.records[index] = record
    return result


def _run_sweep_uncached(
    batch: Sequence[Experiment],
    jobs: Optional[int],
    timeout_s: Optional[float],
    retries: int,
    retry_backoff_s: float,
) -> SweepResult:
    """The pre-cache sweep machinery: warm pool with crash/timeout handling."""
    if jobs is None:
        jobs = default_jobs()
    if not batch:
        return SweepResult()
    pool = get_pool(jobs) if jobs > 1 else None
    if pool is None:
        return _run_sweep_serial(batch, timeout_s, retries, retry_backoff_s)

    generation = pool.broadcast(batch)
    _note_dispatch("warm-pool", pool.workers, 1, len(batch))
    result = SweepResult()
    timed_out = False
    pending = [pool.submit(generation, i, 1) for i in range(len(batch))]
    for index, (exp, handle) in enumerate(zip(batch, pending)):
        attempts = 1
        start = time.perf_counter()
        while True:
            try:
                summary = handle.get(timeout_s)
            except multiprocessing.TimeoutError:
                # The worker is still wedged in its pool slot; remaining
                # handles are drained first, then the pool is torn down.
                timed_out = True
                result.summaries.append(None)
                result.records.append(
                    SweepRecord(
                        name=exp.name,
                        status="timeout",
                        attempts=attempts,
                        error=f"no result within {timeout_s}s",
                        wall_seconds=time.perf_counter() - start,
                    )
                )
                break
            except Exception as exc:  # noqa: BLE001 - report, don't die
                if attempts <= retries:
                    time.sleep(retry_backoff_s * attempts)
                    attempts += 1
                    handle = pool.submit(generation, index, attempts)
                    continue
                result.summaries.append(None)
                result.records.append(
                    SweepRecord(
                        name=exp.name,
                        status="failed",
                        attempts=attempts,
                        error=f"{type(exc).__name__}: {exc}",
                        wall_seconds=time.perf_counter() - start,
                    )
                )
                break
            summary, record = _finish_summary(summary, attempts)
            record.wall_seconds = time.perf_counter() - start
            result.summaries.append(summary)
            result.records.append(record)
            break
    if timed_out:
        shutdown_pool(terminate=True)
    return result


def run_named_experiments(
    named: Sequence[Tuple[str, Experiment]], jobs: int = 1, cache=None
) -> Dict[str, ExperimentSummary]:
    """Run ``(key, experiment)`` pairs and return ``{key: summary}``.

    The figure harness builds its result dictionaries this way: declare
    the whole sweep up front, fan it out, then index summaries by key.
    Insertion order of the dict follows the input order.  ``cache``
    follows :func:`run_experiments`.
    """
    summaries = run_experiments([exp for _, exp in named], jobs=jobs, cache=cache)
    return {key: summary for (key, _), summary in zip(named, summaries)}
