"""Parallel experiment runner: fan sweeps out over a process pool.

Every figure in the evaluation is a sweep of independent, seeded
:class:`~repro.harness.experiment.Experiment` runs, so the natural unit
of parallelism is one experiment per worker process.  Workers return
:class:`~repro.harness.experiment.ExperimentSummary` objects — the slim,
picklable slice of a run — never the live server, which keeps the
transfer cheap and the parent's memory flat over long sweeps.

Guarantees:

* **Determinism** — an experiment carries its own seeds; a worker process
  replays it identically to a serial run (the determinism regression test
  compares the two fingerprints byte for byte).
* **Ordered results** — ``run_experiments`` returns summaries in the
  order the experiments were given, regardless of completion order.
* **Graceful fallback** — ``jobs <= 1``, a single experiment, or a host
  where process pools cannot be created (sandboxes without ``fork`` /
  semaphores) all degrade to the serial path with identical results.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, Iterable, List, Sequence, Tuple

from .experiment import Experiment, ExperimentSummary, run_experiment


def default_jobs() -> int:
    """Worker count when the caller asks for "all cores" (``jobs=None``)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_experiment_summary(experiment: Experiment) -> ExperimentSummary:
    """Run one experiment and reduce it to a summary, releasing the server."""
    result = run_experiment(experiment)
    summary = result.summary()
    result.drop_server()
    return summary


def _run_serial(experiments: Sequence[Experiment]) -> List[ExperimentSummary]:
    return [run_experiment_summary(exp) for exp in experiments]


def run_experiments(
    experiments: Iterable[Experiment], jobs: int = 1
) -> List[ExperimentSummary]:
    """Run a batch of experiments, ``jobs`` at a time, preserving order.

    ``jobs=1`` (the default) runs serially in-process; ``jobs=None`` uses
    one worker per available core.  The pool path and the serial path
    produce identical summaries for seeded experiments.
    """
    batch = list(experiments)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(batch) <= 1:
        return _run_serial(batch)
    try:
        pool = multiprocessing.get_context().Pool(min(jobs, len(batch)))
    except (OSError, PermissionError, ValueError):
        # No semaphores / fork support (restricted sandbox): run serially.
        return _run_serial(batch)
    try:
        return pool.map(run_experiment_summary, batch, chunksize=1)
    finally:
        pool.close()
        pool.join()


def run_named_experiments(
    named: Sequence[Tuple[str, Experiment]], jobs: int = 1
) -> Dict[str, ExperimentSummary]:
    """Run ``(key, experiment)`` pairs and return ``{key: summary}``.

    The figure harness builds its result dictionaries this way: declare
    the whole sweep up front, fan it out, then index summaries by key.
    Insertion order of the dict follows the input order.
    """
    summaries = run_experiments([exp for _, exp in named], jobs=jobs)
    return {key: summary for (key, _), summary in zip(named, summaries)}
