"""Reproduction scorecard: grade every paper claim against a live run.

``run_validation`` executes the figure harness (optionally at reduced
scale) and evaluates one :class:`Check` per qualitative claim the paper
makes.  The result is a pass/fail scorecard — the quickest way to see
whether a code change broke the reproduction, and the artifact a reviewer
would ask for ("which claims hold?").

Exposed on the CLI as ``idio-repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from . import extensions, figures
from .report import format_table
from .runner import pool_session


@dataclass
class Check:
    """One graded claim."""

    figure: str
    claim: str
    paper: str
    measured: str
    passed: bool


@dataclass
class Scorecard:
    """All checks from one validation run."""

    checks: List[Check] = field(default_factory=list)

    def add(self, figure: str, claim: str, paper: str, measured: str, passed: bool) -> None:
        self.checks.append(Check(figure, claim, paper, measured, passed))

    @property
    def passed(self) -> int:
        return sum(1 for c in self.checks if c.passed)

    @property
    def failed(self) -> int:
        return len(self.checks) - self.passed

    @property
    def all_passed(self) -> bool:
        return self.failed == 0

    def render(self) -> str:
        rows = [
            [c.figure, "PASS" if c.passed else "FAIL", c.claim, c.paper, c.measured]
            for c in self.checks
        ]
        table = format_table(
            ["figure", "status", "claim", "paper", "measured"],
            rows,
            title="IDIO reproduction scorecard",
        )
        return f"{table}\n{self.passed}/{len(self.checks)} claims reproduced"


def _fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}g}"


def validate_fig9(card: Scorecard, ring_size: int, jobs: int = 1) -> None:
    report = figures.fig9(burst_rates=(100.0, 25.0), ring_size=ring_size, jobs=jobs)

    def row(policy: str, rate: float) -> Dict[str, object]:
        for r in report.rows:
            if r["policy"] == policy and r["rate_gbps"] == rate:
                return r
        raise KeyError((policy, rate))

    for rate in (100.0, 25.0):
        base, inval = row("ddio", rate), row("invalidate", rate)
        card.add(
            "fig9",
            f"self-invalidation removes MLC WBs @{rate:g}G",
            "~0 MLC WBs",
            f"{inval['mlc_wb']} vs {base['mlc_wb']}",
            inval["mlc_wb"] < base["mlc_wb"] * 0.1,
        )
        idio_r = row("idio", rate)
        card.add(
            "fig9",
            f"IDIO cuts LLC WBs @{rate:g}G",
            "large reduction",
            f"{idio_r['llc_wb']} vs {base['llc_wb']}",
            idio_r["llc_wb"] < base["llc_wb"],
        )
    static100, idio100 = row("static", 100.0), row("idio", 100.0)
    card.add(
        "fig9",
        "dynamic IDIO regulates Static's MLC WB overshoot @100G",
        "IDIO <= Static",
        f"{idio100['mlc_wb']} vs {static100['mlc_wb']}",
        idio100["mlc_wb"] <= static100["mlc_wb"],
    )


def validate_fig10(card: Scorecard, ring_size: int, jobs: int = 1) -> None:
    report = figures.fig10(
        burst_rates=(100.0, 25.0, 10.0),
        ring_size=ring_size,
        include_static=False,
        include_corun=True,
        corun_rates=(25.0,),
        jobs=jobs,
    )

    def row(scenario: str, rate: float) -> Dict[str, object]:
        for r in report.rows:
            if (
                r["scenario"] == scenario
                and r["policy"] == "idio"
                and r["rate_gbps"] == rate
            ):
                return r
        raise KeyError((scenario, rate))

    exe100 = row("solo", 100.0).get("exe_time", 1.0)
    exe25 = row("solo", 25.0).get("exe_time", 1.0)
    exe10 = row("solo", 10.0).get("exe_time", 1.0)
    card.add(
        "fig10", "burst time improves @100G", "0.815x", _fmt(exe100), exe100 < 0.95
    )
    card.add(
        "fig10", "burst time improves @25G", "0.780x", _fmt(exe25), exe25 < 0.90
    )
    card.add(
        "fig10",
        "burst time NOT improved @10G (no queueing)",
        "~1.0x",
        _fmt(exe10),
        exe10 > 0.97,
    )
    dram25 = row("solo", 25.0).get("dram_writes", 1.0)
    card.add(
        "fig10",
        "DRAM writes nearly eliminated @25G",
        "~0x",
        _fmt(dram25),
        dram25 < 0.2,
    )
    corun = row("corun", 25.0)
    card.add(
        "fig10",
        "co-run burst time improves @25G",
        "0.792x",
        _fmt(corun.get("exe_time", 1.0)),
        corun.get("exe_time", 1.0) < 0.92,
    )
    ratio = corun.get("antagonist_access_ratio")
    card.add(
        "fig10",
        "antagonist CPI improves in co-run @25G",
        "0.779x",
        _fmt(ratio) if ratio else "-",
        ratio is not None and ratio < 1.0,
    )


def validate_fig11(card: Scorecard, ring_size: int, jobs: int = 1) -> None:
    report = figures.fig11(ring_size=ring_size, jobs=jobs)
    rows = {r["config"]: r for r in report.rows}
    card.add(
        "fig11",
        "IDIO cuts L2Fwd LLC WBs via MLC admission",
        "large reduction",
        f"{rows['idio']['llc_wb']} vs {rows['ddio']['llc_wb']}",
        rows["idio"]["llc_wb"] < rows["ddio"]["llc_wb"],
    )
    if "idio-payload-drop" in rows:
        pd = rows["idio-payload-drop"]
        expected = 2 * ring_size * (1024 // 64 - 1)
        card.add(
            "fig11",
            "class-1 payload goes directly to DRAM",
            "DRAM wr ~= RX payload BW",
            f"{pd['direct_dram_wr']} of {expected} lines",
            pd["direct_dram_wr"] == expected,
        )


def validate_fig12(card: Scorecard, ring_size: int, jobs: int = 1) -> None:
    report = figures.fig12(
        burst_rates=(100.0, 25.0), ring_size=ring_size, include_corun=False, jobs=jobs
    )
    rows = {r["rate_gbps"]: r for r in report.rows}
    cut100 = rows[100.0]["p99_reduction_pct"]
    cut25 = rows[25.0]["p99_reduction_pct"]
    card.add(
        "fig12", "p99 improves @100G", "7.9%", f"{cut100:.1f}%", cut100 > 0
    )
    card.add(
        "fig12", "p99 improves @25G", "30.5%", f"{cut25:.1f}%", cut25 > 15
    )
    card.add(
        "fig12",
        "biggest p99 cut at 25G (the crossover)",
        "25G > 100G",
        f"{cut25:.1f}% vs {cut100:.1f}%",
        cut25 >= cut100,
    )


def validate_fig13(card: Scorecard, ring_size: int, jobs: int = 1) -> None:
    report = figures.fig13(ring_size=ring_size, duration_us=1500.0, jobs=jobs)
    rows = {r["policy"]: r for r in report.rows}
    card.add(
        "fig13",
        "steady-load MLC WBs removed by IDIO",
        ">90% reduction",
        f"{rows['idio']['mlc_wb']} vs {rows['ddio']['mlc_wb']}",
        rows["ddio"]["mlc_wb"] > 0
        and rows["idio"]["mlc_wb"] < rows["ddio"]["mlc_wb"] * 0.1,
    )


def validate_fig14(card: Scorecard, ring_size: int, jobs: int = 1) -> None:
    report = figures.fig14(
        thresholds_mtps=(10.0, 50.0, 100.0), ring_size=ring_size, jobs=jobs
    )
    worst = max(r.get("exe_time", 1.0) for r in report.rows)
    spread = worst - min(r.get("exe_time", 1.0) for r in report.rows)
    card.add(
        "fig14",
        "insensitive to mlcTHR (10..100 MTPS)",
        "consistent improvement",
        f"worst exe {_fmt(worst)}, spread {_fmt(spread)}",
        worst < 1.0 and spread < 0.15,
    )


def validate_extensions(card: Scorecard, ring_size: int, jobs: int = 1) -> None:
    report = extensions.ext_baselines(burst_rates=(100.0,), ring_size=ring_size, jobs=jobs)
    rows = {r["policy"]: r for r in report.rows}
    card.add(
        "ext",
        "IAT (way resizing) leaves MLC WBs untouched (S1)",
        "no MLC reduction",
        f"{rows['iat']['mlc_wb']} vs {rows['ddio']['mlc_wb']}",
        rows["iat"]["mlc_wb"] >= rows["ddio"]["mlc_wb"] * 0.9,
    )
    card.add(
        "ext",
        "regulated prefetcher never floods the MLC",
        "0 MLC WBs at 100G",
        str(rows["idio-regulated"]["mlc_wb"]),
        rows["idio-regulated"]["mlc_wb"] == 0,
    )


#: Validators in execution order.
VALIDATORS: List[Callable[[Scorecard, int, int], None]] = [
    validate_fig9,
    validate_fig10,
    validate_fig11,
    validate_fig12,
    validate_fig13,
    validate_fig14,
    validate_extensions,
]


def run_validation(quick: bool = False, jobs: int = 1) -> Scorecard:
    """Run the scorecard; ``quick`` shrinks the rings for smoke runs.

    Quick mode uses 512-entry rings — large enough for every phenomenon
    (the ring must exceed the 1 MB MLC's 16384-line capacity only for the
    steady-state MLC writeback claims, which fig13 checks with its own
    window), and roughly 3x faster than paper scale.

    ``jobs`` fans each validator's experiment sweep out over a process
    pool (the validators themselves stay sequential: each one is a short
    pipeline of figure runs whose sweeps carry the parallelism).
    """
    ring_size = 512 if quick else 1024
    card = Scorecard()
    # One warm pool serves every validator's sweeps; torn down on exit
    # so a library caller doesn't inherit idle workers.
    with pool_session(jobs if jobs and jobs > 1 else 1):
        for validator in VALIDATORS:
            validator(card, ring_size, jobs)
    return card
