"""Experiment runner: one (policy, workload) run with derived metrics.

An :class:`Experiment` describes the workload; :func:`run_experiment`
builds a :class:`~repro.harness.server.SimulatedServer`, drives it, and
returns an :class:`ExperimentResult` with all the figure-level metrics
(window statistics, timelines, latency percentiles, burst processing
time).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.policies import PolicyConfig, ddio
from ..mem import stats as stats_mod
from ..mem.line import LINE_SIZE
from ..sim import units
from . import metrics
from .server import ServerConfig, SimulatedServer

#: Event streams whose raw timestamps an :class:`ExperimentSummary` keeps,
#: so summary timelines/window counts bin exactly like the live event log.
SUMMARY_STREAMS: Tuple[str, ...] = (
    "pcie_writes",
    "mlc_writebacks",
    "llc_writebacks",
    "mlc_invalidations",
    "dram_reads",
    "dram_writes",
)


@dataclass
class Experiment:
    """One workload description, independent of the placement policy."""

    name: str = "experiment"
    server: ServerConfig = field(default_factory=ServerConfig)
    #: "bursty", "steady", "poisson", "imix", "heavytail", or "diurnal".
    traffic: str = "bursty"
    #: Seed for the stochastic traffic kinds (poisson/imix/heavytail/diurnal).
    traffic_seed: int = 0
    burst_rate_gbps: float = 100.0
    packets_per_burst: Optional[int] = None
    num_bursts: int = 1
    burst_period: int = units.milliseconds(10)
    steady_rate_gbps_per_nf: float = 10.0
    steady_duration: int = units.milliseconds(1)
    #: Pareto shape for ``traffic="heavytail"`` (must exceed 1).
    heavy_tail_alpha: float = 1.5
    #: Peak rate for ``traffic="diurnal"``; the trough is
    #: ``steady_rate_gbps_per_nf`` (``None`` = 2x the trough).
    diurnal_peak_gbps_per_nf: Optional[float] = None
    #: One simulated "day" for ``traffic="diurnal"``.
    diurnal_period: int = units.milliseconds(1)
    #: Extra time after the traffic ends to let the CPUs drain the rings.
    drain_allowance: int = units.milliseconds(8)
    traffic_start: int = units.microseconds(20)

    def with_policy(self, policy: PolicyConfig) -> "Experiment":
        return replace(self, server=replace(self.server, policy=policy))


def _normalized_exe_time(
    value: Optional[int], baseline: Optional[int]
) -> Optional[float]:
    """``value / baseline`` with explicit degenerate-baseline semantics.

    A zero baseline (a baseline run that processed its burst in literally
    zero ticks — possible for empty/degenerate workloads) must not raise
    out of a figure sweep: the ratio is ``inf`` when the comparison run
    took any time at all and ``0.0`` when both took none.  ``None`` on
    either side means the metric is unavailable and is skipped.
    """
    if value is None or baseline is None:
        return None
    if baseline == 0:
        return float("inf") if value > 0 else 0.0
    return value / baseline


@dataclass
class ExperimentSummary:
    """The slim, picklable slice of a run the figure harness consumes.

    An :class:`ExperimentResult` drags the whole :class:`SimulatedServer`
    (caches, rings, per-packet objects) — cheap to hand around in-process,
    but unserializable in practice and a memory leak across a sweep.  The
    summary carries only derived data: window statistics, the raw
    timestamp lists of the :data:`SUMMARY_STREAMS`, latencies, counters,
    and a handful of scalars the figures and extensions read off the
    server.  Everything here pickles, so it is also the unit of transfer
    for the process-pool runner (``repro.harness.runner``).
    """

    experiment: Experiment
    policy_name: str
    window: metrics.WindowStats
    offered_packets: int
    rx_packets: int
    rx_drops: int
    completed: int
    tx_packets: int
    burst_processing_time: Optional[int]
    latencies_ns: List[float]
    antagonist_access_ns: Optional[float]
    antagonist_accesses: int
    decisions: Dict[str, int]
    #: Full counter snapshot (``direct_dram_writes``, ``back_invalidations`` ...).
    counters: Dict[str, int]
    #: Raw timestamps per stream in :data:`SUMMARY_STREAMS`.
    event_streams: Dict[str, List[int]]
    latency_breakdown: Dict[str, float]
    #: Per-core ``stats.mem_accesses`` (NF cores first, antagonist last).
    core_mem_accesses: List[int]
    #: Per-NF-driver mean completed-packet latency in microseconds.
    per_core_mean_latency_us: List[float]
    #: NIC classifier bursts (0 when no classifier is attached).
    bursts_detected: int
    #: CacheDirector slice steers (0 when not configured).
    headers_steered: int
    #: Wall-clock diagnostics of the producing simulation.
    events_fired: int
    wall_seconds: float
    events_per_second: float
    #: Outcome assigned by the sweep runner: "ok" for a clean first-try
    #: run, "retried" when a crash was retried successfully ("timeout"
    #: and "failed" runs never produce a summary — see
    #: :class:`repro.harness.runner.SweepRecord`).
    status: str = "ok"
    #: Worker attempts this summary took (1 unless the runner retried).
    attempts: int = 1
    #: Injected-fault counts by kind (empty for a fault-free run).
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-tenant attribution (empty for an untenanted server): tenant id
    #: -> ``{"completed", "p50_us", "p95_us", "p99_us", "dma_writes",
    #: "io_lines", "io_ways"}``.  Percentiles use 0.0 as the "no
    #: completions" sentinel (never ``None`` — the dict stays
    #: homogeneous and fingerprintable).
    tenant_stats: Dict[int, Dict[str, float]] = field(default_factory=dict)

    @property
    def p50_ns(self) -> Optional[float]:
        if not self.latencies_ns:
            return None
        return metrics.percentile(self.latencies_ns, 50)

    @property
    def p99_ns(self) -> Optional[float]:
        if not self.latencies_ns:
            return None
        return metrics.percentile(self.latencies_ns, 99)

    def latency_breakdown_ns(self) -> Dict[str, float]:
        return dict(self.latency_breakdown)

    def _stream(self, stream: str) -> List[int]:
        try:
            return self.event_streams[stream]
        except KeyError:
            raise KeyError(
                f"stream {stream!r} not captured in summary; available: "
                f"{sorted(self.event_streams)}"
            ) from None

    def count_between(self, stream: str, start: int, end: int) -> int:
        """Events of a captured stream in ``[start, end)``."""
        return stats_mod.count_between(self._stream(stream), start, end)

    def timeline(self, stream: str, bin_us: float = 10.0) -> List[Tuple[float, float]]:
        """(time_us, MTPS) series for a captured stream over the run window."""
        return stats_mod.mtps_series(
            self._stream(stream),
            units.microseconds(bin_us),
            self.window.start,
            self.window.end,
        )

    def rate_per_rx_line(self, name: str) -> float:
        """Window count of a stat normalized to RX line rate (Fig. 4)."""
        rx = self.window.pcie_writes
        if rx == 0:
            return 0.0
        return getattr(self.window, name) / rx

    def dram_gbps(self, name: str) -> float:
        """Average bandwidth of ``dram_reads``/``dram_writes`` over the window."""
        if self.window.duration <= 0:
            return 0.0
        count = getattr(self.window, name)
        return units.bytes_to_gbps(count * LINE_SIZE, self.window.duration)

    def normalized_to(self, baseline: "ExperimentSummary") -> Dict[str, float]:
        """Fig. 10-style normalization against a baseline run."""
        values = self.window.normalized_to(baseline.window)
        exe_time = _normalized_exe_time(
            self.burst_processing_time, baseline.burst_processing_time
        )
        if exe_time is not None:
            values["exe_time"] = exe_time
        return values

    def fingerprint(self) -> Tuple:
        """A deterministic digest of everything simulation-derived.

        Excludes the wall-clock diagnostics (``wall_seconds`` and
        ``events_per_second`` vary run to run even for identical
        simulations); two runs of the same seeded experiment must produce
        equal fingerprints whether they ran serially or in a worker
        process.
        """
        return (
            self.policy_name,
            (self.window.start, self.window.end, self.window.mlc_writebacks,
             self.window.llc_writebacks, self.window.dram_reads,
             self.window.dram_writes, self.window.mlc_invalidations,
             self.window.pcie_writes),
            self.offered_packets,
            self.rx_packets,
            self.rx_drops,
            self.completed,
            self.tx_packets,
            self.burst_processing_time,
            tuple(self.latencies_ns),
            self.antagonist_access_ns,
            self.antagonist_accesses,
            tuple(sorted(self.decisions.items())),
            tuple(sorted(self.counters.items())),
            tuple((k, tuple(v)) for k, v in sorted(self.event_streams.items())),
            tuple(sorted(self.latency_breakdown.items())),
            tuple(self.core_mem_accesses),
            tuple(self.per_core_mean_latency_us),
            self.bursts_detected,
            self.headers_steered,
            self.events_fired,
            tuple(sorted(self.fault_counts.items())),
            tuple(
                (tenant, tuple(sorted(stats.items())))
                for tenant, stats in sorted(self.tenant_stats.items())
            ),
        )


@dataclass
class ExperimentResult:
    """Everything the figure benchmarks consume, plus the live server.

    Holding the server keeps every cache/ring/packet object reachable —
    convenient for white-box tests, but heavy.  Sweeps should convert to
    :meth:`summary` (and :meth:`drop_server`) as soon as the run finishes;
    the parallel runner does this inside the worker process.
    """

    experiment: Experiment
    policy_name: str
    window: metrics.WindowStats
    offered_packets: int
    rx_packets: int
    rx_drops: int
    completed: int
    burst_processing_time: Optional[int]
    latencies_ns: List[float]
    antagonist_access_ns: Optional[float]
    antagonist_accesses: int
    decisions: Dict[str, int]
    server: Optional[SimulatedServer]

    def _require_server(self) -> SimulatedServer:
        if self.server is None:
            raise RuntimeError(
                "server was dropped from this ExperimentResult; use the "
                "ExperimentSummary captured before drop_server()"
            )
        return self.server

    @property
    def p50_ns(self) -> Optional[float]:
        if not self.latencies_ns:
            return None
        return metrics.percentile(self.latencies_ns, 50)

    @property
    def p99_ns(self) -> Optional[float]:
        if not self.latencies_ns:
            return None
        return metrics.percentile(self.latencies_ns, 99)

    def latency_breakdown_ns(self) -> Dict[str, float]:
        """Mean queueing delay vs service time of completed packets.

        Queueing delay covers NIC pipeline + descriptor writeback + ring
        wait + batching; service time is the pure processing component.
        When the server ran with tracing enabled, the recorder's real
        per-component split (``mean_l1_ns``/``mean_mlc_ns``/...) is folded
        in on top.
        """
        from ..obs.trace import merge_latency_breakdowns
        from ..sim import units as _units

        server = self._require_server()
        packets = server.completed_packets()
        queueing = [p.queueing_delay for p in packets if p.queueing_delay is not None]
        service = [p.service_time for p in packets if p.service_time is not None]
        breakdown = {
            "mean_queueing_ns": (
                _units.to_nanoseconds(sum(queueing)) / len(queueing) if queueing else 0.0
            ),
            "mean_service_ns": (
                _units.to_nanoseconds(sum(service)) / len(service) if service else 0.0
            ),
        }
        return merge_latency_breakdowns(breakdown, server.trace_recorder)

    def timeline(self, stream: str, bin_us: float = 10.0) -> List[Tuple[float, float]]:
        """(time_us, MTPS) series for a stat stream over the run window."""
        return metrics.timeline_mtps(
            self._require_server().stats,
            stream,
            self.window.start,
            self.window.end,
            bin_ticks=units.microseconds(bin_us),
        )

    def normalized_to(self, baseline: "ExperimentResult") -> Dict[str, float]:
        """Fig. 10-style normalization against a baseline run."""
        values = self.window.normalized_to(baseline.window)
        exe_time = _normalized_exe_time(
            self.burst_processing_time, baseline.burst_processing_time
        )
        if exe_time is not None:
            values["exe_time"] = exe_time
        return values

    def summary(self, streams: Sequence[str] = SUMMARY_STREAMS) -> ExperimentSummary:
        """Derive the slim :class:`ExperimentSummary` from the live server."""
        server = self._require_server()
        events = server.stats.events
        per_core_latency: List[float] = []
        for driver in server.drivers:
            lats = [p.latency for p in driver.completed_packets if p.latency]
            per_core_latency.append(
                units.to_microseconds(sum(lats) // len(lats)) if lats else 0.0
            )
        bursts = sum(
            nic.classifier.bursts_detected
            for nic in server.nics
            if nic.classifier is not None
        )
        steered = 0
        if server.cachedirector is not None:
            steered = server.cachedirector.headers_steered
        return ExperimentSummary(
            experiment=self.experiment,
            policy_name=self.policy_name,
            window=self.window,
            offered_packets=self.offered_packets,
            rx_packets=self.rx_packets,
            rx_drops=self.rx_drops,
            completed=self.completed,
            tx_packets=server.total_tx,
            burst_processing_time=self.burst_processing_time,
            latencies_ns=list(self.latencies_ns),
            antagonist_access_ns=self.antagonist_access_ns,
            antagonist_accesses=self.antagonist_accesses,
            decisions=dict(self.decisions),
            counters=server.stats.counters.snapshot(),
            event_streams={s: events.timestamps(s) for s in streams},
            latency_breakdown=self.latency_breakdown_ns(),
            core_mem_accesses=[c.stats.mem_accesses for c in server.cores],
            per_core_mean_latency_us=per_core_latency,
            bursts_detected=bursts,
            headers_steered=steered,
            events_fired=server.sim.events_fired,
            wall_seconds=server.sim.wall_seconds,
            events_per_second=server.sim.events_per_second,
            fault_counts=dict(server.fault_counts),
            tenant_stats=server.tenant_stats(),
        )

    def drop_server(self) -> None:
        """Release the simulated server (and with it most of the run's memory).

        After this, only the summary-level fields remain usable; call
        :meth:`summary` first if the derived data is still needed.
        """
        self.server = None


def run_experiment(experiment: Experiment) -> ExperimentResult:
    """Build the server, inject traffic, run to drain, derive metrics."""
    server = SimulatedServer(experiment.server)
    server.start()

    if experiment.server.tenants is not None:
        # Tenanted servers ignore the experiment-level traffic kind: each
        # tenant's flows follow the tenant's own profile (the per-flow
        # seeds come from the tenant RNG streams, not ``traffic_seed``).
        offered = server.inject_tenants(
            experiment.steady_duration, start=experiment.traffic_start
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    elif experiment.traffic == "bursty":
        offered = server.inject_bursty(
            experiment.burst_rate_gbps,
            packets_per_burst=experiment.packets_per_burst,
            num_bursts=experiment.num_bursts,
            burst_period=experiment.burst_period,
            start=experiment.traffic_start,
        )
        traffic_end = (
            experiment.traffic_start
            + (experiment.num_bursts - 1) * experiment.burst_period
            + _burst_length(experiment)
        )
    elif experiment.traffic == "steady":
        offered = server.inject_steady(
            experiment.steady_rate_gbps_per_nf,
            experiment.steady_duration,
            start=experiment.traffic_start,
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    elif experiment.traffic == "poisson":
        offered = server.inject_poisson(
            experiment.steady_rate_gbps_per_nf,
            experiment.steady_duration,
            start=experiment.traffic_start,
            seed=experiment.traffic_seed,
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    elif experiment.traffic == "heavytail":
        offered = server.inject_heavy_tail(
            experiment.steady_rate_gbps_per_nf,
            experiment.steady_duration,
            alpha=experiment.heavy_tail_alpha,
            start=experiment.traffic_start,
            seed=experiment.traffic_seed,
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    elif experiment.traffic == "diurnal":
        peak = experiment.diurnal_peak_gbps_per_nf
        if peak is None:
            peak = 2.0 * experiment.steady_rate_gbps_per_nf
        offered = server.inject_diurnal(
            experiment.steady_rate_gbps_per_nf,
            peak,
            experiment.steady_duration,
            period=experiment.diurnal_period,
            start=experiment.traffic_start,
            seed=experiment.traffic_seed,
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    elif experiment.traffic == "imix":
        offered = server.inject_imix(
            experiment.steady_rate_gbps_per_nf,
            experiment.steady_duration,
            start=experiment.traffic_start,
            seed=experiment.traffic_seed,
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    else:
        raise ValueError(f"unknown traffic kind {experiment.traffic!r}")

    deadline = traffic_end + experiment.drain_allowance
    end_time = server.run_until_drained(deadline)
    server.stop()

    window = metrics.window_stats(server.stats, 0, end_time)
    completions = [
        p.completion_time
        for p in server.completed_packets()
        if p.completion_time is not None
    ]
    bpt = metrics.burst_processing_time(server.stats, completions)

    antagonist_ns: Optional[float] = None
    antagonist_accesses = 0
    if server.config.antagonist:
        core_id = server.config.antagonist_core
        assert core_id is not None
        stats = server.cores[core_id].stats
        antagonist_accesses = stats.mem_accesses
        # Average access latency *during the contention window* (traffic
        # start to last packet completion) — the paper's CPI comparison is
        # over the co-run, not the post-burst idle tail.
        window_end = max(completions) if completions else end_time
        assert server.antagonist_driver is not None
        antagonist_ns = server.antagonist_driver.access_ns_between(
            experiment.traffic_start, window_end
        )
        if antagonist_ns is None:
            antagonist_ns = stats.average_access_ns()

    return ExperimentResult(
        experiment=experiment,
        policy_name=experiment.server.policy.name,
        window=window,
        offered_packets=offered,
        rx_packets=server.total_rx,
        rx_drops=server.total_drops,
        completed=len(completions),
        burst_processing_time=bpt,
        latencies_ns=server.packet_latencies_ns(),
        antagonist_access_ns=antagonist_ns,
        antagonist_accesses=antagonist_accesses,
        decisions=dict(server.controller.decisions) if server.controller else {},
        server=server,
    )


def _burst_length(experiment: Experiment) -> int:
    from ..net.traffic import BurstProfile

    per_burst = experiment.packets_per_burst or experiment.server.ring_size
    profile = BurstProfile(
        burst_rate_gbps=experiment.burst_rate_gbps,
        packets_per_burst=per_burst,
        packet_bytes=experiment.server.packet_bytes,
    )
    return profile.burst_length


def run_policy_comparison(
    experiment: Experiment, policies: List[PolicyConfig], jobs: int = 1
) -> Dict[str, ExperimentSummary]:
    """Run the same workload under several policies (Fig. 9/10 pattern).

    Returns summaries (not full results) so the comparison can fan out
    over a process pool with ``jobs > 1``; use :func:`run_experiment`
    directly when the live server is needed.
    """
    from .runner import run_experiments

    summaries = run_experiments(
        [experiment.with_policy(p) for p in policies], jobs=jobs
    )
    return {p.name: s for p, s in zip(policies, summaries)}
