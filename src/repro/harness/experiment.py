"""Experiment runner: one (policy, workload) run with derived metrics.

An :class:`Experiment` describes the workload; :func:`run_experiment`
builds a :class:`~repro.harness.server.SimulatedServer`, drives it, and
returns an :class:`ExperimentResult` with all the figure-level metrics
(window statistics, timelines, latency percentiles, burst processing
time).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..core.policies import PolicyConfig, ddio
from ..sim import units
from . import metrics
from .server import ServerConfig, SimulatedServer


@dataclass
class Experiment:
    """One workload description, independent of the placement policy."""

    name: str = "experiment"
    server: ServerConfig = field(default_factory=ServerConfig)
    #: "bursty", "steady", "poisson", or "imix".
    traffic: str = "bursty"
    #: Seed for the stochastic traffic kinds (poisson/imix).
    traffic_seed: int = 0
    burst_rate_gbps: float = 100.0
    packets_per_burst: Optional[int] = None
    num_bursts: int = 1
    burst_period: int = units.milliseconds(10)
    steady_rate_gbps_per_nf: float = 10.0
    steady_duration: int = units.milliseconds(1)
    #: Extra time after the traffic ends to let the CPUs drain the rings.
    drain_allowance: int = units.milliseconds(8)
    traffic_start: int = units.microseconds(20)

    def with_policy(self, policy: PolicyConfig) -> "Experiment":
        return replace(self, server=replace(self.server, policy=policy))


@dataclass
class ExperimentResult:
    """Everything the figure benchmarks consume."""

    experiment: Experiment
    policy_name: str
    window: metrics.WindowStats
    offered_packets: int
    rx_packets: int
    rx_drops: int
    completed: int
    burst_processing_time: Optional[int]
    latencies_ns: List[float]
    antagonist_access_ns: Optional[float]
    antagonist_accesses: int
    decisions: Dict[str, int]
    server: SimulatedServer

    @property
    def p50_ns(self) -> Optional[float]:
        if not self.latencies_ns:
            return None
        return metrics.percentile(self.latencies_ns, 50)

    @property
    def p99_ns(self) -> Optional[float]:
        if not self.latencies_ns:
            return None
        return metrics.percentile(self.latencies_ns, 99)

    def latency_breakdown_ns(self) -> Dict[str, float]:
        """Mean queueing delay vs service time of completed packets.

        Queueing delay covers NIC pipeline + descriptor writeback + ring
        wait + batching; service time is the pure processing component.
        """
        from ..sim import units as _units

        packets = self.server.completed_packets()
        queueing = [p.queueing_delay for p in packets if p.queueing_delay is not None]
        service = [p.service_time for p in packets if p.service_time is not None]
        return {
            "mean_queueing_ns": (
                _units.to_nanoseconds(sum(queueing)) / len(queueing) if queueing else 0.0
            ),
            "mean_service_ns": (
                _units.to_nanoseconds(sum(service)) / len(service) if service else 0.0
            ),
        }

    def timeline(self, stream: str, bin_us: float = 10.0) -> List[Tuple[float, float]]:
        """(time_us, MTPS) series for a stat stream over the run window."""
        return metrics.timeline_mtps(
            self.server.stats,
            stream,
            self.window.start,
            self.window.end,
            bin_ticks=units.microseconds(bin_us),
        )

    def normalized_to(self, baseline: "ExperimentResult") -> Dict[str, float]:
        """Fig. 10-style normalization against a baseline run."""
        values = self.window.normalized_to(baseline.window)
        if (
            self.burst_processing_time is not None
            and baseline.burst_processing_time
        ):
            values["exe_time"] = (
                self.burst_processing_time / baseline.burst_processing_time
            )
        return values


def run_experiment(experiment: Experiment) -> ExperimentResult:
    """Build the server, inject traffic, run to drain, derive metrics."""
    server = SimulatedServer(experiment.server)
    server.start()

    if experiment.traffic == "bursty":
        offered = server.inject_bursty(
            experiment.burst_rate_gbps,
            packets_per_burst=experiment.packets_per_burst,
            num_bursts=experiment.num_bursts,
            burst_period=experiment.burst_period,
            start=experiment.traffic_start,
        )
        traffic_end = (
            experiment.traffic_start
            + (experiment.num_bursts - 1) * experiment.burst_period
            + _burst_length(experiment)
        )
    elif experiment.traffic == "steady":
        offered = server.inject_steady(
            experiment.steady_rate_gbps_per_nf,
            experiment.steady_duration,
            start=experiment.traffic_start,
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    elif experiment.traffic == "poisson":
        offered = server.inject_poisson(
            experiment.steady_rate_gbps_per_nf,
            experiment.steady_duration,
            start=experiment.traffic_start,
            seed=experiment.traffic_seed,
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    elif experiment.traffic == "imix":
        offered = server.inject_imix(
            experiment.steady_rate_gbps_per_nf,
            experiment.steady_duration,
            start=experiment.traffic_start,
            seed=experiment.traffic_seed,
        )
        traffic_end = experiment.traffic_start + experiment.steady_duration
    else:
        raise ValueError(f"unknown traffic kind {experiment.traffic!r}")

    deadline = traffic_end + experiment.drain_allowance
    end_time = server.run_until_drained(deadline)
    server.stop()

    window = metrics.window_stats(server.stats, 0, end_time)
    completions = [
        p.completion_time
        for p in server.completed_packets()
        if p.completion_time is not None
    ]
    bpt = metrics.burst_processing_time(server.stats, completions)

    antagonist_ns: Optional[float] = None
    antagonist_accesses = 0
    if server.config.antagonist:
        core_id = server.config.antagonist_core
        assert core_id is not None
        stats = server.cores[core_id].stats
        antagonist_accesses = stats.mem_accesses
        # Average access latency *during the contention window* (traffic
        # start to last packet completion) — the paper's CPI comparison is
        # over the co-run, not the post-burst idle tail.
        window_end = max(completions) if completions else end_time
        assert server.antagonist_driver is not None
        antagonist_ns = server.antagonist_driver.access_ns_between(
            experiment.traffic_start, window_end
        )
        if antagonist_ns is None:
            antagonist_ns = stats.average_access_ns()

    return ExperimentResult(
        experiment=experiment,
        policy_name=experiment.server.policy.name,
        window=window,
        offered_packets=offered,
        rx_packets=server.total_rx,
        rx_drops=server.total_drops,
        completed=len(completions),
        burst_processing_time=bpt,
        latencies_ns=server.packet_latencies_ns(),
        antagonist_access_ns=antagonist_ns,
        antagonist_accesses=antagonist_accesses,
        decisions=dict(server.controller.decisions) if server.controller else {},
        server=server,
    )


def _burst_length(experiment: Experiment) -> int:
    from ..net.traffic import BurstProfile

    per_burst = experiment.packets_per_burst or experiment.server.ring_size
    profile = BurstProfile(
        burst_rate_gbps=experiment.burst_rate_gbps,
        packets_per_burst=per_burst,
        packet_bytes=experiment.server.packet_bytes,
    )
    return profile.burst_length


def run_policy_comparison(
    experiment: Experiment, policies: List[PolicyConfig]
) -> Dict[str, ExperimentResult]:
    """Run the same workload under several policies (Fig. 9/10 pattern)."""
    results: Dict[str, ExperimentResult] = {}
    for policy in policies:
        results[policy.name] = run_experiment(experiment.with_policy(policy))
    return results
