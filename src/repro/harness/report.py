"""ASCII reporting helpers for the figure/table benchmarks.

Every benchmark prints its results as a plain-text table with a
"paper" column (the value the paper reports) next to a "measured" column
so a reader can eyeball the reproduction shape without plotting.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def sparkline(series: Sequence[Tuple[float, float]], width: int = 60) -> str:
    """A coarse unicode sparkline of a (t, value) series for timelines."""
    if not series:
        return "(empty)"
    values = [v for _, v in series]
    if len(values) > width:
        # Downsample by max-pooling so spikes stay visible.
        chunk = -(-len(values) // width)
        values = [max(values[i : i + chunk]) for i in range(0, len(values), chunk)]
    peak = max(values) or 1.0
    glyphs = " ▁▂▃▄▅▆▇█"
    return "".join(glyphs[min(8, int(v / peak * 8))] for v in values)


def timeline_block(
    name: str, series: Sequence[Tuple[float, float]], unit: str = "MTPS"
) -> str:
    """A labeled sparkline with its peak annotated."""
    peak = max((v for _, v in series), default=0.0)
    return f"{name:<28} peak={peak:8.2f} {unit}  |{sparkline(series)}|"
