"""Experiment harness: server builder, runner, metrics, figure reproductions."""

from . import extensions, figures, metrics, report, traces, validation
from .experiment import (
    Experiment,
    ExperimentResult,
    run_experiment,
    run_policy_comparison,
)
from .server import APP_FACTORIES, ServerConfig, SimulatedServer

__all__ = [
    "APP_FACTORIES",
    "Experiment",
    "ExperimentResult",
    "ServerConfig",
    "SimulatedServer",
    "extensions",
    "figures",
    "metrics",
    "report",
    "run_experiment",
    "run_policy_comparison",
    "traces",
    "validation",
]
