"""Experiment harness: server builder, runner, metrics, figure reproductions."""

from . import extensions, figures, metrics, report, runner, traces, validation
from .experiment import (
    Experiment,
    ExperimentResult,
    ExperimentSummary,
    run_experiment,
    run_policy_comparison,
)
from .runner import (
    SweepRecord,
    SweepResult,
    run_experiment_summary,
    run_experiments,
    run_named_experiments,
    run_sweep,
)
from .server import APP_FACTORIES, ServerConfig, SimulatedServer

__all__ = [
    "APP_FACTORIES",
    "Experiment",
    "ExperimentResult",
    "ExperimentSummary",
    "ServerConfig",
    "SimulatedServer",
    "SweepRecord",
    "SweepResult",
    "extensions",
    "figures",
    "metrics",
    "report",
    "run_experiment",
    "run_experiment_summary",
    "run_experiments",
    "run_named_experiments",
    "run_policy_comparison",
    "run_sweep",
    "runner",
    "traces",
    "validation",
]
