"""Derived metrics: percentiles, normalized rates, window statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mem.line import LINE_SIZE
from ..mem.stats import StatsBundle
from ..sim import units


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile (p in [0, 100])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    data = sorted(values)
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * p / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return data[lo] * (1 - frac) + data[hi] * frac


@dataclass
class WindowStats:
    """The Fig. 10-style transaction counts for one measurement window."""

    start: int
    end: int
    mlc_writebacks: int
    llc_writebacks: int
    dram_reads: int
    dram_writes: int
    mlc_invalidations: int
    pcie_writes: int

    @property
    def duration(self) -> int:
        return self.end - self.start

    def normalized_to(self, baseline: "WindowStats") -> Dict[str, float]:
        """Each statistic divided by the baseline's (Fig. 10 normalization)."""

        def ratio(mine: int, theirs: int) -> float:
            if theirs == 0:
                return 0.0 if mine == 0 else float("inf")
            return mine / theirs

        return {
            "mlc_writebacks": ratio(self.mlc_writebacks, baseline.mlc_writebacks),
            "llc_writebacks": ratio(self.llc_writebacks, baseline.llc_writebacks),
            "dram_reads": ratio(self.dram_reads, baseline.dram_reads),
            "dram_writes": ratio(self.dram_writes, baseline.dram_writes),
        }


def window_stats(stats: StatsBundle, start: int, end: int) -> WindowStats:
    """Collect the transaction counts of a time window from the event logs."""
    count = stats.events.count_between
    return WindowStats(
        start=start,
        end=end,
        mlc_writebacks=count("mlc_writebacks", start, end),
        llc_writebacks=count("llc_writebacks", start, end),
        dram_reads=count("dram_reads", start, end),
        dram_writes=count("dram_writes", start, end),
        mlc_invalidations=count("mlc_invalidations", start, end),
        pcie_writes=count("pcie_writes", start, end),
    )


def dram_bandwidth_gbps(stats: StatsBundle, stream: str, start: int, end: int) -> float:
    """Average DRAM bandwidth of a window (``dram_reads``/``dram_writes``)."""
    if end <= start:
        return 0.0
    count = stats.events.count_between(stream, start, end)
    return units.bytes_to_gbps(count * LINE_SIZE, end - start)


def rate_normalized_to_rx(
    stats: StatsBundle, stream: str, start: int, end: int
) -> float:
    """Transaction rate of ``stream`` normalized to RX line rate (Fig. 4).

    The RX line rate is the PCIe write rate; a value of 1.0 means the
    stream moves exactly as many cachelines as the network delivers.
    """
    rx = stats.events.count_between("pcie_writes", start, end)
    if rx == 0:
        return 0.0
    return stats.events.count_between(stream, start, end) / rx


def burst_processing_time(stats: StatsBundle, completions: Sequence[int]) -> Optional[int]:
    """Start of the DMA phase to the end of the execution phase (Fig. 10).

    The DMA phase begins with the first PCIe write; the execution phase
    ends at the last packet completion.
    """
    writes = stats.events.timestamps("pcie_writes")
    if not writes or not completions:
        return None
    return max(completions) - writes[0]


def timeline_mtps(
    stats: StatsBundle,
    stream: str,
    start: int,
    end: int,
    bin_ticks: int = units.microseconds(10),
) -> List[Tuple[float, float]]:
    """(time_us, MTPS) series at the paper's 10 us sampling interval."""
    return stats.events.mtps_series(stream, bin_ticks, start, end)


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline == 0:
        return 0.0
    return (baseline - improved) / baseline * 100.0
