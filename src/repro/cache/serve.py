"""``repro serve``: a long-running sweep daemon over the result cache.

The ROADMAP's "long-running service mode": instead of paying interpreter
start-up, pool warm-up, and cold simulation for every sweep, a daemon
holds the warm worker pool and the result cache open and serves sweep
requests over a Unix-domain socket.  Repeated or overlapping sweeps are
answered from the cache (typically in milliseconds); only genuinely new
configs simulate.

Protocol (stdlib-only, JSON lines):

* The client connects, writes **one** request object on a single line,
  and half-closes its write side.
* The daemon streams back one JSON object per line: zero or more
  ``{"event": "cache", ...}`` progress lines (mirroring the typed
  ``CacheHitEvent``/``CacheMissEvent``/``CacheStoreEvent`` traffic on the
  obs bus, live, as the sweep runs), then one ``{"event": "result", ...}``
  per experiment, then a terminal ``{"event": "done", ...}`` /
  ``{"event": "pong"}`` / ``{"event": "stats"}`` / ``{"event": "bye"}`` /
  ``{"event": "error"}`` line.

Requests::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "sweep", "experiments": [SPEC, ...], "jobs": 1}
    {"op": "shutdown"}

where ``SPEC`` uses the CLI flag vocabulary as JSON keys — see
:func:`experiment_from_spec` and ``docs/caching.md``.

Connections are handled one at a time: the pool and cache are process-
wide resources, and a serial accept loop keeps results deterministic and
the implementation honest about where time goes.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from ..obs.events import CacheHitEvent, CacheMissEvent, CacheStoreEvent
from ..sim import units
from .store import ResultCache

#: JSON spec keys -> CLI flag vocabulary (see ``_workload_parent`` /
#: ``_experiment_from_args`` in :mod:`repro.cli`): every key matches the
#: long spelling of the corresponding ``idio-repro`` flag.
SPEC_KEYS = (
    "name",
    "policy",
    "workload",
    "ring",
    "packet_bytes",
    "traffic",
    "rate",
    "bursts",
    "duration_us",
    "antagonist",
    "recycle",
    "nf_cores",
    "seed",
)


def experiment_from_spec(spec: Dict[str, Any]):
    """Build an :class:`~repro.harness.experiment.Experiment` from a JSON spec.

    Mirrors the CLI: ``{"policy": "idio", "workload": "touchdrop",
    "ring": 256, "rate": 25.0}`` means the same as ``idio-repro run
    --policy idio --workload touchdrop --ring 256 --rate 25``.  Unknown
    keys raise :class:`ValueError` (a typo must not silently key a
    different cache entry).
    """
    from ..core import policies
    from ..harness.experiment import Experiment
    from ..harness.server import APP_FACTORIES, ServerConfig

    if not isinstance(spec, dict):
        raise ValueError(f"experiment spec must be an object, got {type(spec).__name__}")
    unknown = sorted(set(spec) - set(SPEC_KEYS))
    if unknown:
        raise ValueError(f"unknown experiment spec keys: {', '.join(unknown)}")
    policy_name = str(spec.get("policy", "ddio"))
    app = str(spec.get("workload", "touchdrop"))
    if app not in APP_FACTORIES:
        raise ValueError(f"unknown workload {app!r}")
    traffic = str(spec.get("traffic", "bursty"))
    rate = float(spec.get("rate", 25.0))
    server = ServerConfig(
        policy=policies.policy_by_name(policy_name),
        app=app,
        ring_size=int(spec.get("ring", 1024)),
        packet_bytes=int(spec.get("packet_bytes", 1514)),
        antagonist=bool(spec.get("antagonist", False)),
        recycle_mode=str(spec.get("recycle", "run_to_completion")),
        num_nf_cores=int(spec.get("nf_cores", 2)),
    )
    return Experiment(
        name=str(spec.get("name", f"serve-{policy_name}")),
        server=server,
        traffic=traffic,
        traffic_seed=int(spec.get("seed", 0)),
        burst_rate_gbps=rate,
        num_bursts=int(spec.get("bursts", 1)),
        steady_rate_gbps_per_nf=rate,
        steady_duration=units.microseconds(float(spec.get("duration_us", 1500.0))),
    )


class ServeDaemon:
    """The accept loop: one socket, one cache, one warm pool."""

    def __init__(
        self,
        socket_path,
        cache: ResultCache,
        jobs: int = 1,
        max_requests: Optional[int] = None,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.cache = cache
        self.jobs = jobs
        #: Stop after this many requests (tests / smoke runs); ``None`` =
        #: run until a ``shutdown`` request arrives.
        self.max_requests = max_requests
        self.requests_served = 0
        self._listener: Optional[socket.socket] = None

    # -- lifecycle -----------------------------------------------------

    def bind(self) -> None:
        """Create and listen on the Unix socket (unlinking any stale one)."""
        if self.socket_path.exists():
            self.socket_path.unlink()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.socket_path))
        listener.listen(4)
        self._listener = listener

    def close(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        try:
            self.socket_path.unlink()
        except OSError:
            pass

    def serve_forever(self) -> int:
        """Accept and handle requests until shutdown; returns the count."""
        if self._listener is None:
            self.bind()
        assert self._listener is not None
        try:
            while True:
                conn, _ = self._listener.accept()
                with conn:
                    stop = self._handle_connection(conn)
                self.requests_served += 1
                if stop:
                    break
                if (
                    self.max_requests is not None
                    and self.requests_served >= self.max_requests
                ):
                    break
        finally:
            self.close()
        return self.requests_served

    # -- request handling ----------------------------------------------

    def _handle_connection(self, conn: socket.socket) -> bool:
        """Serve one connection; returns True when asked to shut down."""
        out = conn.makefile("w", encoding="utf-8", newline="\n")
        try:
            request = self._read_request(conn)
            op = request.get("op")
            if op == "ping":
                self._send(out, {"event": "pong", "version": self.cache.version})
            elif op == "stats":
                self._send(out, {"event": "stats", "stats": self.cache.stats()})
            elif op == "sweep":
                self._handle_sweep(out, request)
            elif op == "shutdown":
                self._send(out, {"event": "bye", "requests": self.requests_served + 1})
                return True
            else:
                self._send(out, {"event": "error", "message": f"unknown op {op!r}"})
        except Exception as exc:  # report, keep serving
            try:
                self._send(out, {"event": "error", "message": str(exc)})
            except OSError:
                pass
        finally:
            try:
                out.close()
            except OSError:
                pass
        return False

    def _handle_sweep(self, out, request: Dict[str, Any]) -> None:
        from ..harness.runner import run_experiments

        specs = request.get("experiments")
        if not isinstance(specs, list) or not specs:
            raise ValueError('"sweep" needs a non-empty "experiments" list')
        experiments = [experiment_from_spec(spec) for spec in specs]
        jobs = int(request.get("jobs", self.jobs))
        hits0, misses0 = self.cache.hits, self.cache.misses
        bus = self.cache.bus

        # One named, annotated handler per event type: the typed
        # subscribe sites keep the bus wiring statically checkable
        # (simlint SIM012) and the signatures SIM006-verifiable.
        def on_hit(event: CacheHitEvent) -> None:
            self._send(
                out, {"event": "cache", "kind": "hit", "name": event.name,
                      "digest": event.digest})

        def on_miss(event: CacheMissEvent) -> None:
            self._send(
                out, {"event": "cache", "kind": "miss", "name": event.name,
                      "digest": event.digest, "reason": event.reason})

        def on_store(event: CacheStoreEvent) -> None:
            self._send(
                out, {"event": "cache", "kind": "store", "name": event.name,
                      "digest": event.digest, "bytes": event.num_bytes})

        bus.subscribe(CacheHitEvent, on_hit)
        bus.subscribe(CacheMissEvent, on_miss)
        bus.subscribe(CacheStoreEvent, on_store)
        try:
            summaries = run_experiments(experiments, jobs=jobs, cache=self.cache)
        finally:
            bus.unsubscribe(CacheHitEvent, on_hit)
            bus.unsubscribe(CacheMissEvent, on_miss)
            bus.unsubscribe(CacheStoreEvent, on_store)
        from ..analysis.determinism import fingerprint_digest

        for summary in summaries:
            self._send(
                out,
                {
                    "event": "result",
                    "name": summary.experiment.name,
                    "policy": summary.policy_name,
                    "completed": summary.completed,
                    "drops": summary.rx_drops,
                    "fingerprint": fingerprint_digest(summary),
                },
            )
        self._send(
            out,
            {
                "event": "done",
                "experiments": len(experiments),
                "hits": self.cache.hits - hits0,
                "misses": self.cache.misses - misses0,
            },
        )

    @staticmethod
    def _read_request(conn: socket.socket) -> Dict[str, Any]:
        """One JSON object: the first line of the client's half-closed stream."""
        chunks: List[bytes] = []
        while b"\n" not in (chunks[-1] if chunks else b""):
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
        line = b"".join(chunks).split(b"\n", 1)[0]
        if not line.strip():
            raise ValueError("empty request")
        request = json.loads(line)
        if not isinstance(request, dict):
            raise ValueError("request must be a JSON object")
        return request

    @staticmethod
    def _send(out, obj: Dict[str, Any]) -> None:
        out.write(json.dumps(obj, sort_keys=True) + "\n")
        out.flush()


def submit(socket_path, request: Dict[str, Any], timeout: float = 300.0) -> List[Dict]:
    """Send one request to a running daemon; returns every response line.

    The last element is the terminal event (``done``/``pong``/``stats``/
    ``bye``/``error``); earlier elements are live ``cache`` progress and
    per-experiment ``result`` lines in arrival order.
    """
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
        conn.settimeout(timeout)
        conn.connect(str(socket_path))
        conn.sendall((json.dumps(request) + "\n").encode("utf-8"))
        conn.shutdown(socket.SHUT_WR)
        reader = conn.makefile("r", encoding="utf-8")
        return [json.loads(line) for line in reader if line.strip()]


def run_serve(
    socket_path,
    cache: Optional[ResultCache] = None,
    cache_dir=None,
    jobs: int = 1,
    max_requests: Optional[int] = None,
) -> int:
    """Run the serve daemon until shutdown; returns requests served.

    Exported on the stable facade.  Pass an existing :class:`ResultCache`
    or a ``cache_dir`` to create one (``cache_dir=None`` uses
    ``REPRO_CACHE_DIR`` or the default under the working directory — see
    :func:`repro.cache.default_cache_dir`).
    """
    from . import default_cache_dir
    from ..harness.runner import shutdown_pool

    if cache is None:
        root = cache_dir if cache_dir is not None else default_cache_dir()
        cache = ResultCache(root)
    daemon = ServeDaemon(socket_path, cache, jobs=jobs, max_requests=max_requests)
    try:
        return daemon.serve_forever()
    finally:
        shutdown_pool()


def main(argv: Optional[Iterable[str]] = None) -> int:
    """``python -m repro.cache.serve`` — used by ``make serve-smoke``."""
    import argparse

    parser = argparse.ArgumentParser(description="repro result-cache serve daemon")
    parser.add_argument("--socket", required=True, help="Unix socket path")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--max-requests", type=int, default=None,
        help="exit after N requests (smoke tests)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    served = run_serve(
        args.socket,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        max_requests=args.max_requests,
    )
    print(f"served {served} request(s) on {args.socket}", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by serve-smoke
    raise SystemExit(main())
