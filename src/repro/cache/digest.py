"""The canonical config digest: the result cache's key derivation.

Two experiments that would simulate byte-identically must digest
identically, and *any* change that could alter a single simulated event
must change the digest.  The derivation is deliberately conservative:
the whole :class:`~repro.harness.experiment.Experiment` — including the
nested :class:`~repro.harness.server.ServerConfig`, policy, NIC,
classifier, cost-model, and :class:`~repro.faults.plan.FaultPlan`
dataclasses, and every traffic parameter and seed — is walked field by
field into a canonical nested tuple, prefixed with the cache schema
version and ``repro.__version__``, and hashed.  A field we cannot
canonicalize makes the experiment *uncacheable* rather than guessed at.

Invalidation therefore falls out of the key: bump any config field, any
seed, the fault plan, or the package version and the digest moves, so
stale entries are simply never looked up (``repro cache gc`` reclaims
them).  See ``docs/caching.md`` for the full rules.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Optional, Tuple

#: Bumped whenever the entry layout or the digest derivation changes:
#: entries written under a different schema are unreadable by design.
CACHE_SCHEMA = 1

#: Fault layers whose specs make an experiment uncacheable.  ``harness.*``
#: faults (crashes, hangs) act on the *sweep runner*, not the simulation;
#: memoizing their summaries would let a resilience test observe a stale
#: "crash" that never re-fires.  Force-missing them keeps retry/timeout
#: paths live on every run.
UNCACHEABLE_FAULT_LAYERS: Tuple[str, ...] = ("harness",)


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a repr-stable nested tuple for hashing.

    Handles the closed vocabulary an :class:`Experiment` is built from:
    ``None``, bools, ints, floats, strings, dataclasses (tagged with the
    class name, fields in declaration order), mappings (sorted by key),
    and sequences.  Anything else raises :class:`TypeError` — the caller
    treats that experiment as uncacheable instead of mis-keying it.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            type(obj).__name__,
            tuple(
                (f.name, canonical(getattr(obj, f.name)))
                for f in dataclasses.fields(obj)
            ),
        )
    if isinstance(obj, dict):
        return (
            "dict",
            tuple(
                sorted((canonical(k), canonical(v)) for k, v in obj.items())
            ),
        )
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(canonical(item) for item in obj))
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for the result cache"
    )


def uncacheable_reason(experiment) -> Optional[str]:
    """Why ``experiment`` must bypass the cache (``None`` = cacheable)."""
    plan = experiment.server.fault_plan
    for spec in plan.specs:
        if spec.layer in UNCACHEABLE_FAULT_LAYERS:
            return (
                f"fault plan contains {spec.kind!r}: harness faults drive "
                "the sweep runner and must never be memoized"
            )
    try:
        canonical(experiment)
    except TypeError as exc:
        return str(exc)
    return None


def is_cacheable(experiment) -> bool:
    """Whether the result cache may serve or store this experiment."""
    return uncacheable_reason(experiment) is None


def config_digest(experiment, version: Optional[str] = None) -> str:
    """SHA-256 hex digest keying one experiment's cached result.

    ``version`` defaults to the installed ``repro.__version__``; passing
    it explicitly exists for tests that prove a version bump invalidates
    every entry.  Raises :class:`TypeError` for uncanonicalizable
    experiments — use :func:`is_cacheable` first.
    """
    if version is None:
        from .. import __version__ as version
    payload = repr(
        ("repro-result-cache", CACHE_SCHEMA, version, canonical(experiment))
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
