"""The fingerprint-keyed experiment result cache.

``repro.cache`` memoizes :class:`~repro.harness.experiment.
ExperimentSummary` objects on disk, keyed by a canonical *config digest*
over the whole experiment (every config field, every seed, the fault
plan, and ``repro.__version__`` — see :mod:`repro.cache.digest`).  The
sweep runner consults it before dispatching to the warm pool, the rack
tier reuses unchanged per-server shards, and the ``repro serve`` daemon
(:mod:`repro.cache.serve`) answers repeated sweeps from the warm cache
over a local socket.  ``docs/caching.md`` documents the key derivation,
the invalidation rules, and the serve protocol.

Correctness anchor: a cache hit returns a summary whose fingerprint is
byte-identical to a cold recompute — entries self-verify on load, and
``repro cache verify`` re-runs a sampled subset (optionally in checked
mode) and evicts any divergence.

Two ways to use it:

* explicitly — pass a :class:`ResultCache` to ``run_experiments`` /
  ``run_sweep`` / ``SimulatedRack.run``;
* ambiently — install a process-default cache (:func:`set_default_cache`
  or the :func:`cache_session` context manager) and every runner call
  without an explicit ``cache=`` picks it up.  This is how the CLI's
  ``--cache-dir`` flag reaches figure code that calls the runner
  internally.
"""

from __future__ import annotations

import contextlib
import os
from pathlib import Path
from typing import Iterator, Optional

from .digest import (
    CACHE_SCHEMA,
    UNCACHEABLE_FAULT_LAYERS,
    canonical,
    config_digest,
    is_cacheable,
    uncacheable_reason,
)
from .serve import ServeDaemon, experiment_from_spec, run_serve, submit
from .store import GcReport, ResultCache, VerifyReport

__all__ = [
    "CACHE_SCHEMA",
    "GcReport",
    "ResultCache",
    "ServeDaemon",
    "UNCACHEABLE_FAULT_LAYERS",
    "VerifyReport",
    "cache_session",
    "canonical",
    "config_digest",
    "default_cache_dir",
    "experiment_from_spec",
    "get_default_cache",
    "is_cacheable",
    "resolve_cache",
    "run_serve",
    "set_default_cache",
    "submit",
    "uncacheable_reason",
]

#: Environment variable naming the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_default_cache: Optional[ResultCache] = None


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``.repro-cache`` under the working directory."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.cwd() / ".repro-cache"


def set_default_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Install (or clear, with ``None``) the process-default cache.

    Returns the previous default so callers can restore it.
    """
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def get_default_cache() -> Optional[ResultCache]:
    """The installed process-default cache, if any (``None`` = caching off)."""
    return _default_cache


def resolve_cache(cache=None) -> Optional[ResultCache]:
    """What the runner actually uses for a ``cache=`` argument.

    ``None`` (the default argument everywhere) falls through to the
    process-default; ``False`` explicitly disables caching for the call
    even when a default is installed (the ``--no-cache`` path); a
    :class:`ResultCache` is used as-is.
    """
    if cache is False:
        return None
    if cache is None:
        return get_default_cache()
    return cache


@contextlib.contextmanager
def cache_session(
    root, bus=None, version: Optional[str] = None
) -> Iterator[ResultCache]:
    """Install a cache at ``root`` as the process default for a ``with`` block."""
    cache = ResultCache(root, bus=bus, version=version)
    previous = set_default_cache(cache)
    try:
        yield cache
    finally:
        set_default_cache(previous)
