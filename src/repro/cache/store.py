"""The content-addressed, on-disk experiment result cache.

A :class:`ResultCache` memoizes :class:`~repro.harness.experiment.
ExperimentSummary` objects keyed by the canonical config digest
(:func:`~repro.cache.digest.config_digest`).  Entries are self-describing
pickles — schema version, producing ``repro`` version, config digest,
the experiment itself, the summary, and the summary's fingerprint digest
— laid out two-level under the cache root (``ab/abcdef....pkl``) so a
big cache never piles one directory high.

Correctness rules:

* a hit must be byte-identical to a cold recompute — ``get`` re-derives
  the summary's fingerprint digest and refuses (evicts) entries whose
  payload does not match its own metadata;
* every write goes through :func:`_atomic_write_bytes` (temp file +
  ``os.replace`` in the same directory), so a reader sees either the old
  complete entry or the new complete entry and two concurrent writers of
  the same key leave exactly one valid entry (simlint SIM010 forbids any
  other write path in this package);
* :meth:`ResultCache.verify` re-runs a seeded sample of entries (in
  checked mode when asked) and evicts any whose recomputed fingerprint
  diverged; :meth:`ResultCache.gc` reclaims foreign-version, stale, and
  over-budget entries.

Cache traffic is observable: every lookup and store publishes a typed
:class:`~repro.obs.events.CacheHitEvent` / ``CacheMissEvent`` /
``CacheStoreEvent`` on the cache's bus, which the serve daemon streams
to clients and the rack tier uses to mark reused lanes.
"""

from __future__ import annotations

import os
import pickle
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..analysis.determinism import fingerprint_digest
from ..obs.bus import EventBus
from ..obs.events import CacheHitEvent, CacheMissEvent, CacheStoreEvent
from .digest import CACHE_SCHEMA, config_digest, uncacheable_reason

ENTRY_SUFFIX = ".pkl"


class CacheEntryError(Exception):
    """An on-disk entry failed validation (corrupt, foreign, or torn)."""


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """The one blessed cache writer: temp file + same-directory rename.

    ``os.replace`` is atomic on POSIX, so a concurrent reader sees either
    nothing, the old entry, or the new entry — never a torn write — and
    the last of two racing writers of the same key wins with a valid
    entry.  simlint SIM010 forbids any other write path in ``repro.cache``.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, staged = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(staged, path)
    except BaseException:
        with _suppress_oserror():
            os.unlink(staged)
        raise


class _suppress_oserror:
    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return exc_type is not None and issubclass(exc_type, OSError)


@dataclass
class VerifyReport:
    """What ``repro cache verify`` found (and evicted)."""

    entries: int = 0
    sampled: int = 0
    verified_ok: int = 0
    #: Digests whose entries failed load/metadata validation.
    corrupt: List[str] = field(default_factory=list)
    #: Digests whose recomputed fingerprint diverged from the stored one.
    mismatched: List[str] = field(default_factory=list)
    evicted: int = 0

    @property
    def clean(self) -> bool:
        return not self.corrupt and not self.mismatched


@dataclass
class GcReport:
    """What ``repro cache gc`` reclaimed."""

    entries_before: int = 0
    entries_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    evicted_foreign: int = 0
    evicted_stale: int = 0
    evicted_over_budget: int = 0

    @property
    def evicted(self) -> int:
        return (
            self.evicted_foreign + self.evicted_stale + self.evicted_over_budget
        )


class ResultCache:
    """Fingerprint-keyed, on-disk memoization of experiment summaries.

    ``root`` is the cache directory (created on demand); ``bus`` is the
    observability bus cache events are published on (a private bus by
    default — pass one to share it); ``version`` overrides the
    ``repro.__version__`` component of the key derivation (tests use this
    to prove version bumps invalidate).
    """

    def __init__(
        self,
        root,
        bus: Optional[EventBus] = None,
        version: Optional[str] = None,
    ) -> None:
        if version is None:
            from .. import __version__ as version
        self.root = Path(root)
        self.bus = bus if bus is not None else EventBus()
        self.version = version
        #: In-process traffic counters (the on-disk truth is ``stats()``).
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- keying --------------------------------------------------------

    def digest_for(self, experiment) -> Optional[str]:
        """The entry key for ``experiment`` (``None`` = uncacheable)."""
        if uncacheable_reason(experiment) is not None:
            return None
        return config_digest(experiment, version=self.version)

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / (digest + ENTRY_SUFFIX)

    # -- lookup / store ------------------------------------------------

    def get(self, experiment):
        """The stored summary for ``experiment``, or ``None`` on a miss.

        Publishes a :class:`CacheHitEvent` or :class:`CacheMissEvent`;
        an entry that exists but fails validation is evicted and counted
        as a ``"corrupt"`` miss, so one bad byte can never replay as a
        result.
        """
        digest = self.digest_for(experiment)
        if digest is None:
            return self._miss("", experiment.name, "uncacheable")
        path = self.path_for(digest)
        try:
            entry = self._load(path, expect_digest=digest)
        except FileNotFoundError:
            return self._miss(digest, experiment.name, "absent")
        except CacheEntryError:
            self.evict(digest)
            return self._miss(digest, experiment.name, "corrupt")
        self.hits += 1
        self.bus.publish(CacheHitEvent(digest=digest, name=experiment.name))
        return entry["summary"]

    def put(self, experiment, summary) -> Optional[str]:
        """Persist ``summary`` for ``experiment``; returns the digest.

        A no-op (returns ``None``) for uncacheable experiments.  The
        write is atomic; concurrent writers of the same key leave one
        valid entry (last writer wins — both computed the same bytes).
        """
        digest = self.digest_for(experiment)
        if digest is None:
            return None
        entry = {
            "schema": CACHE_SCHEMA,
            "version": self.version,
            "config_digest": digest,
            "fingerprint": fingerprint_digest(summary),
            "experiment": experiment,
            "summary": summary,
            "created": time.time(),
        }
        payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write_bytes(self.path_for(digest), payload)
        self.stores += 1
        self.bus.publish(
            CacheStoreEvent(
                digest=digest, name=experiment.name, num_bytes=len(payload)
            )
        )
        return digest

    def evict(self, digest: str) -> bool:
        """Remove one entry; returns whether a file was deleted."""
        try:
            os.unlink(self.path_for(digest))
            return True
        except OSError:
            return False

    def _miss(self, digest: str, name: str, reason: str):
        self.misses += 1
        self.bus.publish(CacheMissEvent(digest=digest, name=name, reason=reason))
        return None

    def _load(self, path: Path, expect_digest: Optional[str] = None) -> Dict:
        """Read and validate one entry; raises :class:`CacheEntryError`.

        Validation covers the metadata (schema, version, key) *and* the
        payload: the summary's fingerprint digest is recomputed and must
        equal the stored one, which is what makes a hit provably
        byte-identical to the run that produced the entry.
        """
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            raise
        except Exception as exc:  # pickle / EOF / attribute errors
            raise CacheEntryError(f"unreadable entry: {exc}") from exc
        if not isinstance(entry, dict):
            raise CacheEntryError("entry is not a mapping")
        if entry.get("schema") != CACHE_SCHEMA:
            raise CacheEntryError(
                f"schema {entry.get('schema')!r} != {CACHE_SCHEMA}"
            )
        if entry.get("version") != self.version:
            raise CacheEntryError(
                f"version {entry.get('version')!r} != {self.version!r}"
            )
        if expect_digest is not None and entry.get("config_digest") != expect_digest:
            raise CacheEntryError("entry key does not match its file name")
        try:
            actual = fingerprint_digest(entry["summary"])
        except Exception as exc:
            raise CacheEntryError(f"unfingerprintable summary: {exc}") from exc
        if actual != entry.get("fingerprint"):
            raise CacheEntryError("summary does not match stored fingerprint")
        return entry

    # -- maintenance ---------------------------------------------------

    def entry_paths(self) -> List[Path]:
        """Every entry file under the root, in stable (digest) order."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"*/*{ENTRY_SUFFIX}"))

    def stats(self) -> Dict[str, Any]:
        """On-disk census plus this process's traffic counters."""
        entries = 0
        total_bytes = 0
        versions: Dict[str, int] = {}
        for path in self.entry_paths():
            entries += 1
            with _suppress_oserror():
                total_bytes += path.stat().st_size
            try:
                with open(path, "rb") as fh:
                    entry = pickle.load(fh)
                version = str(entry.get("version"))
            except Exception:
                version = "<corrupt>"
            versions[version] = versions.get(version, 0) + 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "versions": dict(sorted(versions.items())),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }

    def verify(
        self,
        sample: Optional[int] = None,
        seed: int = 0,
        checked: bool = False,
        evict: bool = True,
    ) -> VerifyReport:
        """Validate every entry; re-run a seeded sample against the store.

        Every entry is loaded and metadata-validated (corrupt ones are
        evicted).  A seeded sample of ``sample`` valid entries (all of
        them when ``None``) is then recomputed from its stored
        experiment — in checked mode (invariant sanitizer attached) when
        ``checked`` — and the fresh fingerprint digest must be
        byte-identical to the stored one; mismatches are evicted.
        ``evict=False`` reports without deleting.
        """
        from dataclasses import replace as _replace

        from ..harness.runner import run_experiment_summary

        report = VerifyReport()
        valid: List[Dict] = []
        for path in self.entry_paths():
            report.entries += 1
            digest = path.name[: -len(ENTRY_SUFFIX)]
            try:
                valid.append(self._load(path, expect_digest=digest))
            except (CacheEntryError, FileNotFoundError):
                report.corrupt.append(digest)
                if evict and self.evict(digest):
                    report.evicted += 1
        if sample is not None and sample < len(valid):
            valid = random.Random(seed).sample(valid, sample)
        for entry in valid:
            report.sampled += 1
            experiment = entry["experiment"]
            if checked:
                experiment = _replace(
                    experiment,
                    server=_replace(experiment.server, checked_mode=True),
                )
            fresh = fingerprint_digest(run_experiment_summary(experiment))
            if fresh == entry["fingerprint"]:
                report.verified_ok += 1
            else:
                report.mismatched.append(entry["config_digest"])
                if evict and self.evict(entry["config_digest"]):
                    report.evicted += 1
        return report

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> GcReport:
        """Reclaim space: foreign, stale, then oldest-over-budget entries.

        Unreadable entries and entries written by another schema or
        ``repro`` version go first (the current version can never hit
        them).  Entries older than ``max_age_days`` go next.  If the
        survivors still exceed ``max_bytes``, the oldest are evicted
        until the cache fits.
        """
        report = GcReport()
        survivors: List[tuple] = []  # (created, size, digest)
        for path in self.entry_paths():
            report.entries_before += 1
            size = 0
            with _suppress_oserror():
                size = path.stat().st_size
            report.bytes_before += size
            digest = path.name[: -len(ENTRY_SUFFIX)]
            try:
                entry = self._load(path, expect_digest=digest)
            except (CacheEntryError, FileNotFoundError):
                self.evict(digest)
                report.evicted_foreign += 1
                continue
            created = float(entry.get("created", 0.0))
            if (
                max_age_days is not None
                and time.time() - created > max_age_days * 86400.0
            ):
                self.evict(digest)
                report.evicted_stale += 1
                continue
            survivors.append((created, size, digest))
        survivors.sort()
        if max_bytes is not None:
            total = sum(size for _, size, _ in survivors)
            while survivors and total > max_bytes:
                created, size, digest = survivors.pop(0)
                self.evict(digest)
                total -= size
                report.evicted_over_budget += 1
        report.entries_after = len(survivors)
        report.bytes_after = sum(size for _, size, _ in survivors)
        return report
