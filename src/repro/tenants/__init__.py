"""Tenant tier: multi-tenant configs, scenarios, and isolation sweeps.

IDIO evaluates inbound-data placement with one implicit tenant; IOCA
(PAPERS.md) shows the LLC/DDIO contention problem is fundamentally
multi-tenant.  This package makes tenants first-class:

* :mod:`repro.tenants.config` — frozen :class:`TenantConfig` /
  :class:`TenantSet` attached to ``ServerConfig``, plus the per-tenant
  seeded RNG stream :func:`tenant_rng` (SIM016 requires all tenant code
  draw randomness from it);
* :mod:`repro.tenants.scenarios` — named tenant mixes (noisy neighbor,
  balanced, antagonist) scaled by an intensity knob;
* :mod:`repro.tenants.sweep` — ``run_tenants``: the policy × intensity
  isolation matrix behind ``repro tenants``.

This module deliberately re-exports only the config layer: the sweep
imports the harness (which imports this package for the ``ServerConfig``
field type), so ``run_tenants`` must be imported from
``repro.tenants.sweep`` to keep the import graph acyclic.
"""

from .config import (
    PRIORITY_CLASSES,
    TENANT_ROLES,
    TENANT_TRAFFIC_KINDS,
    TenantConfig,
    TenantSet,
    tenant_rng,
)

__all__ = [
    "PRIORITY_CLASSES",
    "TENANT_ROLES",
    "TENANT_TRAFFIC_KINDS",
    "TenantConfig",
    "TenantSet",
    "tenant_rng",
]
