"""Tenant configuration: who owns which flows, cores, and LLC ways.

A :class:`TenantConfig` binds one tenant's identity to its flow
population (lane/slot tagged through :func:`repro.net.flow.make_tenant_flow`),
its NF/app binding, its LLC I/O way quota, and a priority class the
partitioning controller weighs.  A :class:`TenantSet` groups the tenants
co-located on one server and rides on ``ServerConfig.tenants`` so the
whole arrangement is digest- and fingerprint-visible (SIM013).

Randomness discipline mirrors the rack tier: every stochastic draw a
tenant makes must come from :func:`tenant_rng`, the per-tenant seeded
stream, so adding or reordering tenants never perturbs another tenant's
arrivals (enforced by simlint SIM016).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Tuple

from ..net.flow import FLOW_LANE_SPAN, _mix64

#: Priority classes the partitioning controller understands.  ``latency``
#: tenants get a weighting boost when ways are apportioned; ``bulk``
#: tenants yield first under pressure.
PRIORITY_CLASSES = ("latency", "normal", "bulk")

#: Scenario roles (used by the isolation matrix to pick the victim whose
#: p99 degradation is scored; ``workload`` tenants are neutral).
TENANT_ROLES = ("workload", "victim", "aggressor")

#: Traffic shapes a tenant's generators can follow.
TENANT_TRAFFIC_KINDS = ("bursty", "steady", "heavy-tail", "poisson")

#: Ceiling on co-located tenants: way masks and core blocks stay small.
MAX_TENANTS = 16


def tenant_rng(seed: int, tenant: int) -> random.Random:
    """The per-tenant RNG stream for ``tenant`` under sweep ``seed``.

    Mirrors ``repro.rack.server_rng``: the sweep seed occupies the high
    bits and the tenant id perturbs the low bits before a SplitMix64
    avalanche, so streams are decorrelated across both axes and tenant
    ``k``'s draws never depend on how many tenants precede it.
    """
    return random.Random(_mix64(((seed & 0xFFFF_FFFF) << 24) ^ (tenant + 1)))


@dataclass(frozen=True, slots=True)
class TenantConfig:
    """One tenant's identity, traffic, NF binding, and LLC quota.

    ``tenant_id`` doubles as the flow lane (see
    :func:`repro.net.flow.make_tenant_flow`) and the index of the
    tenant's core block, so ids must be dense: ``TenantSet`` requires
    tenant ``i`` at position ``i``.
    """

    tenant_id: int
    name: str
    app: str = "touchdrop"
    #: NF cores dedicated to this tenant (assigned as one contiguous
    #: block, in tenant order, so DMA buffer ranges stay per-tenant).
    nf_cores: int = 1
    flows_per_core: int = 1
    traffic: str = "steady"
    #: Per-core offered rate (steady/poisson/heavy-tail) or burst rate
    #: (bursty), in Gbps.
    rate_gbps: float = 10.0
    packets_per_burst: int = 64
    num_bursts: int = 2
    burst_period_us: float = 40.0
    heavy_tail_alpha: float = 1.5
    #: Guaranteed DDIO/LLC I/O ways under static partitioning; the floor
    #: (before priority weighting) under the dynamic IOCA-style policy.
    llc_way_quota: int = 1
    priority: str = "normal"
    role: str = "workload"
    #: Give this tenant a cache-thrashing LLCAntagonist core of its own.
    antagonist: bool = False
    antagonist_footprint_bytes: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ValueError(f"tenant_id must be non-negative, got {self.tenant_id}")
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.nf_cores <= 0:
            raise ValueError(f"nf_cores must be positive, got {self.nf_cores}")
        if self.flows_per_core <= 0:
            raise ValueError(
                f"flows_per_core must be positive, got {self.flows_per_core}"
            )
        if self.num_flows > FLOW_LANE_SPAN:
            raise ValueError(
                f"tenant {self.tenant_id} needs {self.num_flows} flow slots; "
                f"a lane holds {FLOW_LANE_SPAN}"
            )
        if self.traffic not in TENANT_TRAFFIC_KINDS:
            raise ValueError(
                f"unknown tenant traffic {self.traffic!r}; "
                f"choose from {TENANT_TRAFFIC_KINDS}"
            )
        if self.rate_gbps <= 0:
            raise ValueError(f"rate_gbps must be positive, got {self.rate_gbps}")
        if self.packets_per_burst <= 0 or self.num_bursts <= 0:
            raise ValueError("burst shape parameters must be positive")
        if self.burst_period_us <= 0:
            raise ValueError(
                f"burst_period_us must be positive, got {self.burst_period_us}"
            )
        if self.heavy_tail_alpha <= 1.0:
            raise ValueError(
                f"heavy_tail_alpha must exceed 1.0, got {self.heavy_tail_alpha}"
            )
        if self.llc_way_quota <= 0:
            raise ValueError(
                f"llc_way_quota must be positive, got {self.llc_way_quota}"
            )
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"unknown priority {self.priority!r}; choose from {PRIORITY_CLASSES}"
            )
        if self.role not in TENANT_ROLES:
            raise ValueError(
                f"unknown tenant role {self.role!r}; choose from {TENANT_ROLES}"
            )
        if self.antagonist_footprint_bytes <= 0:
            raise ValueError("antagonist_footprint_bytes must be positive")

    @property
    def num_flows(self) -> int:
        """Distinct tagged flows this tenant offers (one lane's slots)."""
        return self.nf_cores * self.flows_per_core


@dataclass(frozen=True, slots=True)
class TenantSet:
    """The tenants co-located on one server, plus the sweep seed.

    Tenants are ordered by id (``tenants[i].tenant_id == i``) so the
    NF-core blocks, DMA buffer ranges, and antagonist cores derived from
    the set are all deterministic functions of the config alone.
    """

    tenants: Tuple[TenantConfig, ...]
    seed: int = field(default=1234)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a TenantSet needs at least one tenant")
        if len(self.tenants) > MAX_TENANTS:
            raise ValueError(
                f"at most {MAX_TENANTS} tenants per server, got {len(self.tenants)}"
            )
        for index, tenant in enumerate(self.tenants):
            if tenant.tenant_id != index:
                raise ValueError(
                    f"tenant ids must be dense and ordered: position {index} "
                    f"holds tenant_id {tenant.tenant_id}"
                )
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")

    def __len__(self) -> int:
        return len(self.tenants)

    def __iter__(self):
        return iter(self.tenants)

    @property
    def total_nf_cores(self) -> int:
        """NF cores across all tenants (the server's ``num_nf_cores``)."""
        return sum(t.nf_cores for t in self.tenants)

    @property
    def num_antagonists(self) -> int:
        return sum(1 for t in self.tenants if t.antagonist)

    @property
    def total_way_quota(self) -> int:
        """Sum of per-tenant I/O way quotas (checked against ``ddio_ways``)."""
        return sum(t.llc_way_quota for t in self.tenants)

    def core_tenant(self, core: int) -> int:
        """The tenant owning NF core ``core`` (blocks in tenant order)."""
        base = 0
        for tenant in self.tenants:
            if core < base + tenant.nf_cores:
                return tenant.tenant_id
            base += tenant.nf_cores
        raise ValueError(f"core {core} is not an NF core of this tenant set")

    def tenant_cores(self, tenant_id: int) -> range:
        """The contiguous NF-core block assigned to ``tenant_id``."""
        base = 0
        for tenant in self.tenants:
            if tenant.tenant_id == tenant_id:
                return range(base, base + tenant.nf_cores)
            base += tenant.nf_cores
        raise ValueError(f"no tenant with id {tenant_id}")

    def victims(self) -> Tuple[int, ...]:
        """Tenant ids playing the ``victim`` role (isolation scoring)."""
        return tuple(t.tenant_id for t in self.tenants if t.role == "victim")

    def aggressors(self) -> Tuple[int, ...]:
        """Tenant ids playing the ``aggressor`` role."""
        return tuple(t.tenant_id for t in self.tenants if t.role == "aggressor")


__all__ = [
    "MAX_TENANTS",
    "PRIORITY_CLASSES",
    "TENANT_ROLES",
    "TENANT_TRAFFIC_KINDS",
    "TenantConfig",
    "TenantSet",
    "tenant_rng",
]
