"""Named multi-tenant scenario packs for the isolation sweeps.

A *mix* is a recipe for a :class:`~repro.tenants.config.TenantSet`:
which tenants co-locate, what traffic each offers, and who plays victim
versus aggressor.  The ``intensity`` knob scales the aggressors' offered
load *in the config itself*, so two intensities produce two distinct
cache digests and the result cache never conflates them.

The packs compose with ``repro.faults``: a fault plan attaches to the
``ServerConfig`` built by :func:`tenant_server` exactly as it would for
a single-tenant run.
"""

from __future__ import annotations

from typing import Tuple

from ..core.policies import PolicyConfig
from ..harness.experiment import Experiment
from ..harness.server import ServerConfig
from ..sim import units
from .config import TenantConfig, TenantSet

#: Mix names accepted by :func:`tenant_mix` and the ``--tenant-mix`` flag.
TENANT_MIXES = ("noisy-neighbor", "balanced", "antagonist-storm")

#: Default LLC shape for tenant runs: a 4-way DDIO partition leaves the
#: partitioning policies room to move ways between tenants, and the
#: smaller capacity (fewer sets) makes aggressor DMA actually thrash the
#: shared partition within a victim packet's queueing window — with the
#: stock 3 MB LLC the per-set fill pressure is too low to ever evict a
#: victim line before its core reads it, and every policy looks perfect.
TENANT_LLC_BYTES = 768 * 1024
TENANT_LLC_WAYS = 12
TENANT_DDIO_WAYS = 4


def _aggressor_rate(intensity: float) -> float:
    """Aggressor offered rate in Gbps; floored so intensity 0 is legal."""
    return max(0.5, 40.0 * intensity)


def tenant_mix(
    name: str,
    tenants: int = 2,
    intensity: float = 1.0,
    seed: int = 1234,
) -> TenantSet:
    """Build the named scenario pack with ``tenants`` co-located tenants.

    ``intensity`` scales the aggressors' offered rate (victims are
    untouched), so sweeping it traces out the victim-degradation curve.
    """
    if name not in TENANT_MIXES:
        raise ValueError(f"unknown tenant mix {name!r}; choose from {TENANT_MIXES}")
    if tenants < 1:
        raise ValueError(f"need at least one tenant, got {tenants}")
    if intensity < 0:
        raise ValueError(f"intensity must be non-negative, got {intensity}")
    members: Tuple[TenantConfig, ...]
    if name == "balanced":
        members = tuple(
            TenantConfig(
                tenant_id=i,
                name=f"t{i}",
                traffic="steady",
                rate_gbps=max(0.5, 10.0 * intensity),
                llc_way_quota=1,
            )
            for i in range(tenants)
        )
    elif name == "noisy-neighbor":
        if tenants < 2:
            raise ValueError("the noisy-neighbor mix needs at least two tenants")
        victim = TenantConfig(
            tenant_id=0,
            name="victim",
            traffic="bursty",
            rate_gbps=25.0,
            packets_per_burst=48,
            num_bursts=3,
            burst_period_us=30.0,
            llc_way_quota=1,
            priority="latency",
            role="victim",
        )
        aggressors = tuple(
            TenantConfig(
                tenant_id=i,
                name=f"aggressor{i}",
                traffic="heavy-tail",
                rate_gbps=_aggressor_rate(intensity),
                heavy_tail_alpha=1.3,
                llc_way_quota=1,
                priority="bulk",
                role="aggressor",
                antagonist=True,
            )
            for i in range(1, tenants)
        )
        members = (victim,) + aggressors
    else:  # antagonist-storm
        if tenants < 2:
            raise ValueError("the antagonist-storm mix needs at least two tenants")
        victim = TenantConfig(
            tenant_id=0,
            name="victim",
            traffic="steady",
            rate_gbps=15.0,
            llc_way_quota=1,
            priority="latency",
            role="victim",
        )
        aggressors = tuple(
            TenantConfig(
                tenant_id=i,
                name=f"storm{i}",
                traffic="poisson",
                rate_gbps=_aggressor_rate(intensity),
                llc_way_quota=1,
                priority="bulk",
                role="aggressor",
                antagonist=True,
                antagonist_footprint_bytes=8 * 1024 * 1024,
            )
            for i in range(1, tenants)
        )
        members = (victim,) + aggressors
    return TenantSet(tenants=members, seed=seed)


def tenant_server(
    tenants: TenantSet,
    policy: PolicyConfig,
    checked: bool = False,
) -> ServerConfig:
    """A ``ServerConfig`` shaped for ``tenants`` under ``policy``."""
    return ServerConfig(
        policy=policy,
        num_nf_cores=tenants.total_nf_cores,
        llc_bytes=TENANT_LLC_BYTES,
        llc_ways=TENANT_LLC_WAYS,
        ddio_ways=TENANT_DDIO_WAYS,
        tenants=tenants,
        checked_mode=checked,
    )


def tenant_experiment(
    tenants: TenantSet,
    policy: PolicyConfig,
    name: str,
    duration_us: float = 200.0,
    checked: bool = False,
) -> Experiment:
    """One isolation-matrix cell: ``tenants`` under ``policy``.

    The traffic schedule itself comes from
    :meth:`~repro.harness.server.SimulatedServer.inject_tenants`, which
    reads each tenant's traffic shape off the config; ``duration_us``
    bounds the injection window.
    """
    return Experiment(
        name=name,
        server=tenant_server(tenants, policy, checked=checked),
        traffic="steady",
        steady_duration=int(units.microseconds(duration_us)),
    )


__all__ = [
    "TENANT_DDIO_WAYS",
    "TENANT_LLC_BYTES",
    "TENANT_LLC_WAYS",
    "TENANT_MIXES",
    "tenant_experiment",
    "tenant_mix",
    "tenant_server",
]
