"""The ``repro tenants`` isolation sweep: policy x mix x intensity.

Each cell runs one multi-tenant server — a scenario pack from
:mod:`repro.tenants.scenarios` under one LLC policy — and reads the
per-tenant p50/p95/p99 tail latencies off
``ExperimentSummary.tenant_stats``.  The fold scores *victim
degradation*: how much a victim tenant's p99 inflates as aggressor
intensity rises, relative to the same policy's quietest cell.  IOCA-style
dynamic partitioning should hold that ratio near 1 where plain DDIO lets
it climb.

Cells fan out through :func:`repro.harness.runner.run_sweep`, so the
matrix shards over the warm worker pool and memoizes per-cell summaries
in the result cache exactly like the fault and rack sweeps.

This module imports the harness, so it must *not* be re-exported from
``repro.tenants.__init__`` (the harness imports ``repro.tenants.config``;
see the package docstring).  Import :func:`run_tenants` from here or via
``repro.api``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.determinism import fingerprint_digest
from ..core.policies import PolicyConfig
from ..harness.report import format_table
from ..harness.runner import run_sweep
from ..obs.bus import EventBus
from ..obs.events import TenantLaneSeries
from .config import TenantSet
from .scenarios import tenant_experiment, tenant_mix

#: Per-tenant percentile streams published as :class:`TenantLaneSeries`
#: when a trace recorder subscribes.
TENANT_LANE_STREAMS = ("p50_us", "p95_us", "p99_us")


@dataclass
class TenantCell:
    """One (policy, intensity) cell of the isolation matrix."""

    policy: str
    intensity: float
    #: ``{tenant_id: {completed, dma_writes, io_lines, io_ways,
    #: p50_us, p95_us, p99_us}}`` straight off the summary.
    tenant_stats: Dict[int, Dict[str, float]]
    digest: str
    status: str
    cached: bool = False

    def stat(self, tenant: int, key: str) -> float:
        return self.tenant_stats.get(tenant, {}).get(key, 0.0)


@dataclass
class TenantSweepSummary:
    """The deterministic fold of one isolation sweep."""

    mix: str
    num_tenants: int
    tenants: Optional[TenantSet]
    policies: Sequence[str]
    intensities: Sequence[float]
    cells: List[TenantCell] = field(default_factory=list)
    #: 0 = all cells ran; 1 = partial failure; 2 = nothing ran.
    exit_code: int = 0
    #: SHA-256 over the matrix shape and per-cell digests — equal for a
    #: serial and a pool-sharded sweep of the same seeded matrix.
    fingerprint: str = ""

    def cell(self, policy: str, intensity: float) -> Optional[TenantCell]:
        for cell in self.cells:
            if cell.policy == policy and cell.intensity == intensity:
                return cell
        return None

    def _victim_ids(self) -> Sequence[int]:
        if self.tenants is not None and self.tenants.victims():
            return self.tenants.victims()
        return (0,)

    def victim_p99(self, policy: str, intensity: float) -> float:
        """Worst victim p99 (us) in the named cell (0.0 if it failed)."""
        cell = self.cell(policy, intensity)
        if cell is None:
            return 0.0
        return max(cell.stat(t, "p99_us") for t in self._victim_ids())

    def victim_degradation(self, policy: str) -> Dict[float, float]:
        """``{intensity: victim p99 / quietest-cell victim p99}``.

        The same policy's lowest-intensity cell is the baseline, so the
        score isolates *neighbor pressure* from the policy's intrinsic
        latency: 1.0 means perfect isolation.
        """
        baseline = None
        for intensity in sorted(self.intensities):
            value = self.victim_p99(policy, intensity)
            if value > 0:
                baseline = value
                break
        out: Dict[float, float] = {}
        for intensity in self.intensities:
            value = self.victim_p99(policy, intensity)
            out[intensity] = value / baseline if baseline else 0.0
        return out

    def compute_fingerprint(self) -> str:
        """Digest of the matrix: shape + per-cell summary fingerprints.

        Cell digests come from :func:`fingerprint_digest` (which folds in
        ``tenant_stats``), so a serial sweep and a warm-pool sweep of the
        same seeded matrix — and a cache hit replaying either — are
        byte-identical.
        """
        payload = repr(
            (
                self.mix,
                self.num_tenants,
                tuple(self.policies),
                tuple(self.intensities),
                tuple((c.policy, c.intensity, c.digest) for c in self.cells),
            )
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def render(self) -> str:
        """An ASCII matrix: one row per (policy, intensity, tenant)."""
        rows: List[List[object]] = []
        for cell in self.cells:
            for tenant in sorted(cell.tenant_stats):
                rows.append(
                    [
                        cell.policy,
                        f"{cell.intensity:g}",
                        f"t{tenant}",
                        int(cell.stat(tenant, "completed")),
                        int(cell.stat(tenant, "dma_writes")),
                        int(cell.stat(tenant, "io_ways")),
                        round(cell.stat(tenant, "p50_us"), 2),
                        round(cell.stat(tenant, "p95_us"), 2),
                        round(cell.stat(tenant, "p99_us"), 2),
                        cell.status,
                    ]
                )
        table = format_table(
            ["policy", "intensity", "tenant", "completed", "dma",
             "io ways", "p50 us", "p95 us", "p99 us", "status"],
            rows,
            title=(
                f"tenant isolation: {self.mix} x{self.num_tenants} "
                f"({len(self.cells)} cells)"
            ),
        )
        scores: List[str] = []
        for policy in self.policies:
            degradation = self.victim_degradation(policy)
            worst = max(degradation.values()) if degradation else 0.0
            scores.append(f"{policy}: worst victim degradation {worst:.2f}x")
        return table + "\n" + "\n".join(scores)

    def to_json(self) -> Dict[str, Any]:
        """A JSON-able dict (CLI ``--out`` artifact)."""
        return {
            "mix": self.mix,
            "num_tenants": self.num_tenants,
            "policies": list(self.policies),
            "intensities": list(self.intensities),
            "fingerprint": self.fingerprint,
            "exit_code": self.exit_code,
            "victim_degradation": {
                policy: {
                    f"{intensity:g}": value
                    for intensity, value in self.victim_degradation(policy).items()
                }
                for policy in self.policies
            },
            "cells": [
                {
                    "policy": cell.policy,
                    "intensity": cell.intensity,
                    "status": cell.status,
                    "cached": cell.cached,
                    "digest": cell.digest,
                    "tenants": {
                        f"t{tenant}": stats
                        for tenant, stats in sorted(cell.tenant_stats.items())
                    },
                }
                for cell in self.cells
            ],
        }


def _publish_lanes(
    bus: EventBus, summary: TenantSweepSummary
) -> None:
    """Publish per-tenant percentile series, gated on live subscribers.

    One :class:`TenantLaneSeries` per (tenant, policy, stream); points
    are ``(intensity, value_us)`` pairs across the sweep's cells, so a
    trace recorder can draw the degradation curves directly.
    """
    if not bus.has_subscribers(TenantLaneSeries):
        return
    tenant_ids = sorted(
        {tenant for cell in summary.cells for tenant in cell.tenant_stats}
    )
    for tenant in tenant_ids:
        for policy in summary.policies:
            for stream in TENANT_LANE_STREAMS:
                points = tuple(
                    (cell.intensity, cell.stat(tenant, stream))
                    for cell in summary.cells
                    if cell.policy == policy
                )
                bus.publish(
                    TenantLaneSeries(
                        tenant=tenant,
                        stream=f"{policy}:{stream}",
                        points=points,
                    )
                )


def run_tenants(
    policies: Sequence[PolicyConfig],
    mix: str = "noisy-neighbor",
    tenants: int = 2,
    intensities: Sequence[float] = (0.25, 1.0, 2.0),
    seed: int = 1234,
    duration_us: float = 200.0,
    jobs: int = 1,
    cache=None,
    checked: bool = False,
    bus: Optional[EventBus] = None,
) -> TenantSweepSummary:
    """Run the isolation matrix: ``policies`` x ``intensities`` cells.

    Every cell is an independent seeded experiment, so the matrix shards
    over the warm pool (``jobs``) and memoizes in the result cache
    (``cache``, following :func:`repro.harness.runner.run_experiments`
    semantics).  Pass an :class:`~repro.obs.bus.EventBus` with a
    :class:`TenantLaneSeries` subscriber to capture degradation curves.
    """
    if not policies:
        raise ValueError("run_tenants needs at least one policy")
    if not intensities:
        raise ValueError("run_tenants needs at least one intensity")
    experiments = []
    keys = []
    tenant_sets: Dict[float, TenantSet] = {}
    for policy in policies:
        for intensity in intensities:
            ts = tenant_sets.get(intensity)
            if ts is None:
                ts = tenant_mix(mix, tenants=tenants, intensity=intensity, seed=seed)
                tenant_sets[intensity] = ts
            name = f"tenants-{mix}-{policy.name}-i{intensity:g}"
            experiments.append(
                tenant_experiment(
                    ts,
                    policy,
                    name,
                    duration_us=duration_us,
                    checked=checked,
                )
            )
            keys.append((policy.name, intensity))
    result = run_sweep(experiments, jobs=jobs, cache=cache)
    summary = TenantSweepSummary(
        mix=mix,
        num_tenants=tenants,
        tenants=tenant_sets[intensities[0]],
        policies=[p.name for p in policies],
        intensities=list(intensities),
        exit_code=result.exit_code,
    )
    for (policy_name, intensity), cell_summary, record in zip(
        keys, result.summaries, result.records
    ):
        if cell_summary is None:
            summary.cells.append(
                TenantCell(
                    policy=policy_name,
                    intensity=intensity,
                    tenant_stats={},
                    digest="",
                    status=record.status,
                )
            )
            continue
        summary.cells.append(
            TenantCell(
                policy=policy_name,
                intensity=intensity,
                tenant_stats=cell_summary.tenant_stats,
                digest=fingerprint_digest(cell_summary),
                status=record.status,
                cached=record.status == "cached",
            )
        )
    summary.fingerprint = summary.compute_fingerprint()
    if bus is not None:
        _publish_lanes(bus, summary)
    return summary


__all__ = [
    "TENANT_LANE_STREAMS",
    "TenantCell",
    "TenantSweepSummary",
    "run_tenants",
]
