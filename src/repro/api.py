"""The stable public facade of the ``repro`` package.

Everything re-exported here — and nothing else — is covered by the API
stability policy in ``docs/api.md``: these names keep working across
minor versions, while the subpackages behind them (``repro.mem``,
``repro.nic``, ``repro.core``, ...) are internal and may change shape in
any release.  ``repro/__init__`` re-exports exactly this module, so
``from repro import run_experiment`` and ``from repro.api import
run_experiment`` are the same promise.

The facade covers the three things external code does:

* **build & run** — :func:`build_server`, :func:`run_experiment`,
  :func:`run_experiments`, :func:`run_policy_comparison`, configured via
  :class:`ServerConfig` / :class:`Experiment` / :class:`PolicyConfig`;
* **resilient sweeps** — :func:`run_sweep` with per-experiment timeouts,
  crash retry, and a partial-result :class:`SweepResult`;
* **fault injection** — :class:`FaultPlan` / :class:`FaultSpec` /
  :func:`standard_plan` schedules riding inside ``ServerConfig``, with
  injections observable as :class:`FaultEvent` counts;
* **rack-scale sweeps** — :class:`RackConfig` / :class:`SimulatedRack` /
  :func:`run_rack`, a ToR load balancer steering flows across N servers
  and folding per-server summaries into a :class:`RackSummary`;
* **multi-tenant isolation** — :class:`TenantConfig` / :class:`TenantSet`
  riding on ``ServerConfig.tenants`` for per-tenant flow tagging and DMA
  attribution, the :func:`ioca` dynamic way-partitioning policy, and
  :func:`run_tenants`, the policy x intensity isolation matrix;
* **result caching** — :class:`ResultCache`, the fingerprint-keyed
  on-disk memoization every runner entry point consults (hits are
  byte-identical to cold recomputes), and :func:`run_serve`, the
  ``repro serve`` sweep daemon answering repeated sweeps from the warm
  cache (``docs/caching.md``).
"""

from __future__ import annotations

from .cache import ResultCache, run_serve
from .core.policies import PolicyConfig, all_policies, ddio, idio, ioca
from .faults import (
    FAULT_KINDS,
    FAULT_LAYERS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    standard_plan,
)
from .harness.experiment import (
    Experiment,
    ExperimentResult,
    ExperimentSummary,
    run_experiment,
    run_policy_comparison,
)
from .harness.runner import (
    SweepRecord,
    SweepResult,
    run_experiments,
    run_sweep,
)
from .harness.server import ServerConfig, SimulatedServer
from .rack import RackConfig, RackSummary, SimulatedRack, run_rack
from .sim import Simulator, units
from .tenants.config import TenantConfig, TenantSet
from .tenants.sweep import run_tenants


def build_server(config: ServerConfig) -> SimulatedServer:
    """Build one fully wired simulated server from a config.

    The returned server is un-started: call :meth:`SimulatedServer.start`,
    inject traffic, then drive it with :meth:`SimulatedServer.run` /
    :meth:`SimulatedServer.run_until_drained`.  Most callers want
    :func:`run_experiment`, which does all of that; ``build_server`` is
    the escape hatch for custom traffic schedules and white-box
    inspection.
    """
    return SimulatedServer(config)


__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSummary",
    "FAULT_KINDS",
    "FAULT_LAYERS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "PolicyConfig",
    "RackConfig",
    "RackSummary",
    "ResultCache",
    "ServerConfig",
    "SimulatedRack",
    "SimulatedServer",
    "Simulator",
    "SweepRecord",
    "SweepResult",
    "TenantConfig",
    "TenantSet",
    "all_policies",
    "build_server",
    "ddio",
    "idio",
    "ioca",
    "run_experiment",
    "run_experiments",
    "run_policy_comparison",
    "run_rack",
    "run_serve",
    "run_sweep",
    "run_tenants",
    "standard_plan",
    "units",
]
