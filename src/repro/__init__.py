"""repro — a Python reproduction of IDIO (MICRO 2022).

IDIO extends DDIO — the technology that lands inbound network DMA in the
last-level cache — with network-driven orchestration across the whole
hierarchy: self-invalidating I/O buffers, burst-triggered MLC prefetching,
and selective direct DRAM access.  This package implements the full system
stack the paper evaluates (non-inclusive cache hierarchy, NIC with Flow
Director, PCIe TLP metadata transport, DPDK-style polling network
functions) as a discrete-event simulation, plus the harness reproducing
every figure in the paper's evaluation.

Quick start::

    from repro import Experiment, ServerConfig, run_experiment
    from repro.core import ddio, idio

    exp = Experiment(server=ServerConfig(app="touchdrop", ring_size=1024),
                     burst_rate_gbps=25.0)
    base = run_experiment(exp.with_policy(ddio()))
    ours = run_experiment(exp.with_policy(idio()))
    print(ours.normalized_to(base))
"""

from . import core, cpu, harness, mem, net, nic, obs, pcie, sim
from .core import IDIOConfig, IDIOController, PolicyConfig, all_policies
from .harness import (
    Experiment,
    ExperimentResult,
    ExperimentSummary,
    ServerConfig,
    SimulatedServer,
    run_experiment,
    run_experiments,
    run_policy_comparison,
)
from .mem import HierarchyConfig, MemoryHierarchy
from .sim import Simulator, units

__version__ = "0.1.0"

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSummary",
    "HierarchyConfig",
    "IDIOConfig",
    "IDIOController",
    "MemoryHierarchy",
    "PolicyConfig",
    "ServerConfig",
    "SimulatedServer",
    "Simulator",
    "all_policies",
    "core",
    "cpu",
    "harness",
    "mem",
    "net",
    "nic",
    "obs",
    "pcie",
    "run_experiment",
    "run_experiments",
    "run_policy_comparison",
    "sim",
    "units",
]
