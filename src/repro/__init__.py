"""repro — a Python reproduction of IDIO (MICRO 2022).

IDIO extends DDIO — the technology that lands inbound network DMA in the
last-level cache — with network-driven orchestration across the whole
hierarchy: self-invalidating I/O buffers, burst-triggered MLC prefetching,
and selective direct DRAM access.  This package implements the full system
stack the paper evaluates (non-inclusive cache hierarchy, NIC with Flow
Director, PCIe TLP metadata transport, DPDK-style polling network
functions) as a discrete-event simulation, plus the harness reproducing
every figure in the paper's evaluation.

This top-level module re-exports exactly the stable facade defined in
:mod:`repro.api`; see ``docs/api.md`` for the stability policy.
Subpackages (``repro.mem``, ``repro.harness``, ...) remain importable for
white-box work but are internal surface.

Quick start::

    from repro import Experiment, ServerConfig, run_experiment
    from repro.core import ddio, idio

    exp = Experiment(server=ServerConfig(app="touchdrop", ring_size=1024),
                     burst_rate_gbps=25.0)
    base = run_experiment(exp.with_policy(ddio()))
    ours = run_experiment(exp.with_policy(idio()))
    print(ours.normalized_to(base))
"""

from .api import (
    FAULT_KINDS,
    FAULT_LAYERS,
    Experiment,
    ExperimentResult,
    ExperimentSummary,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    PolicyConfig,
    RackConfig,
    RackSummary,
    ResultCache,
    ServerConfig,
    SimulatedRack,
    SimulatedServer,
    Simulator,
    SweepRecord,
    SweepResult,
    TenantConfig,
    TenantSet,
    all_policies,
    build_server,
    ddio,
    idio,
    ioca,
    run_experiment,
    run_experiments,
    run_policy_comparison,
    run_rack,
    run_serve,
    run_sweep,
    run_tenants,
    standard_plan,
    units,
)

__version__ = "0.5.0"

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSummary",
    "FAULT_KINDS",
    "FAULT_LAYERS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "PolicyConfig",
    "RackConfig",
    "RackSummary",
    "ResultCache",
    "ServerConfig",
    "SimulatedRack",
    "SimulatedServer",
    "Simulator",
    "SweepRecord",
    "SweepResult",
    "TenantConfig",
    "TenantSet",
    "all_policies",
    "build_server",
    "ddio",
    "idio",
    "ioca",
    "run_experiment",
    "run_experiments",
    "run_policy_comparison",
    "run_rack",
    "run_serve",
    "run_sweep",
    "run_tenants",
    "standard_plan",
    "units",
]
