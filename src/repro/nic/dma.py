"""NIC DMA engine: turns packets into PCIe line transactions.

The engine serializes all transfers over one PCIe link modeled as a
constant-rate server.  Per-packet data transfers are executed as a batch of
full-cacheline memory-write TLPs at the packet's link-completion time; this
keeps event counts proportional to packets while preserving link pacing
(the intra-packet skew of ~100 ns is far below the 10 us sampling interval
used by every figure).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..mem.line import LINE_SIZE, lines_spanning
from ..pcie.root_complex import RootComplex
from ..pcie.tlp import IdioTag
from ..sim import Simulator, units


class DMAEngine:
    """Serial PCIe link server issuing line-granular DMA transactions."""

    def __init__(
        self,
        sim: Simulator,
        root_complex: RootComplex,
        pcie_gbps: float = 256.0,
    ) -> None:
        self.sim = sim
        self.root_complex = root_complex
        self.pcie_gbps = pcie_gbps
        self._line_time = units.transfer_time(LINE_SIZE, pcie_gbps)
        self._link_free = 0
        self.lines_written = 0
        self.lines_read = 0
        #: Optional PCIe-layer fault injector (``repro.faults``).
        self.faults = None

    def _occupy_link(self, num_lines: int) -> int:
        """Reserve link time for ``num_lines``; returns the completion tick."""
        start = max(self.sim.now, self._link_free)
        finish = start + num_lines * self._line_time
        self._link_free = finish
        return finish

    def write_buffer(
        self,
        buffer_addr: int,
        num_bytes: int,
        tags: Optional[Sequence[IdioTag]] = None,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> int:
        """DMA-write ``num_bytes`` starting at ``buffer_addr``.

        ``tags`` supplies one IDIO tag per line (None = untagged baseline).
        Returns the scheduled completion tick; ``on_complete`` fires there
        after the hierarchy transactions have executed.
        """
        lines = list(lines_spanning(buffer_addr, num_bytes))
        if tags is not None and len(tags) != len(lines):
            raise ValueError(
                f"got {len(tags)} tags for {len(lines)} lines at {buffer_addr:#x}"
            )
        finish = self._occupy_link(len(lines))
        if self.faults is not None:
            stall = self.faults.link_extra_ticks(self.sim.now, len(lines))
            if stall:
                finish += stall
                self._link_free += stall

        def do_writes() -> None:
            # One batched root-complex call per buffer: each line is still
            # an individual memory-write TLP semantically, but the Python
            # per-line overhead (TLP object + header encode/decode) is
            # hoisted out of the loop.
            self.root_complex.memory_write_batch(lines, tags)
            self.lines_written += len(lines)
            if on_complete is not None:
                on_complete()

        self.sim.schedule_at(finish, do_writes, "dma-write")
        return finish

    def read_buffer(
        self,
        buffer_addr: int,
        num_bytes: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> int:
        """DMA-read ``num_bytes`` (the TX path); returns the completion tick."""
        lines = list(lines_spanning(buffer_addr, num_bytes))
        finish = self._occupy_link(len(lines))
        if self.faults is not None:
            stall = self.faults.link_extra_ticks(self.sim.now, len(lines))
            if stall:
                finish += stall
                self._link_free += stall

        def do_reads() -> None:
            self.root_complex.memory_read_batch(lines)
            self.lines_read += len(lines)
            if on_complete is not None:
                on_complete()

        self.sim.schedule_at(finish, do_reads, "dma-read")
        return finish
