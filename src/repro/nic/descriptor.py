"""RX descriptor rings.

The ring is the NIC/CPU shared structure of Fig. 3: 128-byte descriptors,
each pointing at an MTU-sized DMA buffer.  Three pointers chase each other
around the ring:

* **NIC head** — next descriptor the NIC will fill with an arriving packet;
* **CPU pointer** — next descriptor the polling driver will consume;
* **NIC tail** — one past the last descriptor returned to the NIC (freed).

The *use distance* the paper reasons about is the NIC-head-to-CPU-pointer
gap; :meth:`DescriptorRing.use_distance` exposes it for instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..net.packet import Packet

#: Descriptor size in bytes (§III Observation 1).
DESCRIPTOR_BYTES = 128


@dataclass
class RxDescriptor:
    """One RX descriptor slot."""

    index: int
    #: Byte address of this descriptor in the ring's memory region.
    desc_addr: int
    #: Byte address of the DMA buffer this slot points at.
    buffer_addr: int
    #: The packet occupying the buffer (None when the slot is free).
    packet: Optional[Packet] = None
    #: True once the NIC has written the descriptor back (packet visible).
    done: bool = False


class RingFullError(RuntimeError):
    """Raised when the NIC has no free descriptor (the packet is dropped)."""


class DescriptorRing:
    """A circular RX descriptor ring with NIC-head / CPU / NIC-tail pointers."""

    def __init__(self, size: int, desc_base: int, buffer_base: int, buffer_stride: int) -> None:
        if size <= 0:
            raise ValueError(f"ring size must be positive, got {size}")
        if buffer_stride <= 0:
            raise ValueError(f"buffer stride must be positive, got {buffer_stride}")
        self.size = size
        self.descriptors: List[RxDescriptor] = [
            RxDescriptor(
                index=i,
                desc_addr=desc_base + i * DESCRIPTOR_BYTES,
                buffer_addr=buffer_base + i * buffer_stride,
            )
            for i in range(size)
        ]
        self.nic_head = 0  # next slot the NIC fills
        self.cpu_ptr = 0  # next slot the driver consumes
        self.nic_tail = 0  # next slot to be freed by the driver
        self._in_flight = 0  # slots filled (or being filled) but not yet freed

    # -- NIC side -------------------------------------------------------

    def free_slots(self) -> int:
        return self.size - self._in_flight

    def claim(self, packet: Packet) -> RxDescriptor:
        """NIC claims the head descriptor for an arriving packet."""
        if self._in_flight >= self.size:
            raise RingFullError(f"ring full ({self.size} slots)")
        desc = self.descriptors[self.nic_head]
        assert desc.packet is None, "claimed a slot that was never freed"
        desc.packet = packet
        desc.done = False
        packet.buffer_addr = desc.buffer_addr
        self.nic_head = (self.nic_head + 1) % self.size
        self._in_flight += 1
        return desc

    def complete(self, desc: RxDescriptor) -> None:
        """NIC marks DMA + descriptor writeback done (packet visible to PMD)."""
        desc.done = True

    # -- CPU side -------------------------------------------------------

    def peek_ready(self) -> Optional[RxDescriptor]:
        """The descriptor at the CPU pointer, if its packet is visible."""
        desc = self.descriptors[self.cpu_ptr]
        if desc.packet is not None and desc.done:
            return desc
        return None

    def pop_ready(self) -> Optional[RxDescriptor]:
        """Advance the CPU pointer past a visible packet and return it."""
        desc = self.peek_ready()
        if desc is None:
            return None
        self.cpu_ptr = (self.cpu_ptr + 1) % self.size
        return desc

    def free(self, desc: RxDescriptor) -> None:
        """Driver returns a consumed descriptor to the NIC (moves NIC tail)."""
        if desc.packet is None:
            raise ValueError(f"descriptor {desc.index} is already free")
        desc.packet = None
        desc.done = False
        self.nic_tail = (desc.index + 1) % self.size
        self._in_flight -= 1

    # -- instrumentation --------------------------------------------------

    def use_distance(self) -> int:
        """Slots between the CPU pointer and the NIC head (queue depth)."""
        return (self.nic_head - self.cpu_ptr) % self.size if self._in_flight else 0

    def occupancy(self) -> int:
        return self._in_flight
