"""IDIO classifier (§V-A): NIC-side per-packet metadata extraction.

The classifier produces, for every DMA write transaction, the metadata
tuple the IDIO controller consumes (Alg. 1 data plane):

1. the *application class* from the packet's DSCP field;
2. whether the transaction carries the packet *header* (the first line);
3. the *destination core* (Flow Director / ADQ lookup);
4. whether the packet belongs to an RX *burst*.

Burst detection keeps one 32-bit byte counter per physical core, reset
every 1 us; while a counter exceeds ``rx_burst_threshold_bytes`` the
classifier flags transactions to that core as burst traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.packet import Packet
from ..pcie.tlp import IdioTag
from ..sim import PeriodicTask, Simulator, units


def gbps_to_bytes_per_interval(gbps: float, interval: int) -> int:
    """Convert a Gbps threshold into bytes per counter interval."""
    return int(units.gbps_to_bytes_per_tick(gbps) * interval)


@dataclass
class ClassifierConfig:
    """Tunables of the classifier (paper defaults in §VI)."""

    #: rxBurstTHR, expressed as a bandwidth (paper: 10 Gbps).
    rx_burst_threshold_gbps: float = 10.0
    #: Counter reset period (paper: 1 us).
    counter_interval: int = units.microseconds(1)
    num_cores: int = 64


class IdioClassifier:
    """Per-core burst counters plus per-transaction tag generation."""

    def __init__(self, sim: Simulator, config: ClassifierConfig) -> None:
        self.sim = sim
        self.config = config
        self._threshold_bytes = gbps_to_bytes_per_interval(
            config.rx_burst_threshold_gbps, config.counter_interval
        )
        self._burst_counters: List[int] = [0] * config.num_cores
        self._window_crossed: List[bool] = [False] * config.num_cores
        self._burst_latched: List[bool] = [False] * config.num_cores
        self.bursts_detected = 0
        self._reset_task = PeriodicTask(
            sim, config.counter_interval, self._reset_counters, "classifier-reset"
        )

    @property
    def threshold_bytes_per_interval(self) -> int:
        return self._threshold_bytes

    def _reset_counters(self) -> None:
        for core in range(self.config.num_cores):
            # A window that did NOT cross the threshold ends any ongoing
            # burst: the next crossing is a fresh burst *arrival*.
            if not self._window_crossed[core]:
                self._burst_latched[core] = False
            self._burst_counters[core] = 0
            self._window_crossed[core] = False

    def observe_packet(self, packet: Packet, dest_core: int) -> bool:
        """Account an arriving packet; returns True on a burst *arrival*.

        Burst notification is edge-triggered: the controller is notified
        once when a core's byte counter first crosses ``rxBurstTHR``, and
        a sustained burst (every 1 us window crossing) produces no further
        notifications — otherwise the FSM of Fig. 8 would be pinned at
        0b00 and could never throttle prefetching under MLC pressure.

        The 32-bit counter wraps exactly as hardware would; in practice a
        1 us window at 100 Gbps accumulates ~12.5 KB so wrap never occurs.
        """
        counter = (self._burst_counters[dest_core] + packet.size_bytes) & 0xFFFFFFFF
        self._burst_counters[dest_core] = counter
        if counter <= self._threshold_bytes:
            return False
        self._window_crossed[dest_core] = True
        if self._burst_latched[dest_core]:
            return False
        self._burst_latched[dest_core] = True
        self.bursts_detected += 1
        return True

    def tag_for_line(
        self,
        packet: Packet,
        dest_core: int,
        line_offset: int,
        burst_active: bool,
    ) -> IdioTag:
        """The IDIO tag for the ``line_offset``-th DMA line of ``packet``.

        The first transaction of a packet carries the protocol header
        (headers of all common protocols fit in 64 bytes, §V-A).
        """
        return IdioTag(
            dest_core=dest_core if packet.app_class == 0 else 0,
            app_class=packet.app_class,
            is_header=(line_offset == 0),
            is_burst=burst_active,
        )

    def stop(self) -> None:
        """Stop the periodic reset task (end of experiment)."""
        self._reset_task.stop()
