"""NIC substrate: descriptor rings, Flow Director, DMA engine, classifier."""

from .classifier import ClassifierConfig, IdioClassifier, gbps_to_bytes_per_interval
from .descriptor import DESCRIPTOR_BYTES, DescriptorRing, RingFullError, RxDescriptor
from .dma import DMAEngine
from .flow_director import DEFAULT_TABLE_BITS, FilterEntry, FlowDirector
from .nic import NIC, NicConfig, NicQueue

__all__ = [
    "ClassifierConfig",
    "DEFAULT_TABLE_BITS",
    "DESCRIPTOR_BYTES",
    "DMAEngine",
    "DescriptorRing",
    "FilterEntry",
    "FlowDirector",
    "IdioClassifier",
    "NIC",
    "NicConfig",
    "NicQueue",
    "RingFullError",
    "RxDescriptor",
    "gbps_to_bytes_per_interval",
]
