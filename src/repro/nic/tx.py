"""TX descriptor rings and the NIC's transmit engine.

The egress path is more than the payload reads of Fig. 1: the driver
writes a TX descriptor (a store to shared memory), rings a doorbell (an
MMIO write the NIC observes after a posting delay), and the NIC then

1. fetches the descriptor with a PCIe read (which, like any device read,
   pulls MLC-resident descriptor lines back to the LLC),
2. reads the packet buffer's lines over PCIe (invalidating MLC copies —
   the Fig. 3 right behavior),
3. writes a completion back into the descriptor so the driver can free
   the buffer.

All three steps go through the same root complex as RX, so TX traffic
competes for the PCIe link and interacts with DDIO exactly as inbound
traffic does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..sim import Simulator, units
from .descriptor import DESCRIPTOR_BYTES
from .dma import DMAEngine


class TxRingFullError(RuntimeError):
    """Raised when the driver posts to a full TX ring."""


@dataclass
class TxDescriptor:
    """One TX descriptor slot."""

    index: int
    desc_addr: int
    buffer_addr: int = 0
    length: int = 0
    posted: bool = False
    done: bool = False
    on_complete: Optional[Callable[[], None]] = None


class TxRing:
    """A circular TX descriptor ring (driver tail, NIC head)."""

    def __init__(self, size: int, desc_base: int) -> None:
        if size <= 0:
            raise ValueError(f"ring size must be positive, got {size}")
        self.size = size
        self.descriptors = [
            TxDescriptor(index=i, desc_addr=desc_base + i * DESCRIPTOR_BYTES)
            for i in range(size)
        ]
        self.driver_tail = 0  # next slot the driver posts
        self.nic_head = 0  # next slot the NIC transmits
        self._in_flight = 0

    def free_slots(self) -> int:
        return self.size - self._in_flight

    def post(
        self,
        buffer_addr: int,
        length: int,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> TxDescriptor:
        """Driver posts one packet for transmission."""
        if self._in_flight >= self.size:
            raise TxRingFullError(f"TX ring full ({self.size} slots)")
        desc = self.descriptors[self.driver_tail]
        desc.buffer_addr = buffer_addr
        desc.length = length
        desc.posted = True
        desc.done = False
        desc.on_complete = on_complete
        self.driver_tail = (self.driver_tail + 1) % self.size
        self._in_flight += 1
        return desc

    def next_posted(self) -> Optional[TxDescriptor]:
        """The descriptor at the NIC head, if the driver has posted it."""
        desc = self.descriptors[self.nic_head]
        return desc if desc.posted and not desc.done else None

    def complete(self, desc: TxDescriptor) -> None:
        """NIC marks the transmit done and advances its head."""
        if not desc.posted:
            raise ValueError(f"descriptor {desc.index} was never posted")
        desc.done = True
        desc.posted = False
        self.nic_head = (desc.index + 1) % self.size
        self._in_flight -= 1


class TxEngine:
    """Processes one TX ring: descriptor fetch, buffer reads, completion.

    The doorbell is modeled as a posted MMIO write: the engine notices new
    work ``doorbell_delay`` after the driver rings it.
    """

    def __init__(
        self,
        sim: Simulator,
        dma: DMAEngine,
        ring: TxRing,
        doorbell_delay: int = units.nanoseconds(300),
    ) -> None:
        self.sim = sim
        self.dma = dma
        self.ring = ring
        self.doorbell_delay = doorbell_delay
        self._running = False
        self.packets_sent = 0
        self.bytes_sent = 0

    def doorbell(self) -> None:
        """Driver MMIO write: schedule the engine if it is idle."""
        if self._running:
            return
        self._running = True
        self.sim.schedule_after(self.doorbell_delay, self._work, "tx-doorbell")

    def _work(self) -> None:
        desc = self.ring.next_posted()
        if desc is None:
            self._running = False
            return

        def after_desc_fetch() -> None:
            # Descriptor fetched; now read the packet data.
            self.dma.read_buffer(
                desc.buffer_addr, desc.length, on_complete=lambda: self._done(desc)
            )

        # Step 1: PCIe read of the descriptor itself.
        self.dma.read_buffer(
            desc.desc_addr, DESCRIPTOR_BYTES, on_complete=after_desc_fetch
        )

    def _done(self, desc: TxDescriptor) -> None:
        # Step 3: completion writeback into the descriptor.
        def after_completion() -> None:
            self.ring.complete(desc)
            self.packets_sent += 1
            self.bytes_sent += desc.length
            if desc.on_complete is not None:
                desc.on_complete()
            self._work()  # continue with the next posted descriptor

        self.dma.write_buffer(
            desc.desc_addr, DESCRIPTOR_BYTES, on_complete=after_completion
        )
