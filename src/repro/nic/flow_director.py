"""Ethernet Flow Director (§II-C): steering packets to cores.

Two flavors are modeled, matching Intel's feature set:

* **EP (Externally Programmed)** — exact-match rules installed by software
  (the mode used when an application is pinned to a core; this is what ADQ
  setups rely on);
* **ATR (Application Targeting Routing)** — the NIC learns the target core
  by observing outbound traffic and populating a hash-indexed filter table.

The filter table is hash-indexed with up to 8k entries, as in modern
adapters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..net.packet import FiveTuple

#: Filter table entries in modern Ethernet adapters (8k, §II-C).
DEFAULT_TABLE_BITS = 13


@dataclass
class FilterEntry:
    """One filter-table slot mapping a flow to its destination core/queue."""

    flow: FiveTuple
    dest_core: int


class FlowDirector:
    """Flow-to-core steering with EP rules and an ATR filter table."""

    def __init__(self, table_bits: int = DEFAULT_TABLE_BITS, default_core: int = 0) -> None:
        if table_bits <= 0:
            raise ValueError(f"table_bits must be positive, got {table_bits}")
        self.table_bits = table_bits
        self.table_size = 1 << table_bits
        self.default_core = default_core
        self._ep_rules: Dict[FiveTuple, int] = {}
        self._atr_table: Dict[int, FilterEntry] = {}
        self.collisions = 0

    # -- EP mode ----------------------------------------------------------

    def install_rule(self, flow: FiveTuple, dest_core: int) -> None:
        """Install an exact-match (perfect filter) rule."""
        if dest_core < 0:
            raise ValueError(f"dest_core must be non-negative, got {dest_core}")
        self._ep_rules[flow] = dest_core

    def remove_rule(self, flow: FiveTuple) -> None:
        self._ep_rules.pop(flow, None)

    # -- ATR mode ---------------------------------------------------------

    def learn(self, flow: FiveTuple, dest_core: int) -> None:
        """ATR learning: record the core that transmitted on this flow."""
        idx = flow.hash_value(self.table_bits)
        existing = self._atr_table.get(idx)
        if existing is not None and existing.flow != flow:
            self.collisions += 1
        self._atr_table[idx] = FilterEntry(flow, dest_core)

    # -- lookup -------------------------------------------------------------

    def lookup(self, flow: FiveTuple) -> int:
        """Destination core for ``flow``: EP rules first, then ATR, then default."""
        core = self._ep_rules.get(flow)
        if core is not None:
            return core
        entry = self._atr_table.get(flow.hash_value(self.table_bits))
        if entry is not None and entry.flow == flow:
            return entry.dest_core
        return self.default_core
