"""The NIC model: RX queues, DMA scheduling, descriptor writeback, TX.

RX path (per packet):

1. the load generator delivers the packet at wire-arrival time;
2. Flow Director steers it to its queue/core; the (optional) IDIO
   classifier accounts it against the per-core burst counter;
3. a descriptor is claimed — or the packet is *dropped* if the ring is
   full (the paper's drop condition, §VI);
4. after an RX pipeline delay the DMA engine writes the buffer's lines
   (with per-line IDIO tags when the classifier is enabled);
5. the descriptor writeback follows ``descriptor_writeback_delay`` later —
   only then can the polling driver see the packet.  The paper measures
   this data-DMA-to-visibility lag at ~1.9 us (§VII).

TX path (``transmit``): PCIe reads of the buffer lines, which pull
MLC-resident lines back into the LLC (Fig. 3 right).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..net.packet import Packet
from ..pcie.tlp import IdioTag
from ..sim import Simulator, units
from .classifier import ClassifierConfig, IdioClassifier
from .descriptor import DESCRIPTOR_BYTES, DescriptorRing, RingFullError, RxDescriptor
from .dma import DMAEngine
from .flow_director import FlowDirector
from .tx import TxEngine, TxRing


@dataclass
class NicConfig:
    """NIC tunables (defaults match the evaluated setup)."""

    #: Ring slots per queue (DPDK default 1024, swept in Fig. 4).
    ring_size: int = 1024
    #: DMA buffer stride: MTU-sized buffers are 2 KB-aligned (§IV-A).
    buffer_stride: int = 2048
    #: PCIe link bandwidth available to DMA.
    pcie_gbps: float = 256.0
    #: NIC-internal latency from wire arrival to first DMA transaction.
    rx_pipeline_delay: int = units.nanoseconds(300)
    #: Data-DMA-completion to descriptor-writeback lag.  Tuned so that the
    #: first-DMA-to-PMD-visibility delay is ~1.9 us as observed in Fig. 9.
    descriptor_writeback_delay: int = units.nanoseconds(1700)
    #: Enable the IDIO classifier (per-line tags + burst detection).
    classifier_enabled: bool = False
    classifier: ClassifierConfig = field(default_factory=ClassifierConfig)


class NicQueue:
    """One RX queue: a descriptor ring pinned to a core (ADQ-style)."""

    def __init__(self, queue_id: int, core: int, ring: DescriptorRing) -> None:
        self.queue_id = queue_id
        self.core = core
        self.ring = ring
        self.rx_packets = 0
        self.rx_drops = 0


class NIC:
    """A multi-queue NIC with Flow Director steering and DMA to the host."""

    def __init__(
        self,
        sim: Simulator,
        dma: DMAEngine,
        config: Optional[NicConfig] = None,
    ) -> None:
        self.sim = sim
        self.dma = dma
        self.config = config or NicConfig()
        self.flow_director = FlowDirector()
        self.queues: Dict[int, NicQueue] = {}
        self._core_to_queue: Dict[int, NicQueue] = {}
        #: Optional per-core TX rings (full egress path with descriptor
        #: fetch / completion writeback); ``transmit`` falls back to plain
        #: buffer reads for cores without one.
        self.tx_engines: Dict[int, TxEngine] = {}
        self.classifier: Optional[IdioClassifier] = None
        if self.config.classifier_enabled:
            self.classifier = IdioClassifier(sim, self.config.classifier)
        #: Observers notified of every accepted RX packet (instrumentation).
        self.rx_observers: List[Callable[[Packet, int], None]] = []
        self.total_rx = 0
        self.total_drops = 0
        self.total_tx = 0
        #: Optional NIC-layer fault injector (``repro.faults``); ``None``
        #: keeps the RX path on its zero-cost fast path.
        self.faults = None

    # -- setup ----------------------------------------------------------

    def add_queue(
        self,
        queue_id: int,
        core: int,
        desc_base: int,
        buffer_base: int,
        ring_size: Optional[int] = None,
    ) -> NicQueue:
        """Create a queue pinned to ``core`` with its ring memory regions."""
        if queue_id in self.queues:
            raise ValueError(f"queue {queue_id} already exists")
        ring = DescriptorRing(
            size=ring_size or self.config.ring_size,
            desc_base=desc_base,
            buffer_base=buffer_base,
            buffer_stride=self.config.buffer_stride,
        )
        queue = NicQueue(queue_id, core, ring)
        self.queues[queue_id] = queue
        self._core_to_queue[core] = queue
        return queue

    def queue_for_core(self, core: int) -> NicQueue:
        return self._core_to_queue[core]

    def add_tx_queue(
        self, core: int, desc_base: int, ring_size: Optional[int] = None
    ) -> TxEngine:
        """Create a TX descriptor ring + engine pinned to ``core``."""
        if core in self.tx_engines:
            raise ValueError(f"core {core} already has a TX queue")
        ring = TxRing(ring_size or self.config.ring_size, desc_base)
        engine = TxEngine(self.sim, self.dma, ring)
        self.tx_engines[core] = engine
        return engine

    # -- RX path ----------------------------------------------------------

    def receive(self, packet: Packet) -> bool:
        """Wire arrival of ``packet``; returns False when it is dropped."""
        core = self.flow_director.lookup(packet.flow)
        queue = self._core_to_queue.get(core)
        if queue is None:
            raise ValueError(f"no queue pinned to core {core} for {packet.flow}")

        faults = self.faults
        if faults is not None and (
            faults.drop_rx(self.sim.now)
            or faults.backpressure_drop(queue.ring.free_slots(), self.sim.now)
        ):
            queue.rx_drops += 1
            self.total_drops += 1
            return False

        burst_active = False
        if self.classifier is not None:
            burst_active = self.classifier.observe_packet(packet, core)

        try:
            desc = queue.ring.claim(packet)
        except RingFullError:
            queue.rx_drops += 1
            self.total_drops += 1
            return False
        queue.rx_packets += 1
        self.total_rx += 1

        tags: Optional[List[IdioTag]] = None
        if self.classifier is not None:
            tags = [
                self.classifier.tag_for_line(packet, core, i, burst_active)
                for i in range(packet.num_lines)
            ]

        def start_dma() -> None:
            self.dma.write_buffer(
                desc.buffer_addr,
                packet.size_bytes,
                tags=tags,
                on_complete=lambda: self._writeback_descriptor(queue, desc),
            )

        self.sim.schedule_after(self.config.rx_pipeline_delay, start_dma, "nic-rx")
        for observer in self.rx_observers:
            observer(packet, core)
        return True

    def _writeback_descriptor(self, queue: NicQueue, desc: RxDescriptor) -> None:
        """Write the used descriptor back to the host after the data DMA."""
        tags: Optional[List[IdioTag]] = None
        if self.classifier is not None:
            # Descriptors are polled immediately: treat them as header-class
            # transactions so IDIO restores the polled line into the MLC.
            n_lines = -(-DESCRIPTOR_BYTES // 64)
            tags = [
                IdioTag(dest_core=queue.core, app_class=0, is_header=True)
                for _ in range(n_lines)
            ]

        def do_writeback() -> None:
            self.dma.write_buffer(
                desc.desc_addr,
                DESCRIPTOR_BYTES,
                tags=tags,
                on_complete=lambda: queue.ring.complete(desc),
            )

        delay = self.config.descriptor_writeback_delay
        if self.faults is not None:
            delay += self.faults.wb_extra_ticks(self.sim.now)
        self.sim.schedule_after(delay, do_writeback, "desc-wb")

    # -- TX path ----------------------------------------------------------

    def transmit(
        self,
        buffer_addr: int,
        num_bytes: int,
        on_complete: Optional[Callable[[], None]] = None,
        core: Optional[int] = None,
    ) -> None:
        """Egress DMA (zero-copy forward).

        If ``core`` has a TX ring, the full egress path runs: descriptor
        post + doorbell, NIC descriptor fetch, payload reads, completion
        writeback.  Otherwise the payload is read directly (the simple
        model used before TX rings existed and by tests that don't care
        about egress detail).
        """
        from .tx import TxRingFullError

        self.total_tx += 1
        engine = self.tx_engines.get(core) if core is not None else None
        if engine is not None:
            try:
                engine.ring.post(buffer_addr, num_bytes, on_complete=on_complete)
            except TxRingFullError:
                pass  # fall through to the direct read path
            else:
                engine.doorbell()
                return

        def done() -> None:
            if on_complete is not None:
                on_complete()

        self.dma.read_buffer(buffer_addr, num_bytes, on_complete=done)

    # -- teardown -----------------------------------------------------------

    def stop(self) -> None:
        if self.classifier is not None:
            self.classifier.stop()
