"""Opt-in runtime invariant sanitizer for the simulated memory system.

The :class:`InvariantSanitizer` is the ASan analog for the simulator: it
subscribes to the observability bus (every completed
:class:`~repro.mem.transaction.MemoryTransaction` is a topic) and checks

* **per transaction** — kind/outcome well-formedness, monotone virtual
  timestamps, hop-chain legality (known components/actions, critical-path
  hops ordered by depth, hop latencies summing to the transaction
  latency), and DMA writes never landing in a currently-free mempool
  buffer;
* **at barriers** (every ``barrier_interval`` transactions, and on
  :meth:`check_all`) — MLC/LLC exclusivity for the non-inclusive
  hierarchy, L1 ⊆ MLC inclusion, snoop-filter directory coverage,
  cache/replacement structural consistency, 2-bit FSM state legality,
  and mempool buffer-lifecycle accounting (no leak / double free).

Every failure raises :class:`InvariantViolation` naming the violated
invariant, so a seeded-bug test (or a CI ``repro check`` run) points at
the broken model property, not a downstream symptom.

The sanitizer deliberately reads private fields of the cache containers
(``_sets``/``_where``/``_last_use``): it is a white-box checker and the
structural invariants *are* statements about that private state.

Checked mode is strictly opt-in (``ServerConfig.checked_mode``); with it
off, no sanitizer exists and the transaction hot path is untouched,
which is what keeps the bench gate green.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.fsm import STATE_MAX, STATE_MIN
from ..faults.events import FaultEvent
from ..mem.cache import SetAssociativeCache
from ..mem.hierarchy import MemoryHierarchy
from ..mem.replacement import LRUPolicy
from ..mem.transaction import DMA_WRITE, KINDS, PREFETCH_FILL, MemoryTransaction


class InvariantViolation(AssertionError):
    """A model invariant does not hold; ``invariant`` names which one."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant


#: Every (component, action) pair the hierarchy's hop recording emits.
_LEGAL_HOPS: Set[Tuple[str, str]] = {
    ("l1", "hit"), ("l1", "miss"),
    ("mlc", "hit"), ("mlc", "miss"), ("mlc", "fill"),
    ("mlc", "evict"), ("mlc", "inval"), ("mlc", "drop"),
    ("directory", "c2c"),
    ("llc", "hit"), ("llc", "miss"), ("llc", "fill"), ("llc", "update"),
    ("llc", "writeback"), ("llc", "evict"), ("llc", "drop"),
    ("dram", "read"), ("dram", "write"), ("dram", "writeback"),
}

#: Topological depth of each component on the demand path; critical-path
#: hops (latency > 0) must visit components in non-decreasing depth.
_DEPTH = {"l1": 0, "mlc": 1, "directory": 2, "llc": 3, "dram": 4}

#: Levels a transaction may legally terminate at, per outcome semantics.
_LEGAL_LEVELS = {"l1", "mlc", "llc", "c2c", "dram", "dropped", "invalidated", "absent"}


class InvariantSanitizer:
    """Subscribes to a hierarchy's bus and asserts model invariants."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        barrier_interval: int = 4096,
    ) -> None:
        if barrier_interval <= 0:
            raise ValueError("barrier_interval must be positive")
        self.hierarchy = hierarchy
        self.barrier_interval = barrier_interval
        self.transactions_checked = 0
        self.barriers_run = 0
        self.violations_raised = 0
        self._last_now = 0
        self._countdown = barrier_interval
        self._pools: List = []  # repro.cpu.mempool.BufferPool
        self._controller = None  # repro.core.controller.IDIOController
        self._tenants = None  # repro.tenants.config.TenantSet
        self._attached = False
        self._saved_record_hops = False
        #: Fault kinds the registered plan declares (None = no plan).
        self._declared_faults: Optional[Set[str]] = None
        #: Observed injections by kind (checked-mode fault accounting).
        self.fault_events_seen: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self) -> "InvariantSanitizer":
        """Subscribe to the hierarchy's bus; enables hop recording."""
        if self._attached:
            raise RuntimeError("sanitizer already attached")
        self._attached = True
        # Hop chains are the per-transaction evidence; recording must be
        # on for the hop invariants to see anything.
        self._saved_record_hops = self.hierarchy.record_hops
        self.hierarchy.record_hops = True
        self.hierarchy.bus.subscribe(MemoryTransaction, self.on_transaction)
        self.hierarchy.bus.subscribe(FaultEvent, self.on_fault)
        return self

    def detach(self) -> None:
        """Unsubscribe and restore the hierarchy's hop-recording flag."""
        if not self._attached:
            return
        self._attached = False
        self.hierarchy.bus.unsubscribe(MemoryTransaction, self.on_transaction)
        self.hierarchy.bus.unsubscribe(FaultEvent, self.on_fault)
        self.hierarchy.record_hops = self._saved_record_hops

    def register_pool(self, pool) -> None:
        """Track a :class:`~repro.cpu.mempool.BufferPool`'s lifecycle."""
        self._pools.append(pool)

    def register_controller(self, controller) -> None:
        """Track an IDIO controller's per-core status FSMs."""
        self._controller = controller

    def register_tenants(self, tenants) -> None:
        """Track a :class:`~repro.tenants.config.TenantSet`'s way quotas.

        With tenants registered, every barrier additionally asserts the
        way-partition conservation invariant: per-tenant I/O way masks
        stay inside the DDIO partition, never overlap (no LLC way — and
        hence no line placement — attributed to two tenants), and their
        union never exceeds the partition.
        """
        self._tenants = tenants

    def register_faults(self, plan) -> None:
        """Declare the run's :class:`~repro.faults.plan.FaultPlan`.

        With a plan registered, every observed :class:`FaultEvent` must
        carry a kind the plan actually schedules — an event outside the
        plan means an injector is firing without provenance.
        """
        self._declared_faults = {spec.kind for spec in plan.specs}

    # ------------------------------------------------------------------
    # fault provenance
    # ------------------------------------------------------------------

    def on_fault(self, event: FaultEvent) -> None:
        self.fault_events_seen[event.kind] = (
            self.fault_events_seen.get(event.kind, 0) + 1
        )
        expected_layer = event.kind.split(".", 1)[0]
        if event.layer != expected_layer:
            self.violations_raised += 1
            raise InvariantViolation(
                "fault-provenance",
                f"fault {event.kind!r} emitted by the {event.layer!r} "
                f"injector (kind belongs to {expected_layer!r})",
            )
        if self._declared_faults is not None and event.kind not in self._declared_faults:
            self.violations_raised += 1
            raise InvariantViolation(
                "fault-provenance",
                f"fault {event.kind!r} injected but the registered plan "
                f"only declares {sorted(self._declared_faults)}",
            )

    # ------------------------------------------------------------------
    # per-transaction checks
    # ------------------------------------------------------------------

    def on_transaction(self, txn: MemoryTransaction) -> None:
        self.transactions_checked += 1
        try:
            self._check_txn(txn)
        except InvariantViolation:
            self.violations_raised += 1
            raise
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.barrier_interval
            self.check_all()

    def _check_txn(self, txn: MemoryTransaction) -> None:
        if txn.kind not in KINDS:
            raise InvariantViolation(
                "hop-chain", f"unknown transaction kind {txn.kind!r}"
            )
        if txn.level is not None and txn.level not in _LEGAL_LEVELS:
            raise InvariantViolation(
                "hop-chain",
                f"{txn.kind} terminated at unknown level {txn.level!r}",
            )
        if txn.latency < 0:
            raise InvariantViolation(
                "hop-chain", f"negative latency {txn.latency} on {txn!r}"
            )
        if txn.now < self._last_now:
            raise InvariantViolation(
                "monotone-time",
                f"transaction timestamp went backwards: {txn.now} after "
                f"{self._last_now} ({txn!r})",
            )
        self._last_now = txn.now
        if txn.hops:
            self._check_hops(txn)
        if txn.kind == DMA_WRITE and self._pools:
            self._check_dma_target(txn)

    def _check_hops(self, txn: MemoryTransaction) -> None:
        total = 0
        last_depth = -1
        for hop in txn.hops:
            if (hop.component, hop.action) not in _LEGAL_HOPS:
                raise InvariantViolation(
                    "hop-chain",
                    f"illegal hop ({hop.component!r}, {hop.action!r}) in {txn!r}",
                )
            if hop.latency < 0:
                raise InvariantViolation(
                    "hop-chain", f"negative hop latency {hop.latency} in {txn!r}"
                )
            total += hop.latency
            if hop.latency > 0:
                depth = _DEPTH[hop.component]
                if depth < last_depth:
                    raise InvariantViolation(
                        "hop-chain",
                        f"critical-path hop order regressed "
                        f"({hop.component!r} after depth {last_depth}) in {txn!r}",
                    )
                last_depth = depth
        # Prefetch fills are background work: they record hops but never
        # charge latency to anyone, so their sum is not constrained.
        if txn.kind != PREFETCH_FILL and total != txn.latency:
            raise InvariantViolation(
                "hop-chain",
                f"hop latencies sum to {total} but transaction latency is "
                f"{txn.latency} ({txn!r})",
            )

    def _check_dma_target(self, txn: MemoryTransaction) -> None:
        addr = txn.addr
        for pool in self._pools:
            if not pool.base <= addr < pool.base + pool.count * pool.stride:
                continue
            buffer_addr = pool.base + ((addr - pool.base) // pool.stride) * pool.stride
            if buffer_addr in pool._free:
                raise InvariantViolation(
                    "mempool-lifecycle",
                    f"DMA write to {addr:#x} targets buffer {buffer_addr:#x} "
                    "which is currently on the pool's free list "
                    "(use-after-free of a DMA buffer)",
                )

    # ------------------------------------------------------------------
    # barrier checks
    # ------------------------------------------------------------------

    def check_all(self) -> None:
        """Run every structural invariant against the current state."""
        self.barriers_run += 1
        try:
            self._check_hierarchy_state()
            self._check_cache_structures()
            self._check_fsm_states()
            self._check_pools()
            self._check_tenant_ways()
        except InvariantViolation:
            self.violations_raised += 1
            raise

    def _check_hierarchy_state(self) -> None:
        h = self.hierarchy
        llc_data = h.llc.data
        for core in range(h.config.num_cores):
            mlc = h.mlc[core].data
            # Non-inclusive exclusivity: a line in some private MLC must
            # not simultaneously occupy an LLC data way — duplication
            # would double-count LLC occupancy and distort every
            # DDIO-way / DMA-bloat statistic the figures report.
            if not h.llc.inclusive:
                for line in mlc.lines():
                    if line.addr in llc_data:
                        raise InvariantViolation(
                            "mlc-llc-exclusivity",
                            f"line {line.addr:#x} resident in core {core}'s "
                            "MLC and in the LLC data array at once "
                            "(non-inclusive hierarchy)",
                        )
            l1 = h.l1[core]
            if l1 is not None:
                for line in l1.data.lines():
                    # L1 ⊆ MLC by design (the hierarchy back-invalidates
                    # L1 on MLC eviction).
                    if line.addr not in mlc:
                        raise InvariantViolation(
                            "l1-inclusion",
                            f"line {line.addr:#x} in core {core}'s L1 has no "
                            "MLC copy (L1 must be inclusive in MLC)",
                        )
            # Snoop-filter coverage: every MLC-resident line must be
            # tracked by the directory, else coherence (DMA invalidation,
            # c2c) silently misses the copy.
            for line in mlc.lines():
                if core not in h.llc.directory.owners(line.addr):
                    raise InvariantViolation(
                        "directory-coverage",
                        f"line {line.addr:#x} in core {core}'s MLC is not "
                        "tracked by the snoop-filter directory",
                    )

    def _check_cache_structures(self) -> None:
        h = self.hierarchy
        caches = [("llc", h.llc.data)]
        for core in range(h.config.num_cores):
            caches.append((f"mlc[{core}]", h.mlc[core].data))
            l1 = h.l1[core]
            if l1 is not None:
                caches.append((f"l1[{core}]", l1.data))
        for name, cache in caches:
            self._check_one_cache(name, cache)

    def _check_one_cache(self, name: str, cache: SetAssociativeCache) -> None:
        occupied = 0
        for set_idx, cache_set in enumerate(cache._sets):
            for way, line in enumerate(cache_set):
                if line is None:
                    continue
                occupied += 1
                loc = cache._where.get(line.addr)
                if loc != (set_idx, way):
                    raise InvariantViolation(
                        "cache-structure",
                        f"{name}: line {line.addr:#x} stored at "
                        f"({set_idx}, {way}) but indexed at {loc}",
                    )
                if cache.set_index(line.addr) != set_idx:
                    raise InvariantViolation(
                        "cache-structure",
                        f"{name}: line {line.addr:#x} in set {set_idx} but "
                        f"hashes to set {cache.set_index(line.addr)}",
                    )
        if occupied != len(cache._where):
            raise InvariantViolation(
                "cache-structure",
                f"{name}: {occupied} occupied ways but "
                f"{len(cache._where)} index entries",
            )
        policy = cache.policy
        if isinstance(policy, LRUPolicy):
            for set_idx, cache_set in enumerate(cache._sets):
                row = policy._last_use[set_idx]
                for way, line in enumerate(cache_set):
                    if line is not None and row[way] <= 0:
                        raise InvariantViolation(
                            "lru-consistency",
                            f"{name}: occupied way ({set_idx}, {way}) has no "
                            "LRU recency stamp",
                        )
                    if line is None and row[way] != 0:
                        raise InvariantViolation(
                            "lru-consistency",
                            f"{name}: empty way ({set_idx}, {way}) carries a "
                            f"stale LRU stamp {row[way]}",
                        )

    def _check_fsm_states(self) -> None:
        if self._controller is None:
            return
        for core, fsm in enumerate(self._controller.fsm):
            if not STATE_MIN <= fsm.state <= STATE_MAX:
                raise InvariantViolation(
                    "fsm-state",
                    f"core {core}'s status FSM holds illegal state "
                    f"{fsm.state:#x}; the 2-bit counter must stay in "
                    f"[{STATE_MIN:#04b}, {STATE_MAX:#04b}]",
                )

    def _check_pools(self) -> None:
        for pool in self._pools:
            seen: Set[int] = set()
            for addr in pool._free:
                if not pool.base <= addr < pool.base + pool.count * pool.stride:
                    raise InvariantViolation(
                        "mempool-lifecycle",
                        f"free-list address {addr:#x} outside the pool range",
                    )
                if (addr - pool.base) % pool.stride:
                    raise InvariantViolation(
                        "mempool-lifecycle",
                        f"free-list address {addr:#x} is not stride-aligned",
                    )
                if addr in seen:
                    raise InvariantViolation(
                        "mempool-lifecycle",
                        f"buffer {addr:#x} appears twice on the free list "
                        "(double free)",
                    )
                seen.add(addr)
            outstanding = pool.allocations - pool.frees
            if outstanding != pool.count - len(pool._free):
                raise InvariantViolation(
                    "mempool-lifecycle",
                    f"pool accounting leak: {pool.allocations} allocs - "
                    f"{pool.frees} frees = {outstanding} outstanding, but "
                    f"{pool.count - len(pool._free)} buffers are off the "
                    "free list",
                )

    def _check_tenant_ways(self) -> None:
        if self._tenants is None:
            return
        llc = self.hierarchy.llc
        table = llc.tenant_way_table()
        if not table:
            return
        claimed: Dict[int, int] = {}
        total = 0
        for tenant, ways in sorted(table.items()):
            total += len(ways)
            for way in ways:
                if not 0 <= way < llc.ddio_ways:
                    raise InvariantViolation(
                        "tenant-way-quota",
                        f"tenant {tenant}'s mask claims way {way} outside "
                        f"the {llc.ddio_ways}-way DDIO partition",
                    )
                if way in claimed:
                    raise InvariantViolation(
                        "tenant-way-quota",
                        f"LLC way {way} claimed by tenants {claimed[way]} "
                        f"and {tenant} at once (a line in that way would be "
                        "attributed to two tenants)",
                    )
                claimed[way] = tenant
        if total > llc.ddio_ways:
            raise InvariantViolation(
                "tenant-way-quota",
                f"tenant way masks cover {total} ways but the DDIO "
                f"partition has only {llc.ddio_ways}",
            )
        # Dynamic apportionment may never starve a tenant below its
        # quota floor.
        for tenant in self._tenants:
            ways = table.get(tenant.tenant_id)
            if ways is not None and len(ways) < tenant.llc_way_quota:
                raise InvariantViolation(
                    "tenant-way-quota",
                    f"tenant {tenant.tenant_id} holds {len(ways)} ways, "
                    f"below its quota floor of {tenant.llc_way_quota}",
                )

    # ------------------------------------------------------------------

    def summary_line(self) -> str:
        faults = sum(self.fault_events_seen.values())
        fault_note = f", {faults} faults seen" if faults else ""
        return (
            f"sanitizer: {self.transactions_checked} transactions, "
            f"{self.barriers_run} barriers, "
            f"{self.violations_raised} violations{fault_note}"
        )
