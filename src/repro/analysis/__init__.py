"""Runtime correctness tooling: the invariant sanitizer and determinism digest.

``repro.analysis`` is the dynamic half of the correctness tooling (the
static half is ``tools/simlint``).  The
:class:`~repro.analysis.sanitizer.InvariantSanitizer` is an opt-in,
ASan-style checker that rides the observability bus and asserts the
hierarchy's structural invariants at barriers; enable it per run with
``ServerConfig(checked_mode=True)`` or end-to-end with ``repro check``.
"""

from .determinism import fingerprint_digest
from .sanitizer import InvariantSanitizer, InvariantViolation

__all__ = ["InvariantSanitizer", "InvariantViolation", "fingerprint_digest"]
