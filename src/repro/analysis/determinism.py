"""Determinism digest: a stable hash over a run's simulation-derived state.

:meth:`~repro.harness.experiment.ExperimentSummary.fingerprint` already
collects every simulation-derived field of a run (and excludes the
wall-clock diagnostics); this module reduces that tuple to a short hex
digest so two runs can be compared — and reported — at a glance.  The
``repro check`` CLI runs the same seeded experiment twice and requires
the digests to be byte-identical, which is the guarantee the process-pool
runner and the figure harness lean on.
"""

from __future__ import annotations

import hashlib


def fingerprint_digest(summary) -> str:
    """SHA-256 hex digest of a summary's deterministic fingerprint.

    ``summary`` is any object with a ``fingerprint()`` method returning a
    ``repr``-stable tuple (floats repr round-trip exactly, so equal
    fingerprints imply equal digests and vice versa).
    """
    payload = repr(summary.fingerprint()).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
