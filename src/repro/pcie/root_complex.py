"""PCIe root complex: the on-chip entry point for DMA traffic.

The root complex receives memory-write/read TLPs from the NIC's DMA engine
and turns them into memory-hierarchy transactions.  In the baseline it
simply applies the static DDIO policy (write-allocate/update in the LLC's
DDIO ways).  The IDIO controller (§V-B) is *tightly coupled with the PCIe
root complex*; it plugs in here as a steering hook that sees every inbound
TLP's decoded metadata and decides the placement.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..mem.hierarchy import MemoryHierarchy
from ..sim import Simulator
from .tlp import IdioTag, MemReadTLP, MemWriteTLP, decode_idio_bits


#: A steering hook: (tag, address, now) -> placement ("llc" or "dram").
#: Returning a placement may also trigger side effects (prefetch hints).
SteeringHook = Callable[[IdioTag, int, int], str]


class RootComplex:
    """Routes DMA TLPs into the memory hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: MemoryHierarchy,
        steering_hook: Optional[SteeringHook] = None,
    ) -> None:
        self.sim = sim
        self.hierarchy = hierarchy
        self.steering_hook = steering_hook

    def attach_controller(self, hook: SteeringHook) -> None:
        """Install (or replace) the IDIO controller's data-plane hook."""
        self.steering_hook = hook

    def memory_write(self, tlp: MemWriteTLP) -> int:
        """Process one inbound DMA write TLP; returns hierarchy latency.

        The tag travels in the TLP header's reserved bits: we encode it on
        the NIC side and decode it here, round-tripping through the real
        Fig. 7 bit layout so the in-band transport is exercised on every
        transaction.
        """
        now = self.sim.now
        tag = decode_idio_bits(tlp.header_word())
        if self.steering_hook is not None:
            placement = self.steering_hook(tag, tlp.address, now)
        else:
            placement = "llc"  # baseline DDIO: static LLC placement
        return self.hierarchy.pcie_write(tlp.address, now, placement=placement)

    def memory_read(self, tlp: MemReadTLP) -> int:
        """Process one outbound DMA read TLP (TX); returns hierarchy latency."""
        return self.hierarchy.pcie_read(tlp.address, self.sim.now)
