"""PCIe root complex: the on-chip entry point for DMA traffic.

The root complex receives memory-write/read TLPs from the NIC's DMA engine
and turns them into memory-hierarchy transactions.  In the baseline it
simply applies the static DDIO policy (write-allocate/update in the LLC's
DDIO ways).  The IDIO controller (§V-B) is *tightly coupled with the PCIe
root complex*; it plugs in here as a steering hook that sees every inbound
TLP's decoded metadata and decides the placement.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..mem.hierarchy import MemoryHierarchy
from ..mem.transaction import DMA_READ, DMA_WRITE, _LINE_MASK, MemoryTransaction
from ..sim import Simulator
from .tlp import IdioTag, MemReadTLP, MemWriteTLP, decode_idio_bits, encode_idio_bits

#: Format/type DW0 bits of a memory-write TLP (MWr, 3DW header).
_MWR_FMT_TYPE = 0x40 << 24
_UNTAGGED = IdioTag()


#: A steering hook: (tag, address, now) -> placement ("llc" or "dram").
#: Returning a placement may also trigger side effects (prefetch hints).
SteeringHook = Callable[[IdioTag, int, int], str]


class RootComplex:
    """Routes DMA TLPs into the memory hierarchy."""

    def __init__(
        self,
        sim: Simulator,
        hierarchy: MemoryHierarchy,
        steering_hook: Optional[SteeringHook] = None,
    ) -> None:
        self.sim = sim
        self.hierarchy = hierarchy
        self.steering_hook = steering_hook
        #: Optional PCIe-layer fault injector (``repro.faults``); the
        #: batch entry point only leaves its fast path when the injector
        #: carries data-plane faults (TLP reorder / header corruption).
        self.faults = None
        # Scratch transactions for the batch entry points: the hierarchy
        # executes each transaction synchronously and nothing retains it
        # when no hop recording or transaction subscriber is active, so
        # the same object is re-initialized per line instead of
        # allocated (one DMA write per line of every received packet).
        self._scratch_write = MemoryTransaction(DMA_WRITE, 0, 0)
        self._scratch_read = MemoryTransaction(DMA_READ, 0, 0)

    def attach_controller(self, hook: SteeringHook) -> None:
        """Install (or replace) the IDIO controller's data-plane hook."""
        self.steering_hook = hook

    def memory_write(self, tlp: MemWriteTLP) -> int:
        """Process one inbound DMA write TLP; returns hierarchy latency.

        The tag travels in the TLP header's reserved bits: we encode it on
        the NIC side and decode it here, round-tripping through the real
        Fig. 7 bit layout so the in-band transport is exercised on every
        transaction.
        """
        now = self.sim.now
        tag = decode_idio_bits(tlp.header_word())
        if self.steering_hook is not None:
            placement = self.steering_hook(tag, tlp.address, now)
        else:
            placement = "llc"  # baseline DDIO: static LLC placement
        txn = MemoryTransaction(
            DMA_WRITE,
            tlp.address,
            now,
            core=tag.dest_core,
            tag=tag,
            placement=placement,
        )
        self.hierarchy.access(txn)
        return txn.latency

    def memory_write_batch(
        self,
        addrs: Sequence[int],
        tags: Optional[Sequence[IdioTag]] = None,
    ) -> None:
        """Process one DMA burst: a memory-write TLP per line, same tick.

        Semantically identical to calling :meth:`memory_write` once per
        line (each line's tag still round-trips through the Fig. 7 header
        bit layout), but without constructing a TLP object per line — the
        encode/decode pair is memoized on the handful of distinct tags a
        run produces.  This is the RX data path's hottest entry point.
        """
        faults = self.faults
        if faults is not None and faults.data_faults:
            self._memory_write_batch_faulted(addrs, tags)
            return
        now = self.sim.now
        hook = self.steering_hook
        hierarchy = self.hierarchy
        if not (hierarchy.record_hops or hierarchy._txn_subs):
            # Nothing retains completed transactions: re-initialize one
            # scratch object per line and run the DMA-write handler
            # directly (the access() wrapper's dispatch and publication
            # are both no-ops without subscribers).
            run = hierarchy._run_dma_write
            txn = self._scratch_write
            txn.now = now
            if tags is None:
                tag = decode_idio_bits(_MWR_FMT_TYPE | encode_idio_bits(_UNTAGGED))
                txn.core = tag.dest_core
                txn.tag = tag
                if hook is None:
                    txn.placement = "llc"
                    for addr in addrs:
                        txn.addr = addr & _LINE_MASK
                        run(txn)
                else:
                    for addr in addrs:
                        txn.addr = addr & _LINE_MASK
                        txn.placement = hook(tag, addr, now)
                        run(txn)
                return
            for addr, raw_tag in zip(addrs, tags):
                tag = decode_idio_bits(_MWR_FMT_TYPE | encode_idio_bits(raw_tag))
                txn.core = tag.dest_core
                txn.tag = tag
                txn.placement = hook(tag, addr, now) if hook is not None else "llc"
                txn.addr = addr & _LINE_MASK
                run(txn)
            return
        access = hierarchy.access
        if tags is None:
            tag = decode_idio_bits(_MWR_FMT_TYPE | encode_idio_bits(_UNTAGGED))
            core = tag.dest_core
            # Positional construction: this loop runs once per DMA'd line.
            if hook is None:
                for addr in addrs:
                    access(MemoryTransaction(DMA_WRITE, addr, now, core, tag))
            else:
                for addr in addrs:
                    access(
                        MemoryTransaction(
                            DMA_WRITE, addr, now, core, tag, hook(tag, addr, now)
                        )
                    )
            return
        for addr, raw_tag in zip(addrs, tags):
            tag = decode_idio_bits(_MWR_FMT_TYPE | encode_idio_bits(raw_tag))
            placement = hook(tag, addr, now) if hook is not None else "llc"
            access(
                MemoryTransaction(DMA_WRITE, addr, now, tag.dest_core, tag, placement)
            )

    def _memory_write_batch_faulted(
        self,
        addrs: Sequence[int],
        tags: Optional[Sequence[IdioTag]],
    ) -> None:
        """Per-line slow path used only when TLP reorder/corruption
        faults are installed.

        The burst may be legally permuted, and each line's encoded header
        word may have an IDIO reserved bit flipped *before* the decode
        the steering path relies on — exactly the adversity the Fig. 7
        in-band transport must tolerate (a corrupted tag steers a line to
        the wrong place; it must never crash the pipeline).
        """
        now = self.sim.now
        faults = self.faults
        hook = self.steering_hook
        access = self.hierarchy.access
        addrs, tags = faults.permute_batch(addrs, tags, now)
        for i, addr in enumerate(addrs):
            raw_tag = tags[i] if tags is not None else _UNTAGGED
            word = faults.corrupt_word(_MWR_FMT_TYPE | encode_idio_bits(raw_tag), now)
            tag = decode_idio_bits(word)
            placement = hook(tag, addr, now) if hook is not None else "llc"
            access(
                MemoryTransaction(DMA_WRITE, addr, now, tag.dest_core, tag, placement)
            )

    def memory_read(self, tlp: MemReadTLP) -> int:
        """Process one outbound DMA read TLP (TX); returns hierarchy latency."""
        txn = MemoryTransaction(DMA_READ, tlp.address, self.sim.now)
        self.hierarchy.access(txn)
        return txn.latency

    def memory_read_batch(self, addrs: Sequence[int]) -> None:
        """Process one TX burst: a memory-read TLP per line, same tick."""
        now = self.sim.now
        hierarchy = self.hierarchy
        if not (hierarchy.record_hops or hierarchy._txn_subs):
            run = hierarchy._run_dma_read
            txn = self._scratch_read
            txn.now = now
            for addr in addrs:
                txn.addr = addr & _LINE_MASK
                run(txn)
            return
        access = hierarchy.access
        for addr in addrs:
            access(MemoryTransaction(DMA_READ, addr, now))
