"""PCIe Transaction Layer Packet headers with IDIO metadata.

IDIO transports four pieces of classifier metadata from the NIC to the
on-chip controller inside the *reserved* bits of the TLP header's first
doubleword (Fig. 7):

* ``destCore`` — 6 bits spread over bit 23, bits [19:16], and bit 11;
* ``appClass == 1`` — signaled by all six destCore bits being set
  (so at most 63 cores are addressable);
* ``isHeader`` — bit 31;
* ``isBurst``  — bit 10.

We encode/decode the real bit layout so the "fits in reserved bits" claim
is checked by construction, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

#: Reserved-bit positions of the first TLP header DW used by IDIO (Fig. 7).
HEADER_FLAG_BIT = 31
BURST_FLAG_BIT = 10
#: destCore bit positions, most-significant first: bit 23, bits 19..16, bit 11.
DEST_CORE_BITS = (23, 19, 18, 17, 16, 11)
#: All six destCore bits set => application class 1 (§V-A).
APP_CLASS1_CORE_CODE = (1 << len(DEST_CORE_BITS)) - 1
#: Maximum addressable core number (63 is reserved for appClass 1).
MAX_DEST_CORE = APP_CLASS1_CORE_CODE - 1

#: Every reserved-bit position IDIO repurposes, in descending order.  The
#: fault injector flips bits drawn from this tuple to model corrupted
#: metadata that the decode path must tolerate.
IDIO_METADATA_BITS = tuple(
    sorted((HEADER_FLAG_BIT, BURST_FLAG_BIT) + DEST_CORE_BITS, reverse=True)
)

_IDIO_MASK = sum(1 << b for b in IDIO_METADATA_BITS)


@dataclass(frozen=True, slots=True)
class IdioTag:
    """Classifier metadata carried by one DMA write TLP (Alg. 1 inputs)."""

    dest_core: int = 0
    app_class: int = 0
    is_header: bool = False
    is_burst: bool = False

    def __post_init__(self) -> None:
        if self.app_class not in (0, 1):
            raise ValueError(f"app_class must be 0 or 1, got {self.app_class}")
        if self.app_class == 0 and not 0 <= self.dest_core <= MAX_DEST_CORE:
            raise ValueError(
                f"dest_core must be in 0..{MAX_DEST_CORE}, got {self.dest_core}"
            )


@lru_cache(maxsize=None)
def encode_idio_bits(tag: IdioTag) -> int:
    """Pack an :class:`IdioTag` into the reserved bits of a TLP header DW.

    Memoized: only a handful of distinct tags ever exist per run (per-core
    header/payload/burst combinations), and tags are frozen/hashable.
    """
    core_code = APP_CLASS1_CORE_CODE if tag.app_class == 1 else tag.dest_core
    word = 0
    for i, bit in enumerate(DEST_CORE_BITS):
        if core_code & (1 << (len(DEST_CORE_BITS) - 1 - i)):
            word |= 1 << bit
    if tag.is_header:
        word |= 1 << HEADER_FLAG_BIT
    if tag.is_burst:
        word |= 1 << BURST_FLAG_BIT
    return word


@lru_cache(maxsize=None)
def decode_idio_bits(word: int) -> IdioTag:
    """Unpack the reserved bits back into an :class:`IdioTag`.

    Memoized on the header word; the returned tag is immutable, so sharing
    one instance across transactions is safe.
    """
    core_code = 0
    for bit in DEST_CORE_BITS:
        core_code = (core_code << 1) | ((word >> bit) & 1)
    is_header = bool((word >> HEADER_FLAG_BIT) & 1)
    is_burst = bool((word >> BURST_FLAG_BIT) & 1)
    if core_code == APP_CLASS1_CORE_CODE:
        return IdioTag(dest_core=0, app_class=1, is_header=is_header, is_burst=is_burst)
    return IdioTag(
        dest_core=core_code, app_class=0, is_header=is_header, is_burst=is_burst
    )


@dataclass(frozen=True, slots=True)
class MemWriteTLP:
    """A memory-write TLP for one cacheline of inbound DMA."""

    address: int
    tag: IdioTag
    length_bytes: int = 64

    def header_word(self) -> int:
        """First header DW: format/type for MWr plus the IDIO reserved bits.

        Only the reserved bits matter to the simulation; the format/type
        field (0x40 = MWr, 3DW header) is included so the word is a valid
        TLP DW0 and the IDIO bits demonstrably avoid the defined fields.
        """
        fmt_type = 0x40 << 24
        word = fmt_type | encode_idio_bits(self.tag)
        return word


@dataclass(frozen=True, slots=True)
class MemReadTLP:
    """A memory-read TLP for one cacheline of outbound DMA (TX)."""

    address: int
    length_bytes: int = 64


def tlp_is_idio_tagged(word: int) -> bool:
    """Whether any IDIO reserved bit is set in a header DW."""
    return bool(word & _IDIO_MASK)
