"""PCIe substrate: TLP headers with IDIO metadata and the root complex."""

from .root_complex import RootComplex, SteeringHook
from .tlp import (
    APP_CLASS1_CORE_CODE,
    BURST_FLAG_BIT,
    DEST_CORE_BITS,
    HEADER_FLAG_BIT,
    MAX_DEST_CORE,
    IdioTag,
    MemReadTLP,
    MemWriteTLP,
    decode_idio_bits,
    encode_idio_bits,
    tlp_is_idio_tagged,
)

__all__ = [
    "APP_CLASS1_CORE_CODE",
    "BURST_FLAG_BIT",
    "DEST_CORE_BITS",
    "HEADER_FLAG_BIT",
    "IdioTag",
    "MAX_DEST_CORE",
    "MemReadTLP",
    "MemWriteTLP",
    "RootComplex",
    "SteeringHook",
    "decode_idio_bits",
    "encode_idio_bits",
    "tlp_is_idio_tagged",
]
