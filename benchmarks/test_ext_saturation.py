"""Extension bench: steady-load saturation sweep (drops vs offered rate)."""

from repro.harness import extensions


def test_ext_saturation_sweep(run_once):
    rates = (10.0, 12.0, 14.0, 16.0, 20.0)
    report = run_once(extensions.ext_saturation, rates_gbps=rates)

    def row(policy, rate):
        for r in report.rows:
            if r["policy"] == policy and r["rate_gbps"] == rate:
                return r
        raise AssertionError(f"missing {policy}@{rate}")

    # Paper §VI/§VII: no drops at 10 Gbps per core, drops appear past
    # ~12 Gbps under the baseline.
    assert row("ddio", 10.0)["drops"] == 0
    assert row("ddio", 20.0)["drops"] > 0

    # IDIO's faster per-packet processing raises the lossless rate: at
    # every offered load its drop rate is at most the baseline's.
    for rate in rates:
        assert row("idio", rate)["drop_pct"] <= row("ddio", rate)["drop_pct"] + 0.1

    # And somewhere in the sweep IDIO strictly beats DDIO on drops.
    assert any(
        row("idio", rate)["drops"] < row("ddio", rate)["drops"]
        for rate in rates[1:]
    )
