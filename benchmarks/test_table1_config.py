"""Table I: the simulated platform configuration.

Asserts that the default simulated server matches the paper's (scaled)
gem5 configuration and prints the effective topology.
"""

from repro.harness.report import format_table
from repro.harness.server import ServerConfig, SimulatedServer
from repro.sim import units


def build_server():
    return SimulatedServer(ServerConfig())


def test_table1_configuration(benchmark):
    server = benchmark.pedantic(build_server, rounds=1, iterations=1)
    h = server.hierarchy

    rows = [
        ["Core freq", "3 GHz", f"{server.config.freq_ghz} GHz"],
        ["L1D size/assoc", "64 KB / 2", f"{h.l1[0].config.size_bytes // 1024} KB / {h.l1[0].config.assoc}"],
        ["L1D latency", "2 CC", f"{h.l1[0].config.latency / units.cycles(1):.0f} CC"],
        ["MLC size/assoc", "1 MB / 8", f"{h.mlc[0].config.size_bytes // 1024} KB / {h.mlc[0].config.assoc}"],
        ["MLC latency", "12 CC", f"{h.mlc[0].config.latency / units.cycles(1):.0f} CC"],
        ["LLC size/assoc", "3 MB (scaled) / 12", f"{h.llc.config.size_bytes // 1024} KB / {h.llc.config.assoc}"],
        ["LLC latency", "24 CC", f"{h.llc.config.latency / units.cycles(1):.0f} CC"],
        ["DDIO ways", "2", str(h.llc.ddio_ways)],
        ["LLC inclusion", "non-inclusive", "inclusive" if h.llc.inclusive else "non-inclusive"],
        ["Ring size", "1024 (DPDK default)", str(server.config.ring_size)],
        ["Packet size", "1514 B", f"{server.config.packet_bytes} B"],
        ["PMD batch", "32", str(server.drivers[0].batch_size)],
    ]
    print()
    print(format_table(["parameter", "paper (Table I / SVI)", "simulated"], rows,
                       title="Table I — platform configuration"))

    assert h.l1[0].config.size_bytes == 64 * 1024 and h.l1[0].config.assoc == 2
    assert h.mlc[0].config.size_bytes == 1024 * 1024 and h.mlc[0].config.assoc == 8
    assert h.llc.config.size_bytes == 3 * 1024 * 1024 and h.llc.config.assoc == 12
    assert h.llc.ddio_ways == 2 and not h.llc.inclusive
    assert h.mlc[0].config.latency == units.cycles(12)
    assert h.llc.config.latency == units.cycles(24)
    assert server.config.ring_size == 1024
    assert server.drivers[0].batch_size == 32
