"""Fig. 14: sensitivity of IDIO to the mlcTHR threshold value."""

from repro.harness import figures


def test_fig14_mlcthr_sensitivity(run_once):
    report = run_once(
        figures.fig14,
        thresholds_mtps=(10.0, 25.0, 50.0, 75.0, 100.0),
        burst_rate_gbps=100.0,
        ring_size=1024,
    )

    # Paper: IDIO consistently improves the statistics regardless of the
    # threshold value — every sweep point must beat DDIO on LLC WBs and
    # DRAM writes and not regress burst time.
    assert len(report.rows) == 5
    for r in report.rows:
        assert r["llc_writebacks"] < 1.0, r
        assert r["dram_writes"] < 1.0, r
        assert r["mlc_writebacks"] < 1.0, r
        assert r["exe_time"] < 1.0, r

    # "Not overly sensitive": the spread of the normalized burst time
    # across thresholds stays small.
    exe = [r["exe_time"] for r in report.rows]
    assert max(exe) - min(exe) < 0.15
