"""Extension bench: IDIO under Poisson arrivals and IMIX packet sizes."""

from repro.harness import extensions


def test_ext_traffic_realism(run_once):
    report = run_once(extensions.ext_traffic_realism, duration_us=1500.0)

    def row(traffic, policy):
        for r in report.rows:
            if r["traffic"] == traffic and r["policy"] == policy:
                return r
        raise AssertionError(f"missing {traffic}/{policy}")

    for traffic in ("steady", "poisson", "imix"):
        base = row(traffic, "ddio")
        ours = row(traffic, "idio")
        # The same packets must be delivered under both policies.
        assert ours["rx"] == base["rx"], traffic
        # IDIO's writeback elimination survives stochastic traffic.
        assert ours["mlc_wb"] <= base["mlc_wb"], traffic
        assert ours["llc_wb"] <= base["llc_wb"], traffic
        # Tail latency does not regress.
        assert ours["p99_us"] <= base["p99_us"] * 1.05, traffic

    # Poisson queueing variance lifts the tail relative to clocked
    # arrivals at the same average load (sanity of the generator).
    assert row("poisson", "ddio")["p99_us"] >= row("steady", "ddio")["p99_us"]
