"""Table II: behavioral verification of the evaluation functions.

TouchDrop touches every byte and drops; L2Fwd forwards on the Ethernet
header; LLCAntagonist randomly accesses a variable-size buffer.  Each is
exercised end-to-end and its memory-access signature checked.
"""

from repro.core.policies import ddio
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.report import format_table
from repro.harness.server import ServerConfig
from repro.sim import units


def run_function(app, **server_kwargs):
    exp = Experiment(
        name=f"table2-{app}",
        server=ServerConfig(policy=ddio(), app=app, ring_size=64, **server_kwargs),
        traffic="bursty",
        burst_rate_gbps=50.0,
    )
    return run_experiment(exp)


def test_table2_functions(benchmark):
    def run_all():
        return {
            "touchdrop": run_function("touchdrop"),
            "l2fwd": run_function("l2fwd", packet_bytes=1024),
            "antagonist": run_function("touchdrop", antagonist=True),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    td = results["touchdrop"]
    l2 = results["l2fwd"]
    an = results["antagonist"]

    rows = [
        ["TouchDrop", "touch all data, drop", f"{td.completed} pkts, {td.server.nic.total_tx} TX"],
        ["L2Fwd", "forward on Ethernet header", f"{l2.completed} pkts, {l2.server.nic.total_tx} TX"],
        ["LLCAntagonist", "random buffer accesses", f"{an.antagonist_accesses} accesses"],
    ]
    print()
    print(format_table(["function", "Table II behavior", "measured"], rows,
                       title="Table II — evaluation functions"))

    # TouchDrop drops (no TX), touches everything (per-packet reads = lines).
    assert td.server.nic.total_tx == 0
    td_reads = td.server.cores[0].stats.mem_accesses
    assert td_reads >= td.completed / 2 * 24  # per-core share of line touches
    # L2Fwd transmits every packet.
    assert l2.server.nic.total_tx == l2.completed
    # The antagonist made progress while the NFs ran.
    assert an.antagonist_accesses > 1000
