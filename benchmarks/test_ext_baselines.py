"""Extension bench: baseline ladder DDIO / IAT / IDIO / regulated IDIO."""

from repro.harness import extensions


def test_ext_baseline_ladder(run_once):
    report = run_once(extensions.ext_baselines, burst_rates=(100.0, 25.0))

    def row(policy, rate):
        for r in report.rows:
            if r["policy"] == policy and r["rate_gbps"] == rate:
                return r
        raise AssertionError(f"missing {policy}@{rate}")

    for rate in (100.0, 25.0):
        base = row("ddio", rate)
        dyn = row("iat", rate)
        ours = row("idio", rate)
        reg = row("idio-regulated", rate)

        # S1 quantified: way-resizing trims the DMA leak but leaves the
        # dead-buffer MLC writebacks untouched.
        assert dyn["llc_wb"] <= base["llc_wb"]
        assert dyn["mlc_wb"] >= base["mlc_wb"] * 0.9

        # IDIO dominates the way-resizing baseline on every axis.
        assert ours["mlc_wb"] < dyn["mlc_wb"]
        assert ours["burst_time_us"] < dyn["burst_time_us"]

        # The §VII future-work prefetcher removes MLC flooding entirely
        # and is at least as fast as dynamic IDIO.
        assert reg["mlc_wb"] == 0
        assert reg["burst_time_us"] <= ours["burst_time_us"] * 1.02
