"""Extension benches: rxBurstTHR sweep, ring-size sweep, inclusion ablation."""

from repro.harness import extensions


def test_ext_burst_threshold_sweep(run_once):
    report = run_once(
        extensions.ext_burst_threshold,
        thresholds_gbps=(2.0, 10.0, 50.0),
        ring_size=1024,
    )
    # IDIO keeps beating DDIO across the rxBurstTHR sweep: the mechanism
    # is robust to the detection threshold at a 100 Gbps burst (bursts
    # are detected for every threshold below the burst rate).
    for r in report.rows:
        assert r["bursts_detected"] > 0, r
        assert r.get("llc_writebacks") < 1.0, r
        assert r.get("exe_time") < 1.0, r


def test_ext_ring_sweep(run_once):
    report = run_once(extensions.ext_ring_sweep, ring_sizes=(256, 1024))

    def row(ring, policy):
        for r in report.rows:
            if r["ring"] == ring and r["policy"] == policy:
                return r
        raise AssertionError(f"missing ring{ring}/{policy}")

    # DDIO degrades with ring size (more leak, more dead buffers); IDIO's
    # benefit grows with the ring.
    assert row(1024, "ddio")["llc_wb"] > row(256, "ddio")["llc_wb"]
    for ring in (256, 1024):
        assert row(ring, "idio")["llc_wb"] <= row(ring, "ddio")["llc_wb"]
        assert row(ring, "idio")["burst_time_us"] <= row(ring, "ddio")["burst_time_us"]


def test_ext_inclusive_counterfactual(run_once):
    report = run_once(extensions.ext_inclusive_counterfactual, ring_size=1024)

    def row(kind):
        for r in report.rows:
            if r["hierarchy"] == kind:
                return r
        raise AssertionError(kind)

    non_incl = row("non-inclusive")
    incl = row("inclusive")
    # DMA bloating (MLC victims allocating LLC lines) is a non-inclusive
    # phenomenon: the inclusive hierarchy shows far less MLC->LLC traffic
    # but pays with back-invalidations of MLC-resident lines.
    assert incl["mlc_wb"] < non_incl["mlc_wb"] * 0.5
    assert incl["back_invalidations"] > 0
    assert non_incl["back_invalidations"] == 0
