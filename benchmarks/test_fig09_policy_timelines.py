"""Fig. 9: per-policy MLC/LLC writeback timelines at 100/25 Gbps bursts."""

from repro.harness import figures


def test_fig9_policy_timelines(run_once):
    report = run_once(figures.fig9, burst_rates=(100.0, 25.0), ring_size=1024)

    def stats(policy, rate):
        for r in report.rows:
            if r["policy"] == policy and r["rate_gbps"] == rate:
                return r
        raise AssertionError(f"missing {policy}@{rate}")

    for rate in (100.0, 25.0):
        base = stats("ddio", rate)
        inval = stats("invalidate", rate)
        pref = stats("prefetch", rate)
        static = stats("static", rate)
        idio = stats("idio", rate)

        # Fig. 9c/d: self-invalidation removes (almost all) MLC WBs but
        # alone does not shorten the burst.
        assert inval["mlc_wb"] < base["mlc_wb"] * 0.1
        # Fig. 9e/f: prefetching shortens the burst but keeps MLC WBs.
        assert pref["burst_time_us"] < base["burst_time_us"]
        # Fig. 9g-j: combined configs beat DDIO on LLC WBs and burst time.
        assert static["llc_wb"] < base["llc_wb"]
        assert idio["llc_wb"] < base["llc_wb"]
        assert idio["burst_time_us"] < base["burst_time_us"]

    # Fig. 9g vs 9i at 100 Gbps: dynamic IDIO regulates MLC pressure that
    # Static lets overshoot.
    assert stats("idio", 100.0)["mlc_wb"] <= stats("static", 100.0)["mlc_wb"]
    # At 25 Gbps Static and IDIO behave the same (paper: "no difference").
    s25, i25 = stats("static", 25.0), stats("idio", 25.0)
    assert abs(s25["mlc_wb"] - i25["mlc_wb"]) <= max(100, 0.3 * (s25["mlc_wb"] + 1))
