"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark runs the corresponding ``repro.harness.figures`` entry
point exactly once under pytest-benchmark (pedantic mode: these are
minutes-scale simulations, not microbenchmarks), prints the paper-vs-
measured report, and asserts the qualitative shape the paper reports.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a figure function once and return its report."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        print()
        print(result.text)
        return result

    return runner
