"""Fig. 5: MLC/LLC writeback timeline over bursty traffic (DDIO)."""

from repro.harness import figures
from repro.sim import units


def test_fig5_burst_timeline(run_once):
    report = run_once(figures.fig5, ring_size=1024, num_bursts=3)
    result = report.results["ddio"]

    # Both phases produce writebacks.
    assert result.window.mlc_writebacks > 0
    assert result.window.llc_writebacks > 0

    # Paper shape: LLC writebacks concentrate in the DMA phase (the burst
    # transfer window), MLC writebacks in the execution phase.  Check that
    # LLC WB activity starts before MLC WB activity peaks for each burst.
    llc_tl = result.timeline("llc_writebacks")
    mlc_tl = result.timeline("mlc_writebacks")
    first_llc = next((t for t, v in llc_tl if v > 0), None)
    peak_mlc_t = max(mlc_tl, key=lambda tv: tv[1])[0]
    assert first_llc is not None
    assert first_llc <= peak_mlc_t

    # Three bursts at a 10 ms period: writeback activity appears in all
    # three burst windows.
    for burst in range(3):
        start = units.milliseconds(10 * burst)
        end = start + units.milliseconds(3)
        count = result.count_between("mlc_writebacks", start, end)
        assert count > 0, f"no MLC WBs in burst {burst}"
