"""Extension bench: mixed class-0 / class-1 NF deployment."""

from repro.harness import extensions


def test_ext_mixed_deployment(run_once):
    report = run_once(extensions.ext_mixed_deployment, ring_size=512)
    rows = {r["policy"]: r for r in report.rows}
    base, ours = rows["ddio"], rows["idio"]

    # Under IDIO only the class-1 firewall's payload bypasses the caches:
    # 512 packets x 15 payload lines from one core.
    assert ours["direct_dram_wr"] == 512 * 15
    assert base["direct_dram_wr"] == 0

    # The shared LLC is cleaner under IDIO, and neither app's average
    # latency regresses.
    assert ours["llc_wb"] < base["llc_wb"]
    assert ours["touchdrop_avg_us"] <= base["touchdrop_avg_us"] * 1.02
    assert ours["firewall_avg_us"] <= base["firewall_avg_us"] * 1.02
