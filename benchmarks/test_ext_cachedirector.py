"""Extension bench: CacheDirector slice steering vs DDIO vs IDIO (NUCA)."""

from repro.harness import extensions


def test_ext_cachedirector(run_once):
    report = run_once(extensions.ext_cachedirector, ring_size=1024)

    rows = {r["policy"]: r for r in report.rows}
    base, cd, ours = rows["ddio"], rows["cachedirector"], rows["idio"]

    # CacheDirector steers every header and does not hurt latency.
    assert cd["headers_steered"] > 0
    assert cd["p50_us"] <= base["p50_us"] * 1.01

    # The paper's critique: slice steering leaves the writeback pathology
    # untouched, while IDIO removes it on the same topology.
    assert cd["llc_wb"] >= base["llc_wb"] * 0.9
    assert ours["llc_wb"] < cd["llc_wb"] * 0.6
