"""Fig. 4: MLC and DRAM leaks vs load level and DMA ring size (DDIO)."""

from repro.harness import figures


def test_fig4_leaks(run_once):
    report = run_once(
        figures.fig4,
        ring_sizes=(64, 1024, 2048),
        max_duration_us=20_000.0,
    )

    def row(load, ring, one_way=False):
        for r in report.rows:
            if r["load"] == load and r["ring"] == ring and r["one_way"] == one_way:
                return r
        raise AssertionError(f"missing row {load}/{ring}/{one_way}")

    # Paper shape 1: ring 64 -> low MLC WB rate, high invalidation rate.
    small = row("high", 64)
    assert small["mlc_wb_per_rx_line"] < 0.1
    assert small["mlc_inval_per_rx_line"] > 0.5

    # Paper shape 2: ring 1024 -> substantial MLC WB rate (paper: ~1.5x RX;
    # we reproduce the order of magnitude) at medium and high load.
    for load in ("med", "high"):
        big = row(load, 1024)
        assert big["mlc_wb_per_rx_line"] > 0.4, (load, big)

    # Paper shape 3: _1way at high load -> higher DRAM write BW than the
    # unrestricted configuration.  The paper reports 12.3x at ring 1024
    # but only 1.7x at ring 2048 (the bigger ring already spills without
    # the partition), so the required factor differs per ring.
    for ring, factor in ((1024, 3.0), (2048, 1.3)):
        free = row("high", ring)
        restricted = row("high", ring, one_way=True)
        assert restricted["dram_write_gbps"] > max(
            factor * free["dram_write_gbps"], 1.0
        ), (ring, free["dram_write_gbps"], restricted["dram_write_gbps"])
