"""Fig. 10: normalized transaction counts and burst processing time."""

from repro.harness import figures


def test_fig10_normalized(run_once):
    report = run_once(
        figures.fig10,
        burst_rates=(100.0, 25.0, 10.0),
        ring_size=1024,
        include_static=True,
        include_corun=True,
    )

    def row(scenario, policy, rate):
        for r in report.rows:
            if (
                r["scenario"] == scenario
                and r["policy"] == policy
                and r["rate_gbps"] == rate
            ):
                return r
        raise AssertionError(f"missing {scenario}/{policy}/{rate}")

    # Solo IDIO: every statistic at or below DDIO at every rate.
    for rate in (100.0, 25.0, 10.0):
        r = row("solo", "idio", rate)
        for key in ("mlc_writebacks", "llc_writebacks", "dram_writes"):
            assert r[key] <= 1.0, (rate, key, r[key])
        assert r["exe_time"] <= 1.02, (rate, r["exe_time"])

    # Paper: burst time improves at 100 and 25 Gbps but NOT at 10 Gbps
    # (packets are not queued at 10 Gbps).
    assert row("solo", "idio", 100.0)["exe_time"] < 0.95
    assert row("solo", "idio", 25.0)["exe_time"] < 0.90
    assert row("solo", "idio", 10.0)["exe_time"] > 0.97

    # Paper: IDIO nearly eliminates DRAM write bandwidth at 25 Gbps.
    assert row("solo", "idio", 25.0)["dram_writes"] < 0.2

    # Co-run: burst time still improves (paper: 10.9% / 20.8%).
    assert row("corun", "idio", 100.0)["exe_time"] < 0.97
    assert row("corun", "idio", 25.0)["exe_time"] < 0.92

    # Co-run: the antagonist is not slowed down by IDIO (paper: its CPI
    # improves 16.8-22.1%).
    for rate in (100.0, 25.0):
        ratio = row("corun", "idio", rate).get("antagonist_access_ratio")
        assert ratio is not None and ratio <= 1.02, (rate, ratio)
