"""Fig. 11: L2Fwd (shallow, zero-copy) timelines plus the class-1 variant."""

from repro.harness import figures


def test_fig11_l2fwd(run_once):
    report = run_once(
        figures.fig11,
        burst_rate_gbps=100.0,
        ring_size=1024,
        packet_bytes=1024,
        include_payload_drop=True,
    )

    def row(name):
        for r in report.rows:
            if r["config"] == name:
                return r
        raise AssertionError(f"missing {name}")

    base = row("ddio")
    ours = row("idio")
    pd = row("idio-payload-drop")

    # Paper: under DDIO there is almost no MLC activity (only headers and
    # descriptors move through the MLC) but LLC writebacks build up.
    assert base["mlc_wb"] <= base["tx_packets"] * 3
    assert base["llc_wb"] > 0

    # Paper: IDIO admits data to the idle MLC and invalidates after the
    # forward completes -> far fewer LLC writebacks.
    assert ours["llc_wb"] < base["llc_wb"] * 0.6

    # Both configurations forward every packet.
    assert base["tx_packets"] == ours["tx_packets"] == 2048

    # Paper (direct DRAM variant): payload is written straight to DRAM at
    # ~RX bandwidth; LLC writebacks vanish.
    payload_lines_per_pkt = 1024 // 64 - 1
    assert pd["direct_dram_wr"] == 2048 * payload_lines_per_pkt
    assert pd["llc_wb"] < 100
