"""Fig. 13: steady-traffic writeback timelines (DDIO vs IDIO)."""

from repro.harness import figures


def test_fig13_steady(run_once):
    report = run_once(figures.fig13, rate_gbps_per_nf=10.0, ring_size=1024,
                      duration_us=2500.0)

    def row(policy):
        for r in report.rows:
            if r["policy"] == policy:
                return r
        raise AssertionError(f"missing {policy}")

    base = row("ddio")
    ours = row("idio")

    # Paper: DDIO experiences consistent MLC writebacks at steady load
    # (same per-packet rate as bursty traffic); IDIO's self-invalidation
    # removes most of them.
    assert base["mlc_wb"] > 0
    assert ours["mlc_wb"] < base["mlc_wb"] * 0.1

    # Neither policy drops packets below the per-core saturation rate.
    assert base["rx_drops"] == 0
    assert ours["rx_drops"] == 0

    # DDIO's MLC WB activity is spread across the run, not a single spike:
    # at least half the 100 us bins past warmup show writebacks.
    result = report.results["ddio"]
    tl = result.timeline("mlc_writebacks", bin_us=100.0)
    warm = [v for t, v in tl if t > 800.0]
    active = sum(1 for v in warm if v > 0)
    assert active >= len(warm) // 2
