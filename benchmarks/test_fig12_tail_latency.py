"""Fig. 12: 50th/99th percentile TouchDrop latency, solo and co-run."""

from repro.harness import figures


def test_fig12_tail_latency(run_once):
    report = run_once(
        figures.fig12,
        burst_rates=(100.0, 25.0, 10.0),
        ring_size=1024,
        include_corun=True,
    )

    def row(scenario, rate):
        for r in report.rows:
            if r["scenario"] == scenario and r["rate_gbps"] == rate:
                return r
        raise AssertionError(f"missing {scenario}/{rate}")

    # IDIO never worsens p99 (paper: reductions at every rate).
    for scenario in ("solo", "corun"):
        for rate in (100.0, 25.0, 10.0):
            r = row(scenario, rate)
            assert r["idio_p99_us"] <= r["ddio_p99_us"] * 1.02, (scenario, rate)

    # Paper shape: the biggest p99 cut is at 25 Gbps (30.5% solo, 32%
    # co-run; abstract headline "up to 38%").
    cuts = {rate: row("solo", rate)["p99_reduction_pct"] for rate in (100.0, 25.0, 10.0)}
    assert cuts[25.0] >= cuts[100.0]
    assert cuts[25.0] >= cuts[10.0]
    assert cuts[25.0] > 15.0

    # p50 also improves where queueing happens (100/25 Gbps).
    for rate in (100.0, 25.0):
        r = row("solo", rate)
        assert r["idio_p50_us"] < r["ddio_p50_us"]
