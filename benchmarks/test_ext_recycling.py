"""Extension bench: §II-B buffer recycling modes under DDIO and IDIO."""

from repro.harness import extensions


def test_ext_recycling_modes(run_once):
    report = run_once(extensions.ext_recycling_modes, ring_size=512)

    def row(policy, mode):
        for r in report.rows:
            if r["policy"] == policy and r["mode"] == mode:
                return r
        raise AssertionError(f"missing {policy}/{mode}")

    # Copy mode roughly doubles the core-side memory traffic of in-place
    # processing (it touches the DMA lines and the copy).
    rtc = row("ddio", "run_to_completion")
    copy = row("ddio", "copy")
    assert copy["core_accesses"] > rtc["core_accesses"] * 1.7
    assert copy["burst_time_us"] > rtc["burst_time_us"]

    # All modes complete and IDIO's self-invalidation keeps helping in
    # every recycling model (its M1 applies to all three, §IV-A).
    for mode in ("run_to_completion", "copy", "reallocate"):
        base = row("ddio", mode)
        ours = row("idio", mode)
        assert ours["llc_wb"] <= base["llc_wb"]
        assert ours["mlc_wb"] <= base["mlc_wb"]
