PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-benchmarks bench bench-check bench-smoke validate lint analyze check faults-smoke rack-smoke serve-smoke tenants-smoke

test:
	$(PYTHON) -m pytest -x -q

# Requires ruff (pip install ruff); configuration lives in pyproject.toml.
lint:
	ruff check src tests tools benchmarks

# Full static-analysis battery: simlint SIM001-SIM015 (always; parses in
# parallel through the .simlint-cache AST store) + ruff/mypy (when
# installed -- missing tools are skipped with a notice, see tools/analyze.py;
# CI makes them mandatory with --require ruff,mypy).
analyze:
	$(PYTHON) tools/analyze.py --jobs 4

# Runtime correctness gate: checked-mode runs (invariant sanitizer) plus
# the dual-run determinism digest (see `repro check --help`).
check:
	$(PYTHON) -m repro.cli check --quick

# Fault-injection degradation matrix at reduced scale with the invariant
# sanitizer on; exits nonzero if any cell crashes, hangs, or violates an
# invariant (see docs/api.md).
faults-smoke:
	$(PYTHON) -m repro.cli faults --quick --checked --jobs 4

# Rack-tier smoke gate: a tiny 2-server rack sweep with the invariant
# sanitizer attached to every server (see `repro rack --help`).
rack-smoke:
	$(PYTHON) -m repro.cli rack --servers 2 --flows 1024 --rate 20 \
		--duration-us 100 --jobs 2 --checked

# Tenant-tier smoke gate: the 2-tenant noisy-neighbor isolation sweep
# under DDIO vs IDIO vs IOCA with checked mode on; fails unless the
# victim's p99 improves under IOCA's way partitioning (see docs/api.md).
tenants-smoke:
	$(PYTHON) tools/tenants_smoke.py

# Result-cache daemon smoke gate: boot `repro serve` on a throwaway
# socket/cache, run the same tiny sweep twice, and require the second
# pass to be answered entirely from the warm cache with byte-identical
# fingerprints (see docs/caching.md).
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

test-benchmarks:
	$(PYTHON) -m pytest benchmarks -q

bench:
	$(PYTHON) tools/bench.py

# Fails if any workload's wall time regressed >25% vs the last
# committed BENCH_*.json (see tools/bench.py --help).
bench-check:
	$(PYTHON) tools/bench.py --check

# CI smoke gate: the trimmed matrix (reference burst + both ends of the
# sweep scaling curve) under a generous threshold that only catches
# order-of-magnitude breakage -- shared-runner timing is too noisy for
# the 25% gate (see docs/performance.md).
bench-smoke:
	$(PYTHON) tools/bench.py --quick --check --threshold 150

validate:
	$(PYTHON) -m repro.cli validate --quick
