"""Tests for the ``idio-repro rack`` subcommand."""

import json

import pytest

from repro.cli import build_parser, main


class TestRackParser:
    def test_defaults(self):
        args = build_parser().parse_args(["rack"])
        assert args.command == "rack"
        assert args.servers == 4
        assert args.flows == 8192
        assert args.steering == "rss"
        assert args.profile == "heavytail"
        assert args.jobs == 1

    def test_invalid_steering_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rack", "--steering", "toeplitz"])

    def test_invalid_servers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rack", "--servers", "0"])


RACK_SMALL = [
    "rack", "--servers", "2", "--flows", "256",
    "--rate", "20", "--duration-us", "50",
]


class TestRackCommand:
    def test_runs_and_prints_table(self, capsys):
        assert main(RACK_SMALL) == 0
        out = capsys.readouterr().out
        assert "s00" in out and "s01" in out
        assert "rack fingerprint:" in out

    def test_jobs_sharded_matches_serial(self, capsys):
        def fingerprint(extra):
            assert main(RACK_SMALL + extra) == 0
            out = capsys.readouterr().out
            line = next(
                l for l in out.splitlines() if l.startswith("rack fingerprint:")
            )
            return line.split(":", 1)[1].strip()

        assert fingerprint([]) == fingerprint(["--jobs", "2"])

    def test_out_writes_summary_json(self, tmp_path, capsys):
        out = tmp_path / "rack.json"
        assert main(RACK_SMALL + ["--out", str(out)]) == 0
        blob = json.loads(out.read_text())
        assert blob["num_servers"] == 2
        assert len(blob["servers"]) == 2

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(RACK_SMALL + ["--trace-out", str(out)]) == 0
        blob = json.loads(out.read_text())
        assert blob["traceEvents"]

    def test_checked_and_policy(self, capsys):
        assert main(RACK_SMALL + ["--checked", "--policy", "idio"]) == 0
        out = capsys.readouterr().out
        assert "idio" in out
