"""Unit + property tests for the RX descriptor ring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import Packet
from repro.nic.descriptor import DESCRIPTOR_BYTES, DescriptorRing, RingFullError


def make_ring(size=4):
    return DescriptorRing(size, desc_base=0x1000, buffer_base=0x100000, buffer_stride=2048)


class TestLayout:
    def test_descriptor_addresses_strided(self):
        ring = make_ring(4)
        assert ring.descriptors[1].desc_addr - ring.descriptors[0].desc_addr == DESCRIPTOR_BYTES

    def test_buffer_addresses_strided(self):
        ring = make_ring(4)
        assert ring.descriptors[1].buffer_addr - ring.descriptors[0].buffer_addr == 2048

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make_ring(0)


class TestClaimCompleteFree:
    def test_claim_assigns_buffer(self):
        ring = make_ring()
        p = Packet()
        desc = ring.claim(p)
        assert p.buffer_addr == desc.buffer_addr
        assert ring.occupancy() == 1

    def test_claim_wraps_around(self):
        ring = make_ring(2)
        d0 = ring.claim(Packet())
        d1 = ring.claim(Packet())
        ring.complete(d0)
        assert ring.pop_ready() is d0
        ring.free(d0)
        d2 = ring.claim(Packet())
        assert d2.index == 0  # wrapped

    def test_full_ring_raises(self):
        ring = make_ring(2)
        ring.claim(Packet())
        ring.claim(Packet())
        with pytest.raises(RingFullError):
            ring.claim(Packet())

    def test_packet_invisible_until_complete(self):
        ring = make_ring()
        ring.claim(Packet())
        assert ring.peek_ready() is None
        assert ring.pop_ready() is None

    def test_complete_makes_visible(self):
        ring = make_ring()
        desc = ring.claim(Packet())
        ring.complete(desc)
        assert ring.peek_ready() is desc

    def test_pop_advances_cpu_pointer(self):
        ring = make_ring()
        d0 = ring.claim(Packet())
        d1 = ring.claim(Packet())
        ring.complete(d0)
        ring.complete(d1)
        assert ring.pop_ready() is d0
        assert ring.pop_ready() is d1
        assert ring.pop_ready() is None

    def test_out_of_order_completion_blocks_cpu(self):
        """The CPU pointer consumes in ring order (like real rings)."""
        ring = make_ring()
        d0 = ring.claim(Packet())
        d1 = ring.claim(Packet())
        ring.complete(d1)  # d0 still in flight
        assert ring.pop_ready() is None

    def test_free_twice_rejected(self):
        ring = make_ring()
        desc = ring.claim(Packet())
        ring.complete(desc)
        ring.pop_ready()
        ring.free(desc)
        with pytest.raises(ValueError):
            ring.free(desc)

    def test_use_distance(self):
        ring = make_ring(8)
        for _ in range(3):
            ring.complete(ring.claim(Packet()))
        assert ring.use_distance() == 3
        ring.free(ring.pop_ready())
        assert ring.use_distance() == 2

    def test_use_distance_empty(self):
        assert make_ring().use_distance() == 0


class TestWraparoundProperty:
    @settings(max_examples=50)
    @given(st.lists(st.sampled_from(["rx", "consume"]), min_size=1, max_size=300))
    def test_ring_invariants_under_random_traffic(self, ops):
        ring = make_ring(5)
        in_flight = []
        for op in ops:
            if op == "rx":
                if ring.free_slots() > 0:
                    desc = ring.claim(Packet())
                    ring.complete(desc)
                    in_flight.append(desc)
                else:
                    with pytest.raises(RingFullError):
                        ring.claim(Packet())
            else:
                desc = ring.pop_ready()
                if desc is not None:
                    assert desc is in_flight.pop(0)  # strict FIFO
                    ring.free(desc)
            assert 0 <= ring.occupancy() <= ring.size
            assert ring.occupancy() == len(in_flight)
            assert ring.free_slots() == ring.size - len(in_flight)
