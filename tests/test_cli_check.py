"""`repro check` end-to-end: exit codes and output of the correctness gate."""

import pytest

from repro.cli import main


def run_check(capsys, extra=()):
    code = main(["check", "--quick", "--policies", "ddio", *extra])
    return code, capsys.readouterr().out


def test_check_quick_passes(capsys):
    code, out = run_check(capsys)
    assert code == 0
    assert "ok   sanitizer[ddio]" in out
    assert "ok   determinism" in out
    assert "check: all clean" in out


def test_check_rejects_empty_policy_list(capsys):
    assert main(["check", "--policies", ""]) == 2


def test_check_help_lists_subcommand():
    with pytest.raises(SystemExit) as excinfo:
        main(["check", "--help"])
    assert excinfo.value.code == 0
