"""Engine-layer tests: project model, resolution, call graph, AST cache.

The whole-program rules are only as good as the model underneath them;
these tests pin the model's contracts directly — import resolution
through re-export chains, call-graph edges across modules, and the
parse-once / cache / parallel invariants ``lint_project`` relies on.
"""

from pathlib import Path

from tools.simlint import lint_project
from tools.simlint.engine import Project, parse_files, parse_source_file

FIXTURES = Path(__file__).parent / "fixtures" / "simlint"
REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
TAINT_PKG = str(FIXTURES / "sim011_taint")


def test_project_load_honors_fixture_headers():
    project = Project.load([TAINT_PKG])
    assert sorted(project.modules) == [
        "repro.harness.fix_cache",
        "repro.harness.fix_clock",
        "repro.harness.fix_summarize",
    ]


def test_resolve_follows_imports_across_modules():
    project = Project.load([TAINT_PKG])
    assert project.resolve("repro.harness.fix_summarize", ("stamp",)) == (
        "repro.harness.fix_clock",
        "stamp",
    )
    # Unknown names stay unresolved rather than guessing.
    assert project.resolve("repro.harness.fix_summarize", ("nonesuch",)) is None


def test_resolve_follows_reexport_chains():
    """repro/__init__ -> repro.api -> the defining module, transitively."""
    project = Project.load([str(REPO_SRC)])
    assert project.resolve("repro", ("Experiment",)) == (
        "repro.harness.experiment",
        "Experiment",
    )


def test_call_graph_crosses_module_boundaries():
    project = Project.load([TAINT_PKG])
    edges = project.call_graph()[("repro.harness.fix_summarize", "build_summary")]
    assert ("repro.harness.fix_clock", "stamp") in edges
    assert ("repro.harness.fix_clock", "passthrough") in edges


def test_module_graph_edges():
    project = Project.load([TAINT_PKG])
    graph = project.module_graph()
    assert "repro.harness.fix_clock" in graph["repro.harness.fix_summarize"]


def test_classes_named_spans_the_project():
    project = Project.load([str(FIXTURES / "sim013_digest")])
    assert [mod for mod, _ in project.classes_named("ServerConfig")] == [
        "repro.harness.fix_config"
    ]


def test_parse_files_populates_and_reuses_cache(tmp_path):
    cache = tmp_path / "astcache"
    first = parse_files([TAINT_PKG], cache_dir=cache)
    entries = list(cache.iterdir())
    assert len(entries) == len(first) == 3
    stamps = {p: p.stat().st_mtime_ns for p in entries}
    second = parse_files([TAINT_PKG], cache_dir=cache)
    # Same files, no re-store: cached entries are untouched on a hit.
    assert [f.module for f in second] == [f.module for f in first]
    assert {p: p.stat().st_mtime_ns for p in cache.iterdir()} == stamps


def test_corrupt_cache_entry_falls_back_to_parsing(tmp_path):
    cache = tmp_path / "astcache"
    parse_files([TAINT_PKG], cache_dir=cache)
    for entry in cache.iterdir():
        entry.write_bytes(b"not a pickle")
    files = parse_files([TAINT_PKG], cache_dir=cache)
    assert len(files) == 3  # corrupt entries are ignored, not fatal


def test_cache_key_tracks_source_content(tmp_path):
    cache = tmp_path / "astcache"
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n")
    parse_source_file(str(target), cache_dir=cache)
    before = len(list(cache.iterdir()))
    target.write_text("x = 2\n")
    parse_source_file(str(target), cache_dir=cache)
    assert len(list(cache.iterdir())) == before + 1  # new content, new key


def test_parallel_parse_matches_serial():
    serial = lint_project([TAINT_PKG], jobs=1, cache_dir=None)
    parallel = lint_project([TAINT_PKG], jobs=4, cache_dir=None)
    assert serial == parallel
    assert len(serial) == 4
