"""Unit tests for the page table and the Invalidatable PTE bit (§V-D)."""

import pytest

from repro.cpu.pagetable import (
    PAGE_SIZE,
    InvalidatePermissionError,
    PageTable,
)


class TestMapping:
    def test_map_range_covers_pages(self):
        pt = PageTable()
        pt.map_range(0, 3 * PAGE_SIZE)
        for addr in (0, PAGE_SIZE, 2 * PAGE_SIZE, 3 * PAGE_SIZE - 1):
            assert pt.entry(addr) is not None

    def test_unmapped_address_has_no_entry(self):
        pt = PageTable()
        pt.map_range(0, PAGE_SIZE)
        assert pt.entry(PAGE_SIZE) is None

    def test_partial_page_rounds_up(self):
        pt = PageTable()
        pt.map_range(100, 10)  # inside page 0
        assert pt.entry(0) is not None

    def test_unmap(self):
        pt = PageTable()
        pt.map_range(0, PAGE_SIZE)
        pt.unmap_range(0, PAGE_SIZE)
        assert pt.entry(0) is None

    def test_zero_bytes_maps_nothing(self):
        pt = PageTable()
        pt.map_range(0, 0)
        assert pt.entry(0) is None


class TestInvalidatableBit:
    def test_ordinary_pages_not_invalidatable(self):
        pt = PageTable()
        pt.map_range(0, PAGE_SIZE)
        assert not pt.is_invalidatable(0)
        with pytest.raises(InvalidatePermissionError):
            pt.check_invalidate(0)

    def test_allocated_buffers_invalidatable(self):
        pt = PageTable()
        pt.allocate_invalidatable(0, 2 * PAGE_SIZE)
        assert pt.is_invalidatable(0)
        assert pt.is_invalidatable(PAGE_SIZE + 5)
        pt.check_invalidate(0)  # must not raise

    def test_kernel_flushes_before_marking(self):
        """§V-D: the kernel flushes pages to DRAM before setting the bit,
        so a new owner can never observe stale data via invalidate."""
        flushed = []
        pt = PageTable()
        pt.allocate_invalidatable(0, 3 * PAGE_SIZE, flush=flushed.append)
        assert flushed == [0, PAGE_SIZE, 2 * PAGE_SIZE]

    def test_unmapped_address_not_invalidatable(self):
        pt = PageTable()
        with pytest.raises(InvalidatePermissionError):
            pt.check_invalidate(0x5000)

    def test_remap_clears_bit(self):
        pt = PageTable()
        pt.allocate_invalidatable(0, PAGE_SIZE)
        pt.map_range(0, PAGE_SIZE)  # remapped as ordinary memory
        assert not pt.is_invalidatable(0)
