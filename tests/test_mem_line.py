"""Unit + property tests for cacheline address helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.line import (
    LINE_SIZE,
    CacheLine,
    line_address,
    line_index,
    lines_spanning,
    num_lines,
)


class TestAddressHelpers:
    def test_line_address_aligns_down(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 64
        assert line_address(130) == 128

    def test_line_index(self):
        assert line_index(0) == 0
        assert line_index(64) == 1
        assert line_index(6400) == 100

    def test_mtu_frame_spans_24_lines(self):
        assert num_lines(1514) == 24

    def test_1024_byte_packet_spans_16_lines(self):
        assert num_lines(1024) == 16

    def test_lines_spanning_aligned(self):
        assert list(lines_spanning(0, 128)) == [0, 64]

    def test_lines_spanning_unaligned_start(self):
        assert list(lines_spanning(32, 64)) == [0, 64]

    def test_lines_spanning_zero_bytes(self):
        assert list(lines_spanning(100, 0)) == []

    def test_lines_spanning_single_byte(self):
        assert list(lines_spanning(65, 1)) == [64]

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=1, max_value=65536))
    def test_spanning_count_matches_num_lines_when_aligned(self, addr, nbytes):
        base = line_address(addr)
        assert len(list(lines_spanning(base, nbytes))) == num_lines(nbytes)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_line_address_idempotent(self, addr):
        assert line_address(line_address(addr)) == line_address(addr)


class TestCacheLine:
    def test_requires_aligned_address(self):
        with pytest.raises(ValueError):
            CacheLine(65)

    def test_defaults(self):
        line = CacheLine(128)
        assert not line.dirty
        assert line.origin == "cpu"
        assert line.owner == -1

    def test_io_origin(self):
        line = CacheLine(64, dirty=True, origin="io", owner=3)
        assert line.dirty and line.origin == "io" and line.owner == 3
