"""Tests for coroutine-style processes."""

import pytest

from repro.sim import Process, SimulationError, Simulator, spawn, units


class TestSpawn:
    def test_segments_run_at_yielded_delays(self):
        sim = Simulator()
        log = []

        def body():
            log.append(sim.now)
            yield 100
            log.append(sim.now)
            yield 50
            log.append(sim.now)

        spawn(sim, body())
        sim.run()
        assert log == [0, 100, 150]

    def test_start_delay(self):
        sim = Simulator()
        log = []

        def body():
            log.append(sim.now)
            if False:
                yield  # make it a generator

        spawn(sim, body(), start_delay=25)
        sim.run()
        assert log == [25]

    def test_finishes_cleanly(self):
        sim = Simulator()

        def body():
            yield 10

        process = spawn(sim, body())
        sim.run()
        assert process.finished

    def test_stop_prevents_resume(self):
        sim = Simulator()
        log = []

        def body():
            while True:
                log.append(sim.now)
                yield 10

        process = spawn(sim, body())
        sim.schedule_at(35, process.stop)
        sim.run(until=200)
        assert log == [0, 10, 20, 30]

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def body():
            yield -5

        spawn(sim, body())
        with pytest.raises(SimulationError):
            sim.run()

    def test_zero_delay_still_advances(self):
        """Yielding 0 reschedules at the minimum tick, never the same
        instant (prevents infinite same-time loops)."""
        sim = Simulator()
        log = []

        def body():
            for _ in range(3):
                log.append(sim.now)
                yield 0

        spawn(sim, body())
        sim.run(until=10)
        assert log == [0, 1, 2]

    def test_process_interleaves_with_events(self):
        sim = Simulator()
        log = []

        def body():
            log.append(("proc", sim.now))
            yield 100
            log.append(("proc", sim.now))

        spawn(sim, body())
        sim.schedule_at(50, lambda: log.append(("event", sim.now)))
        sim.run()
        assert log == [("proc", 0), ("event", 50), ("proc", 100)]
