"""Unit tests for derived metrics."""

import pytest

from repro.harness import metrics
from repro.mem.stats import StatsBundle
from repro.sim import units


class TestPercentile:
    def test_median_of_odd(self):
        assert metrics.percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert metrics.percentile([0, 10], 50) == 5

    def test_p0_p100(self):
        data = [5, 1, 9]
        assert metrics.percentile(data, 0) == 1
        assert metrics.percentile(data, 100) == 9

    def test_p99_of_uniform(self):
        data = list(range(1000))
        assert metrics.percentile(data, 99) == pytest.approx(989.01)

    def test_single_value(self):
        assert metrics.percentile([7.0], 99) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            metrics.percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            metrics.percentile([1], 150)


class TestWindowStats:
    def make_stats(self):
        s = StatsBundle()
        for t in (10, 20, 30):
            s.bump("mlc_writebacks", t)
        s.bump("llc_writebacks", 15)
        s.bump("dram_writes", 15)
        s.bump("dram_reads", 25)
        for t in (5, 10, 15, 20):
            s.bump("pcie_writes", t)
        return s

    def test_collect_window(self):
        w = metrics.window_stats(self.make_stats(), 0, 100)
        assert w.mlc_writebacks == 3
        assert w.llc_writebacks == 1
        assert w.dram_reads == 1
        assert w.dram_writes == 1
        assert w.pcie_writes == 4

    def test_window_bounds_respected(self):
        w = metrics.window_stats(self.make_stats(), 15, 25)
        assert w.mlc_writebacks == 1  # only t=20

    def test_normalized_to(self):
        s = self.make_stats()
        full = metrics.window_stats(s, 0, 100)
        norm = full.normalized_to(full)
        assert norm["mlc_writebacks"] == 1.0
        assert norm["dram_writes"] == 1.0

    def test_normalized_zero_baseline(self):
        s = StatsBundle()
        w = metrics.window_stats(s, 0, 100)
        base = metrics.window_stats(self.make_stats(), 0, 100)
        assert w.normalized_to(base)["mlc_writebacks"] == 0.0
        # 0-baseline, 0-measured -> 0.0, not inf.
        assert base.normalized_to(w)["mlc_writebacks"] == float("inf")


class TestRates:
    def test_rate_normalized_to_rx(self):
        s = StatsBundle()
        for t in range(10):
            s.bump("pcie_writes", t)
        for t in range(5):
            s.bump("mlc_writebacks", t)
        assert metrics.rate_normalized_to_rx(s, "mlc_writebacks", 0, 100) == 0.5

    def test_rate_normalized_no_rx(self):
        s = StatsBundle()
        assert metrics.rate_normalized_to_rx(s, "mlc_writebacks", 0, 100) == 0.0

    def test_dram_bandwidth(self):
        s = StatsBundle()
        # 1000 writes of 64 B in 1 us = 512 Gbps.
        for i in range(1000):
            s.bump("dram_writes", i * units.nanoseconds(1))
        bw = metrics.dram_bandwidth_gbps(s, "dram_writes", 0, units.microseconds(1))
        assert bw == pytest.approx(512.0, rel=0.01)

    def test_reduction_percent(self):
        assert metrics.reduction_percent(100.0, 25.0) == 75.0
        assert metrics.reduction_percent(0.0, 10.0) == 0.0


class TestBurstProcessingTime:
    def test_dma_start_to_last_completion(self):
        s = StatsBundle()
        s.bump("pcie_writes", 100)
        s.bump("pcie_writes", 200)
        assert metrics.burst_processing_time(s, [500, 900]) == 800

    def test_none_when_no_data(self):
        s = StatsBundle()
        assert metrics.burst_processing_time(s, []) is None
        s.bump("pcie_writes", 100)
        assert metrics.burst_processing_time(s, []) is None
