"""Unit tests for the queued MLC prefetcher (§V-C)."""

import pytest

from repro.core.prefetcher import MLCPrefetcher
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.sim import Simulator, units
from tests.memtxn import cpu_access, pcie_write


def make_prefetcher(queue_depth=32, service_time=units.nanoseconds(4)):
    sim = Simulator()
    h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
    pf = MLCPrefetcher(sim, h, 0, queue_depth=queue_depth, service_time=service_time)
    return sim, h, pf


class TestQueue:
    def test_hint_enqueues_and_drains(self):
        sim, h, pf = make_prefetcher()
        pcie_write(h, 0x1000, 0)
        assert pf.hint(0x1000)
        sim.run()
        assert 0x1000 in h.mlc[0]
        assert pf.prefetches_issued == 1
        assert pf.prefetches_useful == 1

    def test_full_queue_drops_hints(self):
        sim, h, pf = make_prefetcher(queue_depth=2)
        for i in range(5):
            pf.hint(0x1000 + i * 64)
        assert pf.hints_dropped == 3
        assert pf.hints_received == 5
        assert len(pf) == 2

    def test_default_queue_depth_is_32(self):
        sim = Simulator()
        h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
        pf = MLCPrefetcher(sim, h, 0)
        assert pf.queue_depth == 32

    def test_service_rate_paces_drains(self):
        sim, h, pf = make_prefetcher(service_time=units.nanoseconds(100))
        for i in range(3):
            pcie_write(h, 0x1000 + i * 64, 0)
            pf.hint(0x1000 + i * 64)
        sim.run(until=units.nanoseconds(150))
        assert pf.prefetches_issued == 1  # only one service interval elapsed
        sim.run(until=units.nanoseconds(350))
        assert pf.prefetches_issued == 3

    def test_useless_prefetch_counted(self):
        sim, h, pf = make_prefetcher()
        cpu_access(h, 0, 0x1000, False, 0)  # already in MLC
        pf.hint(0x1000)
        sim.run()
        assert pf.prefetches_issued == 1
        assert pf.prefetches_useful == 0

    def test_invalid_queue_depth(self):
        with pytest.raises(ValueError):
            make_prefetcher(queue_depth=0)

    def test_drain_restarts_after_idle(self):
        sim, h, pf = make_prefetcher()
        pcie_write(h, 0x1000, 0)
        pf.hint(0x1000)
        sim.run()
        pcie_write(h, 0x2000, 0)
        pf.hint(0x2000)
        sim.run()
        assert pf.prefetches_issued == 2
