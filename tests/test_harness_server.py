"""Tests for the simulated-server builder."""

import pytest

from repro.core.policies import ddio, idio, invalidate_only, static_idio
from repro.harness.server import ServerConfig, SimulatedServer
from repro.sim import units


class TestTopology:
    def test_default_matches_scaled_table1(self):
        """Table I (scaled per §III Obs. 4): geometry sanity checks."""
        server = SimulatedServer(ServerConfig())
        h = server.hierarchy
        assert h.config.num_cores == 2
        assert h.mlc[0].config.size_bytes == 1024 * 1024
        assert h.mlc[0].config.assoc == 8
        assert h.llc.config.size_bytes == 3 * 1024 * 1024
        assert h.llc.config.assoc == 12
        assert h.llc.ddio_ways == 2
        assert not h.llc.inclusive
        assert h.l1[0] is not None and h.l1[0].config.size_bytes == 64 * 1024

    def test_antagonist_adds_core_with_small_mlc(self):
        server = SimulatedServer(ServerConfig(antagonist=True))
        assert server.hierarchy.config.num_cores == 3
        assert server.hierarchy.mlc[2].config.size_bytes == 256 * 1024

    def test_queue_per_nf_core(self):
        server = SimulatedServer(ServerConfig(num_nf_cores=2))
        assert set(server.nic.queues) == {0, 1}
        assert server.nic.queue_for_core(1).core == 1

    def test_memory_regions_disjoint(self):
        server = SimulatedServer(ServerConfig())
        regions = []
        for queue in server.nic.queues.values():
            ring = queue.ring
            d0 = ring.descriptors[0]
            dn = ring.descriptors[-1]
            regions.append((d0.desc_addr, dn.desc_addr + 128))
            regions.append((d0.buffer_addr, dn.buffer_addr + 2048))
        regions.sort()
        for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
            assert e1 <= s2

    def test_buffers_marked_invalidatable(self):
        server = SimulatedServer(ServerConfig())
        for queue in server.nic.queues.values():
            assert server.page_table.is_invalidatable(queue.ring.descriptors[0].buffer_addr)

    def test_cat_mask_applied(self):
        server = SimulatedServer(ServerConfig(nf_cat_ways=1))
        mask = server.hierarchy.llc.core_way_mask(0)
        assert mask == [2]  # first non-DDIO way only

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            SimulatedServer(ServerConfig(app="webserver"))

    def test_double_start_rejected(self):
        server = SimulatedServer(ServerConfig())
        server.start()
        with pytest.raises(RuntimeError):
            server.start()


class TestPolicyWiring:
    def test_ddio_has_no_controller_or_classifier(self):
        server = SimulatedServer(ServerConfig(policy=ddio()))
        assert server.controller is None
        assert server.nic.classifier is None

    def test_invalidate_only_software_only(self):
        server = SimulatedServer(ServerConfig(policy=invalidate_only()))
        assert server.controller is None
        assert server.drivers[0].self_invalidate

    def test_idio_wires_controller_and_classifier(self):
        server = SimulatedServer(ServerConfig(policy=idio()))
        assert server.controller is not None
        assert server.nic.classifier is not None
        assert server.root_complex.steering_hook is not None
        assert server.controller.direct_dram_enabled

    def test_static_pins_status(self):
        server = SimulatedServer(ServerConfig(policy=static_idio()))
        assert server.controller.static_mlc
        assert server.controller.status_of(0) == "MLC"


class TestTrafficInjection:
    def test_bursty_defaults_to_ring_size(self):
        server = SimulatedServer(ServerConfig(ring_size=64))
        server.start()
        count = server.inject_bursty(100.0)
        assert count == 128  # ring size per NF core x 2 cores

    def test_steady_count_scales_with_duration(self):
        server = SimulatedServer(ServerConfig(ring_size=64))
        server.start()
        count = server.inject_steady(10.0, units.microseconds(123))
        assert count == 2 * 100  # 123 us / 1.2304 us per packet per core

    def test_run_until_drained_completes(self):
        server = SimulatedServer(ServerConfig(ring_size=32))
        server.start()
        server.inject_bursty(100.0, packets_per_burst=8)
        server.run_until_drained(units.milliseconds(2))
        assert server.all_packets_drained()
        assert len(server.completed_packets()) == 16

    def test_poisson_injection(self):
        server = SimulatedServer(ServerConfig(ring_size=64))
        server.start()
        count = server.inject_poisson(10.0, units.microseconds(200), seed=4)
        server.run_until_drained(units.milliseconds(2))
        assert count > 0
        assert len(server.completed_packets()) == count

    def test_imix_injection(self):
        server = SimulatedServer(ServerConfig(ring_size=64))
        server.start()
        count = server.inject_imix(2.0, units.microseconds(300), seed=4)
        server.run_until_drained(units.milliseconds(2))
        sizes = {p.size_bytes for p in server.completed_packets()}
        assert count > 0
        assert sizes <= {64, 594, 1518}

    def test_banked_dram_selectable(self):
        from repro.mem.dram import BankedDRAM

        server = SimulatedServer(ServerConfig(ring_size=32, dram_model="banked"))
        assert isinstance(server.hierarchy.dram, BankedDRAM)
        server.start()
        server.inject_bursty(100.0, packets_per_burst=8)
        server.run_until_drained(units.milliseconds(2))
        assert len(server.completed_packets()) == 16
