"""Tests for the idio-repro command-line interface."""

import json

import pytest

from repro.cli import FIGURE_COMMANDS, build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["run", "--policy", "idio"],
            ["compare", "--policies", "ddio,idio"],
            ["figure", "fig9"],
            ["trace", "--out", "t.json"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    @pytest.mark.parametrize("command", [
        ["compare", "--policies", "ddio"],
        ["figure", "fig9"],
        ["validate"],
    ])
    @pytest.mark.parametrize("jobs", ["0", "-1", "-4", "zero"])
    def test_invalid_jobs_rejected(self, command, jobs, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(command + ["--jobs", jobs])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "positive integer" in err or "expected an integer" in err

    def test_valid_jobs_accepted(self):
        args = build_parser().parse_args(["figure", "fig9", "--jobs", "4"])
        assert args.jobs == 4

    def test_figure_choices_cover_all_paper_figures(self):
        for fig in ("fig4", "fig5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"):
            assert fig in FIGURE_COMMANDS

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "idio" in out and "touchdrop" in out and "fig9" in out

    def test_run_small(self, capsys):
        rc = main(["run", "--policy", "ddio", "--ring", "32", "--rate", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "MLC WB" in out

    def test_run_with_timelines(self, capsys):
        rc = main(
            ["run", "--policy", "ddio", "--ring", "32", "--rate", "50", "--timelines"]
        )
        assert rc == 0
        assert "pcie_writes" in capsys.readouterr().out

    def test_run_csv_stdout(self, capsys):
        rc = main(["run", "--policy", "ddio", "--ring", "32", "--csv", "-"])
        assert rc == 0
        assert "time_us," in capsys.readouterr().out

    def test_run_csv_file(self, tmp_path, capsys):
        path = tmp_path / "t.csv"
        rc = main(["run", "--policy", "ddio", "--ring", "32", "--csv", str(path)])
        assert rc == 0
        assert path.exists()

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--policies", "ddio,invalidate", "--ring", "32", "--rate", "50"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ddio" in out and "invalidate" in out

    def test_compare_empty_policies(self, capsys):
        assert main(["compare", "--policies", ","]) == 2

    def test_figure_quick_args_cover_every_figure(self):
        from repro.cli import FIGURE_QUICK_ARGS

        assert set(FIGURE_QUICK_ARGS) == set(FIGURE_COMMANDS)

    def test_figure_quick_run(self, capsys, tmp_path):
        out = tmp_path / "fig13.txt"
        rc = main(["figure", "fig13", "--quick", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "Fig. 13" in out.read_text()

    def test_trace_export(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        rc = main(["trace", "--out", str(path), "--ring", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        doc = json.loads(path.read_text())
        cats = doc["otherData"]["category_counts"]
        for category in (
            "ddio-fill",
            "mlc-steer-fill",
            "direct-dram-write",
            "invalidate-drop",
        ):
            assert cats.get(category, 0) > 0, category

    def test_trace_invalid_max_events_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--max-events", "0"])

    def test_steady_traffic_run(self, capsys):
        rc = main(
            [
                "run",
                "--policy", "ddio",
                "--ring", "32",
                "--traffic", "steady",
                "--rate", "5",
                "--duration-us", "100",
            ]
        )
        assert rc == 0
