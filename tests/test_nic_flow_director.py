"""Unit tests for Flow Director (EP + ATR modes)."""

import pytest

from repro.net.flow import make_flow, make_flows
from repro.nic.flow_director import FlowDirector


class TestEPMode:
    def test_installed_rule_steers(self):
        fd = FlowDirector()
        flow = make_flow(0)
        fd.install_rule(flow, 3)
        assert fd.lookup(flow) == 3

    def test_unknown_flow_uses_default(self):
        fd = FlowDirector(default_core=7)
        assert fd.lookup(make_flow(0)) == 7

    def test_remove_rule(self):
        fd = FlowDirector()
        flow = make_flow(0)
        fd.install_rule(flow, 3)
        fd.remove_rule(flow)
        assert fd.lookup(flow) == fd.default_core

    def test_invalid_core_rejected(self):
        with pytest.raises(ValueError):
            FlowDirector().install_rule(make_flow(0), -1)

    def test_ep_beats_atr(self):
        fd = FlowDirector()
        flow = make_flow(0)
        fd.learn(flow, 1)
        fd.install_rule(flow, 2)
        assert fd.lookup(flow) == 2


class TestATRMode:
    def test_learn_then_lookup(self):
        fd = FlowDirector()
        flow = make_flow(5)
        fd.learn(flow, 4)
        assert fd.lookup(flow) == 4

    def test_hash_collision_detected(self):
        fd = FlowDirector(table_bits=1)  # 2-entry table forces collisions
        flows = make_flows(8)
        for i, flow in enumerate(flows):
            fd.learn(flow, i)
        assert fd.collisions > 0

    def test_collided_flow_falls_back_to_default(self):
        fd = FlowDirector(table_bits=1, default_core=0)
        flows = make_flows(8)
        for i, flow in enumerate(flows):
            fd.learn(flow, i)
        # Every lookup returns either the learned core or the default.
        for i, flow in enumerate(flows):
            assert fd.lookup(flow) in (i, 0)

    def test_table_size(self):
        assert FlowDirector(table_bits=13).table_size == 8192

    def test_invalid_table_bits(self):
        with pytest.raises(ValueError):
            FlowDirector(table_bits=0)
