"""Tenant-tier tests: flow tagging, RNG streams, IOCA apportionment,
the way-quota invariant, attribution determinism, and cache keying.

The properties under test are the ones the isolation matrix rests on:
per-tenant flows round-trip through the lane encoding, every tenant
draws from its own seeded stream, the controller never mints or loses a
way, a serial and a pool-sharded sweep fingerprint byte-identically,
and a tenant-config change can never replay a stale cache entry.
"""

import dataclasses

import pytest

import repro
from repro.analysis.sanitizer import InvariantViolation
from repro.cache.store import ResultCache
from repro.core.ioca import IOCAController
from repro.net.flow import FLOW_LANE_SPAN, flow_tenant, make_tenant_flow
from repro.tenants.config import TenantConfig, TenantSet, tenant_rng
from repro.tenants.scenarios import (
    TENANT_DDIO_WAYS,
    TENANT_MIXES,
    tenant_experiment,
    tenant_mix,
    tenant_server,
)
from repro.tenants.sweep import run_tenants


def _mix(tenants=2, intensity=1.0, seed=1234):
    return tenant_mix("noisy-neighbor", tenants=tenants, intensity=intensity, seed=seed)


class TestTenantFlows:
    @pytest.mark.parametrize("tenant", [0, 1, 7, 15])
    def test_round_trip(self, tenant):
        for slot in (0, 1, FLOW_LANE_SPAN - 1):
            assert flow_tenant(make_tenant_flow(tenant, slot)) == tenant

    def test_slot_out_of_lane_raises(self):
        with pytest.raises(ValueError):
            make_tenant_flow(0, FLOW_LANE_SPAN)

    def test_tenants_never_share_a_flow(self):
        flows = {make_tenant_flow(t, s) for t in range(4) for s in range(8)}
        assert len(flows) == 4 * 8


class TestTenantRng:
    def test_same_seed_same_tenant_same_stream(self):
        a = [tenant_rng(99, 3).random() for _ in range(4)]
        b = [tenant_rng(99, 3).random() for _ in range(4)]
        assert a == b

    def test_tenants_get_distinct_streams(self):
        draws = {tuple(tenant_rng(99, t).random() for _ in range(3)) for t in range(8)}
        assert len(draws) == 8

    def test_stream_is_independent_of_neighbor_count(self):
        """Tenant 0's draws must not depend on how many tenants exist."""
        alone = tenant_rng(7, 0).random()
        crowded = tenant_rng(7, 0).random()  # nothing else consulted
        assert alone == crowded


class TestTenantMixes:
    def test_unknown_mix_raises(self):
        with pytest.raises(ValueError, match="unknown tenant mix"):
            tenant_mix("quiet-street")

    @pytest.mark.parametrize("name", TENANT_MIXES)
    def test_every_mix_builds(self, name):
        ts = tenant_mix(name, tenants=3)
        assert len(ts.tenants) == 3

    def test_intensity_scales_aggressors_not_victims(self):
        lo, hi = _mix(intensity=0.5), _mix(intensity=2.0)
        assert lo.tenants[0] == hi.tenants[0]  # victim untouched
        assert hi.tenants[1].rate_gbps > lo.tenants[1].rate_gbps

    def test_noisy_neighbor_roles(self):
        ts = _mix(tenants=3)
        assert ts.victims() == (0,)
        assert ts.aggressors() == (1, 2)
        assert all(ts.tenants[i].antagonist for i in ts.aggressors())


class TestIOCAApportionment:
    def _server(self, tenants=2, policy=None):
        ts = _mix(tenants=tenants)
        return repro.build_server(tenant_server(ts, policy or repro.ioca())), ts

    def test_initial_allocation_conserves_the_budget(self):
        server, ts = self._server(tenants=3)
        controller = server.ioca_controller
        assert controller is not None
        alloc = controller.current_allocation()
        assert sum(alloc) == TENANT_DDIO_WAYS
        for count, tenant in zip(alloc, ts):
            assert count >= tenant.llc_way_quota

    def test_every_reallocation_conserves_the_budget(self):
        server, _ = self._server(tenants=2)
        end = server.inject_tenants(duration=repro.units.microseconds(80))
        server.run_until_drained(end + repro.units.microseconds(100))
        server.stop()
        controller = server.ioca_controller
        assert controller.reallocations, "controller never applied a mask"
        for alloc in controller.reallocations:
            assert sum(alloc) == TENANT_DDIO_WAYS

    def test_largest_remainder_is_deterministic_with_id_tiebreak(self):
        server, _ = self._server(tenants=3)
        controller = server.ioca_controller
        # Equal weights, 1 spare way after 3 quota floors: tenant 0 wins.
        assert controller._apportion([1.0, 1.0, 1.0]) == [2, 1, 1]
        # All the demand on tenant 2: the spare way follows it.
        assert controller._apportion([0.0, 0.0, 9.0]) == [1, 1, 2]

    def test_quota_overflow_is_rejected(self):
        ts = TenantSet(
            tenants=tuple(
                TenantConfig(tenant_id=i, name=f"t{i}", llc_way_quota=3)
                for i in range(2)
            )
        )
        server = repro.build_server(tenant_server(ts, repro.idio()))
        with pytest.raises(ValueError, match="way quotas"):
            IOCAController(server.sim, server.hierarchy, ts)


class TestWayQuotaInvariant:
    """Checked mode must catch a controller that mints or loses ways."""

    def _checked_server(self):
        ts = _mix(tenants=2)
        return repro.build_server(tenant_server(ts, repro.ioca(), checked=True))

    def test_clean_allocation_passes(self):
        server = self._checked_server()
        assert server.sanitizer is not None
        server.sanitizer.check_all()

    def test_overlapping_masks_are_caught(self):
        # set_tenant_io_ways validates its own arguments, so a buggy
        # controller is modeled by corrupting the mask table directly.
        server = self._checked_server()
        llc = server.hierarchy.llc
        llc._tenant_io_masks[0] = [0, 1]
        llc._tenant_io_masks[1] = [1, 2]  # way 1 claimed twice
        with pytest.raises(InvariantViolation, match="tenant-way-quota"):
            server.sanitizer.check_all()

    def test_way_outside_the_partition_is_caught(self):
        server = self._checked_server()
        llc = server.hierarchy.llc
        llc._tenant_io_masks[0] = [llc.ddio_ways]  # first CPU way
        with pytest.raises(InvariantViolation, match="outside"):
            server.sanitizer.check_all()

    def test_starved_quota_floor_is_caught(self):
        server = self._checked_server()
        llc = server.hierarchy.llc
        llc._tenant_io_masks[0] = []  # below tenant 0's floor of 1
        with pytest.raises(InvariantViolation, match="quota floor"):
            server.sanitizer.check_all()


class TestAttributionDeterminism:
    def test_serial_and_pool_sweeps_fingerprint_identically(self):
        kwargs = dict(
            policies=[repro.ddio(), repro.ioca()],
            intensities=(0.5, 1.5),
            duration_us=60.0,
            seed=7,
        )
        serial = run_tenants(jobs=1, **kwargs)
        pooled = run_tenants(jobs=2, **kwargs)
        assert serial.exit_code == 0 and pooled.exit_code == 0
        assert serial.fingerprint == pooled.fingerprint
        # The fingerprint covers tenant_stats (via each cell's summary
        # digest), so attribution itself is what just matched.
        for cell in serial.cells:
            assert set(cell.tenant_stats) == {0, 1}
            assert cell.stat(0, "completed") > 0

    def test_tenant_stats_fold_into_the_summary_fingerprint(self):
        exp = tenant_experiment(_mix(), repro.ddio(), "fp", duration_us=60.0)
        summary = repro.run_experiment(exp).summary()
        from repro.analysis.determinism import fingerprint_digest

        base = fingerprint_digest(summary)
        summary.tenant_stats[0]["completed"] += 1
        assert fingerprint_digest(summary) != base


class TestTenantCacheKeying:
    def _experiment(self, quota=1):
        ts = _mix()
        victim = dataclasses.replace(ts.tenants[0], llc_way_quota=quota)
        ts = dataclasses.replace(ts, tenants=(victim,) + ts.tenants[1:])
        return tenant_experiment(ts, repro.idio(), "cache-key", duration_us=60.0)

    def test_quota_change_moves_the_digest(self, tmp_path):
        cache = ResultCache(tmp_path)
        d1 = cache.digest_for(self._experiment(quota=1))
        d2 = cache.digest_for(self._experiment(quota=2))
        assert d1 is not None and d2 is not None and d1 != d2

    def test_cache_replay_is_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        kwargs = dict(
            policies=[repro.idio()],
            intensities=(1.0,),
            duration_us=60.0,
            seed=11,
        )
        cold = run_tenants(cache=cache, **kwargs)
        warm = run_tenants(cache=cache, **kwargs)
        assert not cold.cells[0].cached
        assert warm.cells[0].cached
        assert warm.fingerprint == cold.fingerprint
