"""Property tests: the optimized LRU victim scan matches the reference.

``LRUPolicy`` replaced the original dict + ``min()`` formulation with a
flat-list comparison loop (the victim scan is the hottest call in every
cache fill).  ``ReferenceLRUPolicy`` preserves the original semantics —
including the tie-break toward the *first* eligible way among
never-touched ways — so hypothesis drives both with identical random
traces (accesses, evictions, and way-mask-restricted fills) and requires
identical victim choices throughout.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mem.cache import CacheConfig, SetAssociativeCache
from repro.mem.line import LINE_SIZE, CacheLine
from repro.mem.replacement import LRUPolicy, ReferenceLRUPolicy


def geometry():
    return st.tuples(
        st.sampled_from([1, 2, 4, 8]),   # num_sets
        st.sampled_from([2, 4, 8, 12]),  # assoc
    )


@st.composite
def policy_traces(draw):
    """A (geometry, ops) pair; ops mix accesses, evictions, and fills."""
    num_sets, assoc = draw(geometry())
    ways = list(range(assoc))
    op = st.one_of(
        st.tuples(
            st.just("access"),
            st.integers(0, num_sets - 1),
            st.sampled_from(ways),
        ),
        st.tuples(
            st.just("evict"),
            st.integers(0, num_sets - 1),
            st.sampled_from(ways),
        ),
        st.tuples(
            st.just("fill"),
            st.integers(0, num_sets - 1),
            # Way-mask-restricted fill: victim among a non-empty subset,
            # mirroring DDIO-way and CAT-mask restricted inserts.
            st.lists(st.sampled_from(ways), min_size=1, max_size=assoc, unique=True),
        ),
    )
    return num_sets, assoc, draw(st.lists(op, min_size=1, max_size=200))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(policy_traces())
def test_lru_matches_reference_on_random_traces(trace):
    num_sets, assoc, ops = trace
    fast = LRUPolicy(num_sets, assoc)
    ref = ReferenceLRUPolicy(num_sets, assoc)
    for op in ops:
        if op[0] == "access":
            _, set_idx, way = op
            fast.on_access(set_idx, way)
            ref.on_access(set_idx, way)
        elif op[0] == "evict":
            _, set_idx, way = op
            fast.on_evict(set_idx, way)
            ref.on_evict(set_idx, way)
        else:
            _, set_idx, eligible = op
            chosen = fast.victim(set_idx, eligible)
            assert chosen == ref.victim(set_idx, eligible)
            # A fill evicts the victim and touches the new occupant.
            for policy in (fast, ref):
                policy.on_evict(set_idx, chosen)
                policy.on_access(set_idx, chosen)


@st.composite
def cache_traces(draw):
    """Random line-address insert/lookup traces, with optional way masks."""
    sets = draw(st.sampled_from([2, 4]))
    assoc = draw(st.sampled_from([4, 8]))
    # Addresses covering ~4x the cache capacity force evictions.
    addr = st.integers(0, 4 * sets * assoc - 1).map(lambda i: i * LINE_SIZE)
    mask = st.one_of(
        st.none(),
        st.lists(
            st.integers(0, assoc - 1), min_size=1, max_size=assoc, unique=True
        ),
    )
    op = st.one_of(
        st.tuples(st.just("insert"), addr, mask),
        st.tuples(st.just("lookup"), addr, st.none()),
    )
    return sets, assoc, draw(st.lists(op, min_size=1, max_size=150))


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cache_traces())
def test_cache_evictions_identical_under_lru_and_reference(trace):
    sets, assoc, ops = trace

    def build(replacement):
        return SetAssociativeCache(
            CacheConfig(
                name=replacement,
                size_bytes=sets * assoc * LINE_SIZE,
                assoc=assoc,
                latency=1,
                replacement=replacement,
            )
        )

    fast, ref = build("lru"), build("lru-ref")
    for kind, addr, mask in ops:
        if kind == "insert":
            ev_fast = fast.insert(CacheLine(addr, dirty=True), way_mask=mask)
            ev_ref = ref.insert(CacheLine(addr, dirty=True), way_mask=mask)
            assert (ev_fast.addr if ev_fast else None) == (
                ev_ref.addr if ev_ref else None
            )
        else:
            hit_fast = fast.lookup(addr)
            hit_ref = ref.lookup(addr)
            assert (hit_fast is None) == (hit_ref is None)
