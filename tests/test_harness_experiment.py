"""Integration tests for the experiment runner (small configurations)."""

import pytest

from repro.core.policies import ddio, idio
from repro.harness.experiment import (
    Experiment,
    ExperimentResult,
    ExperimentSummary,
    run_experiment,
    run_policy_comparison,
)
from repro.harness.server import ServerConfig
from repro.sim import units


def small_experiment(**kwargs):
    defaults = dict(
        name="t",
        server=ServerConfig(app="touchdrop", ring_size=64),
        traffic="bursty",
        burst_rate_gbps=100.0,
    )
    defaults.update(kwargs)
    return Experiment(**defaults)


class TestRunExperiment:
    def test_packet_conservation(self):
        result = run_experiment(small_experiment())
        assert result.offered_packets == 128
        assert result.rx_packets + result.rx_drops == result.offered_packets
        assert result.completed == result.rx_packets

    def test_dma_line_conservation(self):
        """Every accepted packet's lines appear as PCIe writes (plus the
        2-line descriptor writebacks)."""
        result = run_experiment(small_experiment())
        expected = result.rx_packets * (24 + 2)
        assert result.window.pcie_writes == expected

    def test_latencies_populated(self):
        result = run_experiment(small_experiment())
        assert len(result.latencies_ns) == result.completed
        assert result.p50_ns is not None and result.p99_ns is not None
        assert result.p50_ns <= result.p99_ns

    def test_burst_processing_time_positive(self):
        result = run_experiment(small_experiment())
        assert result.burst_processing_time > 0

    def test_timeline_has_bins(self):
        result = run_experiment(small_experiment())
        series = result.timeline("pcie_writes")
        assert len(series) > 1
        assert sum(v for _, v in series) > 0

    def test_steady_traffic_mode(self):
        result = run_experiment(
            small_experiment(
                traffic="steady",
                steady_rate_gbps_per_nf=10.0,
                steady_duration=units.microseconds(100),
            )
        )
        assert result.rx_packets > 0

    def test_unknown_traffic_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(small_experiment(traffic="random"))

    def test_with_policy_swaps_policy(self):
        exp = small_experiment().with_policy(idio())
        assert exp.server.policy.name == "idio"
        assert small_experiment().server.policy.name == "ddio"

    def test_decisions_exposed_for_idio(self):
        result = run_experiment(small_experiment().with_policy(idio()))
        assert sum(result.decisions.values()) > 0

    def test_normalized_to_baseline(self):
        base = run_experiment(small_experiment())
        ours = run_experiment(small_experiment().with_policy(idio()))
        norm = ours.normalized_to(base)
        assert "exe_time" in norm
        assert norm["exe_time"] > 0

    def test_normalized_to_zero_baseline_is_inf_not_error(self):
        """A degenerate baseline (0-tick burst) must not raise."""
        import dataclasses

        base = run_experiment(small_experiment())
        ours = run_experiment(small_experiment().with_policy(idio()))
        base_summary = base.summary()
        ours_summary = ours.summary()
        zero = dataclasses.replace(base_summary, burst_processing_time=0)
        assert ours_summary.normalized_to(zero)["exe_time"] == float("inf")
        both_zero = dataclasses.replace(ours_summary, burst_processing_time=0)
        assert both_zero.normalized_to(zero)["exe_time"] == 0.0
        # None on either side means the metric is simply absent.
        absent = dataclasses.replace(base_summary, burst_processing_time=None)
        assert "exe_time" not in ours_summary.normalized_to(absent)
        # Same guard on the result-level (live-server) variant.
        base.burst_processing_time = 0
        assert ours.normalized_to(base)["exe_time"] == float("inf")


class TestPolicyComparison:
    def test_runs_each_policy(self):
        results = run_policy_comparison(small_experiment(), [ddio(), idio()])
        assert set(results) == {"ddio", "idio"}
        assert all(isinstance(r, ExperimentSummary) for r in results.values())
