"""tools/analyze.py driver tests: exit aggregation and --require.

The driver's one job is an honest exit code: every stage runs, any
failing (or required-but-missing) stage fails the whole battery, and a
later green stage can never wash out an earlier red one.
"""

import pytest

from tools import analyze


def _stub_tools(monkeypatch, codes):
    """Install stub stages returning the given codes; record run order."""
    ran = []

    def stage(name, code):
        def run(args):
            ran.append(name)
            return code
        return run

    monkeypatch.setattr(
        analyze, "TOOLS", {name: stage(name, code) for name, code in codes.items()}
    )
    return ran


def test_all_green_exits_zero(monkeypatch, capsys):
    ran = _stub_tools(monkeypatch, {"a": 0, "b": 0})
    assert analyze.main([]) == 0
    assert ran == ["a", "b"]
    assert "analyze: clean" in capsys.readouterr().out


def test_early_failure_still_runs_later_stages(monkeypatch, capsys):
    ran = _stub_tools(monkeypatch, {"a": 1, "b": 0, "c": 2})
    assert analyze.main([]) == 1
    assert ran == ["a", "b", "c"]  # no short-circuit: full report every run
    assert "analyze: FAIL (a, c)" in capsys.readouterr().out


def test_skipped_stage_is_not_a_failure(monkeypatch):
    _stub_tools(monkeypatch, {"a": None, "b": 0})
    assert analyze.main([]) == 0


def test_only_runs_a_single_stage(monkeypatch):
    ran = _stub_tools(monkeypatch, {"simlint": 0, "ruff": 1, "mypy": 1})
    assert analyze.main(["--only", "simlint"]) == 0
    assert ran == ["simlint"]


def test_require_unknown_tool_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        analyze.main(["--require", "clippy"])
    assert exc.value.code == 2


def test_require_missing_tool_fails(monkeypatch, capsys):
    monkeypatch.setattr(analyze.shutil, "which", lambda name: None)
    status = analyze.run_ruff(
        analyze.argparse.Namespace(require={"ruff"})
    )
    assert status == 1
    assert "REQUIRED but not installed" in capsys.readouterr().out


def test_missing_tool_without_require_skips(monkeypatch, capsys):
    monkeypatch.setattr(analyze.shutil, "which", lambda name: None)
    status = analyze.run_mypy(analyze.argparse.Namespace(require=set()))
    assert status is None
    assert "skipped" in capsys.readouterr().out


def test_real_simlint_stage_is_green(capsys):
    """End to end through the real simlint battery over src/repro."""
    assert analyze.main(["--only", "simlint", "--jobs", "1"]) == 0
    assert "analyze: clean" in capsys.readouterr().out
