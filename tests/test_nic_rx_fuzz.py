"""Property fuzz of the NIC RX path: random arrival patterns, fixed laws.

Hypothesis generates irregular arrival schedules (bursts, gaps, mixed
sizes); regardless of the pattern, the NIC/driver pipeline must conserve
packets, never corrupt ring state, and deliver every accepted packet
exactly once.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import ddio
from repro.harness.server import ServerConfig, SimulatedServer
from repro.net.packet import Packet
from repro.sim import units


arrival_patterns = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),  # gap to next arrival (ns)
        st.sampled_from([64, 256, 1024, 1514]),  # packet size
    ),
    min_size=1,
    max_size=120,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(arrival_patterns)
def test_rx_pipeline_laws_under_fuzzed_arrivals(pattern):
    server = SimulatedServer(
        ServerConfig(policy=ddio(), app="touchdrop", ring_size=16)
    )
    server.start()

    flow = server.generators[0].flow
    t = units.microseconds(1)
    for gap_ns, size in pattern:
        t += units.nanoseconds(gap_ns)
        server.sim.schedule_at(
            t,
            lambda s=size, tt=t: server.nic.receive(
                Packet(size_bytes=s, flow=flow, arrival_time=tt)
            ),
        )
    server.run_until_drained(t + units.milliseconds(5))

    accepted = server.total_rx
    dropped = server.total_drops
    # Law 1: every arrival either accepted or dropped.
    assert accepted + dropped == len(pattern)
    # Law 2: every accepted packet completes exactly once.
    completed = server.completed_packets()
    assert len(completed) == accepted
    assert len({p.packet_id for p in completed}) == accepted
    # Law 3: the ring ends empty and consistent.
    queue = server.nic.queue_for_core(0)
    assert queue.ring.occupancy() == 0
    assert queue.ring.free_slots() == queue.ring.size
    # Law 4: latencies are ordered sanely (completion after arrival).
    for p in completed:
        assert p.completion_time > p.arrival_time
