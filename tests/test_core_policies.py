"""Unit tests for the five placement policy configurations."""

import pytest

from repro.core.policies import (
    PREFETCH_DYNAMIC,
    PREFETCH_OFF,
    PREFETCH_STATIC,
    all_policies,
    ddio,
    idio,
    invalidate_only,
    policy_by_name,
    prefetch_only,
    static_idio,
    PolicyConfig,
)


class TestPolicyTable:
    """The Fig. 9 configuration matrix."""

    def test_ddio_is_all_off(self):
        p = ddio()
        assert not p.self_invalidate
        assert p.prefetch_mode == PREFETCH_OFF
        assert not p.direct_dram
        assert not p.needs_controller
        assert not p.needs_classifier

    def test_invalidate_only(self):
        p = invalidate_only()
        assert p.self_invalidate
        assert p.prefetch_mode == PREFETCH_OFF
        assert not p.needs_controller  # software-only mechanism

    def test_prefetch_only(self):
        p = prefetch_only()
        assert not p.self_invalidate
        assert p.prefetch_mode == PREFETCH_DYNAMIC
        assert p.needs_controller and p.needs_classifier

    def test_static(self):
        p = static_idio()
        assert p.self_invalidate
        assert p.prefetch_mode == PREFETCH_STATIC

    def test_idio_enables_everything(self):
        p = idio()
        assert p.self_invalidate
        assert p.prefetch_mode == PREFETCH_DYNAMIC
        assert p.direct_dram

    def test_all_policies_complete(self):
        assert set(all_policies()) == {"ddio", "invalidate", "prefetch", "static", "idio"}

    def test_policy_by_name(self):
        assert policy_by_name("idio").name == "idio"
        with pytest.raises(ValueError):
            policy_by_name("bogus")

    def test_invalid_prefetch_mode(self):
        with pytest.raises(ValueError):
            PolicyConfig(name="x", prefetch_mode="sometimes")


class TestSweepHelpers:
    def test_with_threshold(self):
        p = idio().with_threshold(25.0)
        assert p.idio.mlc_threshold_mtps == 25.0
        assert p.name == "idio"
        assert idio().idio.mlc_threshold_mtps == 50.0  # original unchanged

    def test_with_burst_threshold(self):
        p = idio().with_burst_threshold(5.0)
        assert p.idio.rx_burst_threshold_gbps == 5.0
