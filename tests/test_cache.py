"""Result-cache tests: key derivation, store semantics, runner integration.

The acceptance bar (see docs/caching.md): a cache hit must return a
summary whose determinism fingerprint is **byte-identical** to a cold
recompute, any config/seed/fault-plan/version change must miss, corrupt
entries must be detected and evicted (never replayed), concurrent
writers of one key must leave one valid entry, and a warm-cache sweep
must beat the cold run by at least an order of magnitude.
"""

import pickle
import threading
import time
from dataclasses import replace

import pytest

from repro.analysis.determinism import fingerprint_digest
from repro.cache import (
    ResultCache,
    cache_session,
    canonical,
    config_digest,
    get_default_cache,
    is_cacheable,
    resolve_cache,
    set_default_cache,
    uncacheable_reason,
)
from repro.cache.store import CacheEntryError, _atomic_write_bytes
from repro.core.policies import ddio, idio
from repro.faults import FaultPlan, FaultSpec, standard_plan
from repro.harness.experiment import Experiment
from repro.harness.runner import (
    run_experiment_summary,
    run_experiments,
    run_sweep,
    shutdown_pool,
)
from repro.harness.server import ServerConfig
from repro.obs.events import CacheHitEvent, CacheMissEvent, CacheStoreEvent
from repro.rack import RackConfig, SimulatedRack


def tiny_experiment(name="cache-exp", **overrides):
    server_overrides = overrides.pop("server_overrides", {})
    server = ServerConfig(
        app="touchdrop", ring_size=128, **server_overrides
    )
    defaults = dict(
        name=name,
        server=server,
        traffic="bursty",
        burst_rate_gbps=25.0,
        num_bursts=1,
    )
    defaults.update(overrides)
    return Experiment(**defaults)


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    """Tests control the default cache explicitly; never inherit one."""
    previous = set_default_cache(None)
    yield
    set_default_cache(previous)


class TestCanonical:
    def test_scalars_pass_through(self):
        assert canonical(3) == 3
        assert canonical("x") == "x"
        assert canonical(None) is None

    def test_dict_order_is_canonicalized(self):
        assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})

    def test_unknown_object_raises(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_experiment_is_canonicalizable(self):
        canonical(tiny_experiment())  # must not raise


class TestConfigDigest:
    def test_equal_configs_equal_digests(self):
        assert config_digest(tiny_experiment()) == config_digest(
            tiny_experiment()
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda e: replace(e, traffic_seed=e.traffic_seed + 1),
            lambda e: replace(e, burst_rate_gbps=e.burst_rate_gbps + 1.0),
            lambda e: replace(e, traffic="steady"),
            lambda e: replace(e, server=replace(e.server, ring_size=256)),
            lambda e: replace(e, server=replace(e.server, app="l2fwd")),
            lambda e: e.with_policy(idio()),
            lambda e: replace(
                e,
                server=replace(
                    e.server, fault_plan=standard_plan("nic", seed=7)
                ),
            ),
        ],
        ids=[
            "seed", "rate", "traffic-kind", "ring", "workload", "policy",
            "fault-plan",
        ],
    )
    def test_any_config_change_moves_the_digest(self, mutate):
        base = tiny_experiment()
        assert config_digest(base) != config_digest(mutate(base))

    def test_version_bump_moves_the_digest(self):
        exp = tiny_experiment()
        assert config_digest(exp, version="0.4.0") != config_digest(
            exp, version="0.4.1"
        )

    def test_harness_faults_are_uncacheable(self):
        plan = FaultPlan(specs=(FaultSpec("harness.crash",),))
        exp = tiny_experiment(server_overrides={"fault_plan": plan})
        assert not is_cacheable(exp)
        assert "harness" in uncacheable_reason(exp)
        assert is_cacheable(tiny_experiment())


class TestResolveCache:
    def test_false_always_disables(self, tmp_path):
        with cache_session(tmp_path):
            assert resolve_cache(False) is None

    def test_none_falls_through_to_default(self, tmp_path):
        assert resolve_cache(None) is None  # no default installed
        with cache_session(tmp_path) as cache:
            assert resolve_cache(None) is cache
            assert get_default_cache() is cache
        assert get_default_cache() is None

    def test_instance_used_as_is(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache


class TestStoreRoundTrip:
    def test_hit_is_byte_identical_to_cold_recompute(self, tmp_path):
        cache = ResultCache(tmp_path)
        exp = tiny_experiment()
        assert cache.get(exp) is None  # cold: absent
        summary = run_experiment_summary(exp)
        digest = cache.put(exp, summary)
        assert digest == cache.digest_for(exp)
        hit = cache.get(exp)
        cold = run_experiment_summary(exp)  # independent recompute
        assert fingerprint_digest(hit) == fingerprint_digest(cold)
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_events_published_on_bus(self, tmp_path):
        cache = ResultCache(tmp_path)
        seen = []
        for etype in (CacheHitEvent, CacheMissEvent, CacheStoreEvent):
            cache.bus.subscribe(etype, seen.append)
        exp = tiny_experiment()
        cache.get(exp)
        cache.put(exp, run_experiment_summary(exp))
        cache.get(exp)
        kinds = [type(e).__name__ for e in seen]
        assert kinds == ["CacheMissEvent", "CacheStoreEvent", "CacheHitEvent"]
        assert seen[0].reason == "absent"
        assert seen[1].num_bytes > 0
        assert seen[2].digest == cache.digest_for(exp)

    def test_uncacheable_put_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = FaultPlan(specs=(FaultSpec("harness.crash",),))
        exp = tiny_experiment(server_overrides={"fault_plan": plan})
        clean = tiny_experiment()
        assert cache.put(exp, run_experiment_summary(clean)) is None
        assert cache.entry_paths() == []
        assert cache.get(exp) is None  # forced miss, no file ever

    def test_version_change_invalidates(self, tmp_path):
        exp = tiny_experiment()
        summary = run_experiment_summary(exp)
        ResultCache(tmp_path, version="1.0").put(exp, summary)
        assert ResultCache(tmp_path, version="1.0").get(exp) is not None
        assert ResultCache(tmp_path, version="2.0").get(exp) is None

    def test_corrupt_entry_is_evicted_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        exp = tiny_experiment()
        digest = cache.put(exp, run_experiment_summary(exp))
        path = cache.path_for(digest)
        path.write_bytes(b"not a pickle")
        misses = []
        cache.bus.subscribe(CacheMissEvent, misses.append)
        assert cache.get(exp) is None
        assert misses[0].reason == "corrupt"
        assert not path.exists()  # evicted, not replayed

    def test_tampered_summary_fails_fingerprint_check(self, tmp_path):
        cache = ResultCache(tmp_path)
        exp = tiny_experiment()
        digest = cache.put(exp, run_experiment_summary(exp))
        path = cache.path_for(digest)
        entry = pickle.loads(path.read_bytes())
        entry["summary"] = replace(entry["summary"], rx_drops=999999)
        path.write_bytes(pickle.dumps(entry))
        with pytest.raises(CacheEntryError):
            cache._load(path, expect_digest=digest)
        assert cache.get(exp) is None  # corrupt miss + eviction

    def test_concurrent_writers_leave_one_valid_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        exp = tiny_experiment()
        summary = run_experiment_summary(exp)
        errors = []

        def writer():
            try:
                for _ in range(10):
                    cache.put(exp, summary)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache.entry_paths()) == 1
        # No stray temp files left behind by the atomic writer.
        assert list(cache.root.glob("*/*.tmp")) == []
        hit = ResultCache(tmp_path).get(exp)
        assert fingerprint_digest(hit) == fingerprint_digest(summary)

    def test_atomic_write_cleans_up_on_failure(self, tmp_path):
        target = tmp_path / "ab" / "entry.pkl"
        _atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert list(tmp_path.glob("ab/*.tmp")) == []


class TestRunnerIntegration:
    def test_cold_then_warm_with_identical_fingerprints(self, tmp_path):
        cache = ResultCache(tmp_path)
        exps = [
            tiny_experiment("a").with_policy(ddio()),
            tiny_experiment("b").with_policy(idio()),
        ]
        t0 = time.perf_counter()
        cold = run_experiments(exps, cache=cache)
        cold_wall = time.perf_counter() - t0
        assert (cache.hits, cache.misses, cache.stores) == (0, 2, 2)
        t0 = time.perf_counter()
        warm = run_experiments(exps, cache=cache)
        warm_wall = time.perf_counter() - t0
        assert (cache.hits, cache.misses) == (2, 2)
        for c, w in zip(cold, warm):
            assert fingerprint_digest(c) == fingerprint_digest(w)
        # The acceptance bar: a warm-cache re-run is >= 10x faster than
        # the cold run (in practice it is 2-3 orders of magnitude).
        assert warm_wall * 10.0 <= cold_wall, (warm_wall, cold_wall)

    def test_cache_false_disables(self, tmp_path):
        with cache_session(tmp_path) as cache:
            exps = [tiny_experiment()]
            run_experiments(exps, cache=False)
            assert (cache.hits, cache.misses, cache.stores) == (0, 0, 0)
            run_experiments(exps)  # picks up the session default
            assert (cache.misses, cache.stores) == (1, 1)

    def test_partial_hit_batch_preserves_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b, c = (tiny_experiment(n) for n in ("a", "b", "c"))
        cache.put(b, run_experiment_summary(b))
        out = run_experiments([a, b, c], cache=cache)
        assert [s.experiment.name for s in out] == ["a", "b", "c"]
        assert cache.hits == 1 and cache.misses == 2

    def test_sweep_hits_are_marked_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        exps = [tiny_experiment("s0"), tiny_experiment("s1", traffic_seed=1)]
        cold = run_sweep(exps, cache=cache)
        assert [r.status for r in cold.records] == ["ok", "ok"]
        warm = run_sweep(exps, cache=cache)
        assert [r.status for r in warm.records] == ["cached", "cached"]
        assert all(r.succeeded for r in warm.records)
        assert [s.status for s in warm.summaries] == ["cached", "cached"]
        assert [s.attempts for s in warm.summaries] == [0, 0]
        for c, w in zip(cold.summaries, warm.summaries):
            assert fingerprint_digest(c) == fingerprint_digest(w)

    def test_sweep_harness_faults_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = FaultPlan(specs=(FaultSpec("harness.crash", magnitude=1.0),))
        exps = [tiny_experiment(server_overrides={"fault_plan": plan})]
        first = run_sweep(exps, retries=2, cache=cache)
        assert first.records[0].status == "retried"
        assert cache.stores == 0 and cache.entry_paths() == []
        second = run_sweep(exps, retries=2, cache=cache)
        assert second.records[0].status == "retried"  # re-ran live
        assert cache.hits == 0


class TestRackIncremental:
    def rack_config(self, **overrides):
        defaults = dict(
            num_servers=2, total_flows=256, offered_gbps=20.0,
            duration_us=50.0,
        )
        defaults.update(overrides)
        return RackConfig(**defaults)

    def test_second_run_reuses_every_shard(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = SimulatedRack(self.rack_config()).run(cache=cache)
        assert [lane.cached for lane in cold.lanes] == [False, False]
        warm = SimulatedRack(self.rack_config()).run(cache=cache)
        assert [lane.cached for lane in warm.lanes] == [True, True]
        assert warm.fingerprint == cold.fingerprint

    def test_config_change_recomputes_every_shard(self, tmp_path):
        cache = ResultCache(tmp_path)
        SimulatedRack(self.rack_config()).run(cache=cache)
        changed = SimulatedRack(
            self.rack_config(offered_gbps=30.0)
        ).run(cache=cache)
        assert [lane.cached for lane in changed.lanes] == [False, False]


class TestVerifyGc:
    def populate(self, tmp_path, n=2):
        cache = ResultCache(tmp_path)
        exps = [
            tiny_experiment(f"v{i}", traffic_seed=i) for i in range(n)
        ]
        for exp in exps:
            cache.put(exp, run_experiment_summary(exp))
        return cache, exps

    def test_verify_clean_cache(self, tmp_path):
        cache, _ = self.populate(tmp_path)
        report = cache.verify()
        assert report.clean
        assert report.entries == report.sampled == report.verified_ok == 2
        assert report.evicted == 0

    def test_verify_detects_and_evicts_corruption(self, tmp_path):
        cache, exps = self.populate(tmp_path)
        digest = cache.digest_for(exps[0])
        cache.path_for(digest).write_bytes(b"\x00garbage")
        report = cache.verify()
        assert not report.clean
        assert report.corrupt == [digest]
        assert report.evicted == 1
        assert len(cache.entry_paths()) == 1
        assert cache.verify().clean  # stable after eviction

    def test_verify_detects_and_evicts_stale_results(self, tmp_path):
        cache, exps = self.populate(tmp_path, n=1)
        digest = cache.digest_for(exps[0])
        path = cache.path_for(digest)
        # An internally consistent entry whose *result* no longer matches
        # a recompute: the summary was doctored and its fingerprint
        # recomputed, as a simulator-behavior drift would produce.
        entry = pickle.loads(path.read_bytes())
        entry["summary"] = replace(entry["summary"], rx_drops=12345)
        entry["fingerprint"] = fingerprint_digest(entry["summary"])
        path.write_bytes(pickle.dumps(entry))
        report = cache.verify()
        assert report.mismatched == [digest]
        assert report.evicted == 1
        assert cache.entry_paths() == []

    def test_verify_sample_and_no_evict(self, tmp_path):
        cache, _ = self.populate(tmp_path, n=3)
        report = cache.verify(sample=1, seed=0)
        assert report.entries == 3 and report.sampled == 1
        digest = cache.entry_paths()[0].stem
        cache.path_for(digest).write_bytes(b"junk")
        kept = cache.verify(evict=False)
        assert kept.corrupt == [digest] and kept.evicted == 0
        assert len(cache.entry_paths()) == 3

    def test_gc_evicts_foreign_versions_first(self, tmp_path):
        cache, exps = self.populate(tmp_path, n=1)
        ResultCache(tmp_path, version="0.0.1").put(
            tiny_experiment("old", traffic_seed=9),
            run_experiment_summary(tiny_experiment("old", traffic_seed=9)),
        )
        assert len(cache.entry_paths()) == 2
        report = cache.gc()
        assert report.evicted_foreign == 1
        assert report.entries_after == 1
        assert cache.get(exps[0]) is not None

    def test_gc_budget_evicts_oldest(self, tmp_path):
        cache, _ = self.populate(tmp_path, n=2)
        report = cache.gc(max_bytes=0)
        assert report.evicted_over_budget == 2
        assert report.entries_after == 0 and report.bytes_after == 0

    def test_gc_stale_by_age(self, tmp_path):
        cache, exps = self.populate(tmp_path, n=1)
        path = cache.path_for(cache.digest_for(exps[0]))
        entry = pickle.loads(path.read_bytes())
        entry["created"] = time.time() - 10 * 86400.0
        path.write_bytes(pickle.dumps(entry))
        report = cache.gc(max_age_days=1.0)
        assert report.evicted_stale == 1


@pytest.fixture(scope="module", autouse=True)
def _drain_pool():
    yield
    shutdown_pool()
