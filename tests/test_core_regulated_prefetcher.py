"""Tests for the CPU-pointer-following (regulated) MLC prefetcher."""

import pytest

from repro.core.policies import idio, regulated_idio
from repro.core.prefetcher import RegulatedMLCPrefetcher
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.nic.descriptor import DescriptorRing
from repro.net.packet import Packet
from repro.sim import Simulator, units
from tests.memtxn import pcie_write


def make_setup(max_ahead=4, ring_size=16):
    sim = Simulator()
    h = MemoryHierarchy(HierarchyConfig(num_cores=1, l1_enabled=False))
    pf = RegulatedMLCPrefetcher(
        sim, h, 0, service_time=units.nanoseconds(4), max_ahead_packets=max_ahead
    )
    ring = DescriptorRing(ring_size, desc_base=0x1000, buffer_base=0x100000, buffer_stride=2048)
    pf.attach_ring(ring, 0x100000, 2048, lines_per_buffer=4)
    return sim, h, pf, ring


def dma_packet(h, ring, size=256):
    """Claim + DMA-complete one packet on the ring."""
    packet = Packet(size_bytes=size)
    desc = ring.claim(packet)
    for i in range(packet.num_lines):
        pcie_write(h, desc.buffer_addr + i * 64, 0)
    ring.complete(desc)
    return desc


class TestPump:
    def test_prefetches_lines_of_ready_packets(self):
        sim, h, pf, ring = make_setup()
        desc = dma_packet(h, ring)
        pf.hint(desc.buffer_addr)  # arm the pump
        sim.run(until=units.microseconds(1))
        for i in range(4):
            assert desc.buffer_addr + i * 64 in h.mlc[0]
        assert pf.prefetches_useful == 4

    def test_does_not_run_past_max_ahead(self):
        sim, h, pf, ring = make_setup(max_ahead=2)
        descs = [dma_packet(h, ring) for _ in range(6)]
        pf.hint(descs[0].buffer_addr)
        sim.run(until=units.microseconds(1))
        # Only packets within max_ahead of the (stationary) CPU pointer
        # are prefetched: slots 0..2.
        assert descs[2].buffer_addr in h.mlc[0]
        assert descs[4].buffer_addr not in h.mlc[0]

    def test_follows_cpu_pointer(self):
        sim, h, pf, ring = make_setup(max_ahead=2)
        descs = [dma_packet(h, ring) for _ in range(6)]
        pf.hint(descs[0].buffer_addr)
        sim.run(until=units.microseconds(1))
        assert descs[4].buffer_addr not in h.mlc[0]
        # Consumer advances two slots -> the window slides.
        ring.free(ring.pop_ready())
        ring.free(ring.pop_ready())
        pf.hint(descs[2].buffer_addr)
        sim.run(until=units.microseconds(2))
        assert descs[4].buffer_addr in h.mlc[0]

    def test_pump_disarms_when_ring_drains(self):
        sim, h, pf, ring = make_setup()
        desc = dma_packet(h, ring)
        pf.hint(desc.buffer_addr)
        sim.run(until=units.microseconds(1))
        ring.free(ring.pop_ready())
        sim.run(until=units.microseconds(3))
        assert not pf._pumping

    def test_out_of_region_hint_uses_plain_queue(self):
        sim, h, pf, ring = make_setup()
        pcie_write(h, 0x9000, 0)  # a descriptor line, outside the buffers
        pf.hint(0x9000)
        sim.run(until=units.microseconds(1))
        assert 0x9000 in h.mlc[0]

    def test_invalid_attach_rejected(self):
        sim, h, pf, ring = make_setup()
        with pytest.raises(ValueError):
            pf.attach_ring(ring, 0, 0)


class TestEndToEnd:
    def test_regulated_idio_zero_mlc_writebacks_at_100g(self):
        """The §VII hypothesis: pointer-following prefetching never floods
        the MLC, at any burst rate."""
        exp = Experiment(
            name="regulated",
            server=ServerConfig(app="touchdrop", ring_size=512),
            traffic="bursty",
            burst_rate_gbps=100.0,
        )
        plain = run_experiment(exp.with_policy(idio()))
        regulated = run_experiment(exp.with_policy(regulated_idio()))
        assert regulated.window.mlc_writebacks == 0
        assert regulated.completed == plain.completed == 1024
        # ... and burst processing is at least as fast as dynamic IDIO.
        assert regulated.burst_processing_time <= plain.burst_processing_time * 1.02
