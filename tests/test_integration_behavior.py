"""Behavioral regression tests: the paper's qualitative claims.

Each test pins one claim from the evaluation section at a reduced scale so
the suite stays fast.  The full-scale reproductions live in benchmarks/.
"""

import pytest

from repro.core.policies import all_policies, ddio, idio, invalidate_only, prefetch_only
from repro.harness.experiment import Experiment, run_experiment
from repro.harness.server import ServerConfig
from repro.sim import units


def bursty(policy, rate=50.0, ring=256, app="touchdrop", packet_bytes=1514, **server_kwargs):
    exp = Experiment(
        name="behavior",
        server=ServerConfig(
            policy=policy, app=app, ring_size=ring, packet_bytes=packet_bytes, **server_kwargs
        ),
        traffic="bursty",
        burst_rate_gbps=rate,
    )
    return run_experiment(exp)


#: Scaled-down MLC so a 256-entry ring (6144 lines) overflows it, keeping
#: the paper's ring-larger-than-MLC ratio at test scale (§III Obs. 2).
SMALL_MLC = 128 * 1024


class TestSelfInvalidation:
    """§IV-A / Fig. 9c: self-invalidation removes dead-buffer writebacks."""

    def test_eliminates_mlc_writebacks(self):
        base = bursty(ddio(), nf_mlc_bytes=SMALL_MLC)
        inv = bursty(invalidate_only(), nf_mlc_bytes=SMALL_MLC)
        assert base.window.mlc_writebacks > 0
        assert inv.window.mlc_writebacks < base.window.mlc_writebacks * 0.1

    def test_no_dram_writes_for_dead_data(self):
        """With the LLC under pressure (scaled to ring size, like the
        paper's 3 MB LLC vs 3 MB aggregate ring), invalidation removes the
        dead-line writeback traffic and DRAM writes do not grow."""
        kwargs = dict(
            rate=25.0, nf_mlc_bytes=SMALL_MLC, llc_bytes=768 * 1024
        )
        inv = bursty(invalidate_only(), **kwargs)
        base = bursty(ddio(), **kwargs)
        assert base.window.mlc_writebacks > 0
        assert inv.window.dram_writes <= base.window.dram_writes * 1.05


class TestPrefetching:
    """§IV-B / Fig. 9e: MLC prefetching shortens burst processing."""

    def test_prefetch_reduces_burst_time_at_high_rate(self):
        base = bursty(ddio(), rate=100.0, ring=512)
        pf = bursty(prefetch_only(), rate=100.0, ring=512)
        assert pf.burst_processing_time < base.burst_processing_time

    def test_prefetch_alone_does_not_cut_mlc_writebacks(self):
        base = bursty(ddio(), rate=100.0, ring=512)
        pf = bursty(prefetch_only(), rate=100.0, ring=512)
        assert pf.window.mlc_writebacks >= base.window.mlc_writebacks * 0.8


class TestFullIDIO:
    """Fig. 9/10: IDIO cuts writebacks and improves burst time."""

    def test_idio_beats_ddio_on_llc_writebacks(self):
        base = bursty(ddio(), rate=100.0, ring=512)
        ours = bursty(idio(), rate=100.0, ring=512)
        assert ours.window.llc_writebacks < base.window.llc_writebacks

    def test_idio_nearly_eliminates_dram_writes_at_medium_rate(self):
        base = bursty(ddio(), rate=25.0, ring=512)
        ours = bursty(idio(), rate=25.0, ring=512)
        assert base.window.dram_writes > 0
        assert ours.window.dram_writes < base.window.dram_writes * 0.2

    def test_idio_improves_burst_time_at_medium_rate(self):
        base = bursty(ddio(), rate=25.0, ring=512)
        ours = bursty(idio(), rate=25.0, ring=512)
        assert ours.burst_processing_time < base.burst_processing_time

    def test_idio_improves_p99_latency(self):
        base = bursty(ddio(), rate=25.0, ring=512)
        ours = bursty(idio(), rate=25.0, ring=512)
        assert ours.p99_ns < base.p99_ns

    def test_all_policies_complete_all_packets(self):
        for name, policy in all_policies().items():
            result = bursty(policy, rate=50.0, ring=128)
            assert result.completed == result.rx_packets, name


class TestDirectDram:
    """§IV-C / Fig. 11: class-1 payloads bypass the cache hierarchy."""

    def test_payload_written_directly_to_dram(self):
        result = bursty(idio(), app="l2fwd-payload-drop", packet_bytes=1024, ring=128)
        direct = result.server.stats.counters.get("direct_dram_writes")
        # 15 payload lines per 1024 B packet, every packet.
        assert direct == result.rx_packets * 15

    def test_headers_still_cached(self):
        result = bursty(idio(), app="l2fwd-payload-drop", packet_bytes=1024, ring=128)
        assert result.decisions["header_prefetch"] > 0

    def test_llc_writebacks_negligible(self):
        result = bursty(idio(), app="l2fwd-payload-drop", packet_bytes=1024, ring=128)
        assert result.window.llc_writebacks < result.rx_packets


class TestL2FwdShallow:
    """Fig. 11: shallow NF under DDIO shows no MLC activity; IDIO admits
    data into the idle MLC."""

    def test_ddio_has_minimal_mlc_traffic(self):
        base = bursty(ddio(), app="l2fwd", packet_bytes=1024, ring=256, rate=100.0)
        # Only header/descriptor lines move through the MLC.
        assert base.window.mlc_writebacks <= base.rx_packets * 3

    def test_idio_cuts_llc_writebacks(self):
        base = bursty(ddio(), app="l2fwd", packet_bytes=1024, ring=256, rate=100.0)
        ours = bursty(idio(), app="l2fwd", packet_bytes=1024, ring=256, rate=100.0)
        assert ours.window.llc_writebacks < base.window.llc_writebacks


class TestIsolation:
    """Fig. 10/12 co-run: IDIO reduces interference with the antagonist."""

    def test_corun_burst_time_improves(self):
        base = bursty(ddio(), rate=50.0, ring=256, antagonist=True)
        ours = bursty(idio(), rate=50.0, ring=256, antagonist=True)
        assert ours.burst_processing_time < base.burst_processing_time

    def test_antagonist_latency_not_worse_under_idio(self):
        base = bursty(ddio(), rate=50.0, ring=256, antagonist=True)
        ours = bursty(idio(), rate=50.0, ring=256, antagonist=True)
        assert ours.antagonist_access_ns <= base.antagonist_access_ns * 1.05


class TestSteadyTraffic:
    """Fig. 13: steady load shows consistent MLC WBs under DDIO only."""

    def test_steady_mlc_writebacks_removed_by_idio(self):
        def steady(policy):
            exp = Experiment(
                name="steady",
                server=ServerConfig(
                    policy=policy,
                    app="touchdrop",
                    ring_size=256,
                    nf_mlc_bytes=SMALL_MLC,
                ),
                traffic="steady",
                steady_rate_gbps_per_nf=10.0,
                steady_duration=units.microseconds(600),
            )
            return run_experiment(exp)

        base = steady(ddio())
        ours = steady(idio())
        assert base.window.mlc_writebacks > 0
        assert ours.window.mlc_writebacks < base.window.mlc_writebacks * 0.1


class TestInclusiveCounterfactual:
    """DESIGN.md ablation: DMA bloating needs a non-inclusive hierarchy."""

    def test_inclusive_hierarchy_shows_no_bloat(self):
        non_incl = bursty(ddio(), rate=50.0, ring=256, nf_mlc_bytes=SMALL_MLC)
        incl = bursty(
            ddio(), rate=50.0, ring=256, nf_mlc_bytes=SMALL_MLC, llc_inclusive=True
        )
        # In the inclusive LLC, MLC victims don't allocate new LLC lines
        # (the copy already exists), so MLC->LLC traffic is far lower.
        assert incl.window.mlc_writebacks < non_incl.window.mlc_writebacks
