"""CLI validate command (with a stubbed scorecard — full runs take minutes)."""

import pytest

import repro.harness.validation as validation_mod
from repro.cli import main
from repro.harness.validation import Scorecard


def make_card(all_pass: bool) -> Scorecard:
    card = Scorecard()
    card.add("fig9", "claim A", "x", "y", True)
    card.add("fig10", "claim B", "x", "y", all_pass)
    return card


class TestValidateCommand:
    def test_exit_zero_when_all_pass(self, monkeypatch, capsys):
        monkeypatch.setattr(
            validation_mod,
            "run_validation",
            lambda quick=False, jobs=1: make_card(True),
        )
        assert main(["validate", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "2/2 claims reproduced" in out

    def test_exit_nonzero_on_failure(self, monkeypatch, capsys):
        monkeypatch.setattr(
            validation_mod,
            "run_validation",
            lambda quick=False, jobs=1: make_card(False),
        )
        assert main(["validate"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_quick_flag_forwarded(self, monkeypatch):
        seen = {}

        def fake(quick=False, jobs=1):
            seen["quick"] = quick
            seen["jobs"] = jobs
            return make_card(True)

        monkeypatch.setattr(validation_mod, "run_validation", fake)
        main(["validate", "--quick"])
        assert seen["quick"] is True
        main(["validate"])
        assert seen["quick"] is False

    def test_jobs_flag_forwarded(self, monkeypatch):
        seen = {}

        def fake(quick=False, jobs=1):
            seen["jobs"] = jobs
            return make_card(True)

        monkeypatch.setattr(validation_mod, "run_validation", fake)
        main(["validate", "--quick", "--jobs", "4"])
        assert seen["jobs"] == 4
