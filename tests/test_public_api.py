"""Public-API consistency: every exported name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.api",
    "repro.faults",
    "repro.sim",
    "repro.mem",
    "repro.net",
    "repro.pcie",
    "repro.nic",
    "repro.cpu",
    "repro.core",
    "repro.harness",
    "repro.obs",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} has no __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} listed in __all__ but missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_is_sorted(package):
    """Keep the export lists tidy (reviewable diffs)."""
    mod = importlib.import_module(package)
    assert list(mod.__all__) == sorted(mod.__all__), package


def test_top_level_quickstart_symbols():
    """The README quickstart must keep working."""
    import repro

    for name in ("Experiment", "ServerConfig", "run_experiment", "units"):
        assert hasattr(repro, name)
    from repro.core import ddio, idio  # noqa: F401


def test_version():
    import repro

    assert repro.__version__


def test_cli_module_importable():
    from repro.cli import main  # noqa: F401
