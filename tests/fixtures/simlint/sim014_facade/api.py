# simlint-fixture-module: repro.api
"""SIM014 fixture: facade carrying drift and a deprecated shim."""

import warnings


class Experiment:
    pass


def run_experiment(experiment):
    return experiment


def run_experiment_legacy(experiment):
    warnings.warn("use run_experiment", DeprecationWarning)
    return run_experiment(experiment)


__all__ = ["Experiment", "run_experiment", "run_experiment_legacy"]
