# simlint-fixture-module: repro
"""SIM014 fixture: package front door that drifted from repro.api."""

from repro.api import Experiment, run_experiment
from repro.harness.server import ServerConfig

__all__ = ["Experiment", "ServerConfig", "run_experiment"]
