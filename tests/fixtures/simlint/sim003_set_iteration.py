# simlint-fixture-module: repro.mem.fake
"""SIM003 fixture: nondeterministic iteration orders (4 violations)."""


def sweep(directory, addr, lines, table):
    total = 0
    for core in directory.owners(addr):
        total += core
    pending = set(lines)
    for line in pending:
        total += line
    sizes = [x * 2 for x in {1, 2, 3}]
    table[id(directory)] = total
    for line in sorted(pending):  # fine: sorted() pins the order
        total += line
    return total, sizes
