# simlint-fixture-module: repro.cache.fake
"""SIM010 fixture: cache writes bypassing the atomic helper (5 violations)."""
import os
import pickle
from pathlib import Path


def store_directly(path, entry):
    with open(path, "wb") as fh:  # torn write: readers can see a partial pickle
        pickle.dump(entry, fh)


def store_via_path(path: Path, payload: bytes) -> None:
    path.write_bytes(payload)


def store_text_sidecar(path: Path, text: str) -> None:
    path.write_text(text)


def append_journal(path: Path, line: str) -> None:
    with path.open("a") as fh:
        fh.write(line)


def hand_rolled_rename(staged: str, final: str) -> None:
    os.replace(staged, final)
