# simlint-fixture-module: repro.cpu.fake
"""SIM007 fixture: tick-vs-wall-time suffix mismatches (3 violations)."""
from repro.sim import units
from repro.sim.units import cycles


def budget(sim, span):
    delay_ns = units.cycles(3)
    window_ticks = units.to_nanoseconds(span)
    spin = cycles(5)  # fine: no unit suffix to contradict
    sim.schedule(delay_ns=cycles(2))
    stamp_ns = units.to_nanoseconds(span)  # fine: wall value, wall suffix
    return delay_ns, window_ticks, spin, stamp_ns
