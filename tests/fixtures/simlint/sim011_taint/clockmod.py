# simlint-fixture-module: repro.harness.fix_clock
"""SIM011 fixture helper: taint sources hidden behind a module boundary.

Nothing here is a violation on its own — harness code may read the host
clock.  The hazard is the *flow*: ``stamp()`` returns wall-clock taint
and ``passthrough()`` forwards whatever it is given, so a caller in
another module can launder nondeterminism into fingerprint state without
ever naming ``time`` itself.
"""

import time


def stamp():
    return time.time()


def passthrough(value):
    return value
