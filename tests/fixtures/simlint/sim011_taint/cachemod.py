# simlint-fixture-module: repro.harness.fix_cache
"""SIM011 fixture: unseeded randomness stored into the result cache."""

import uuid

from repro.cache import ResultCache


def stash(cache: ResultCache, key):
    token = uuid.uuid4()
    cache.put(key, token)
