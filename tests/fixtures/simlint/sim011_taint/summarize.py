# simlint-fixture-module: repro.harness.fix_summarize
"""SIM011 fixture: cross-module taint reaching fingerprint state."""

import os

from repro.harness.fix_clock import passthrough, stamp


def build_summary():
    started = stamp()  # wall-clock, imported from another module
    jitter = passthrough(started)  # laundered through a passthrough helper
    # wall_seconds is an allowlisted diagnostic; total_ticks is not.
    return ExperimentSummary(total_ticks=jitter, wall_seconds=started)


def digest_entropy():
    salt = os.urandom(8).hex()
    return fingerprint_digest(salt)


def fingerprint(values):
    total = 0.0
    for item in set(values):  # hash-randomized iteration order
        total = total + item
    return total
