# simlint-fixture-module: repro.tenants.fake
"""SIM016 fixture: shared / module-level RNG in tenant code (5 violations)."""
import random
from random import Random, randint

_SHARED = random.Random(77)  # module-level: one stream for every tenant
_ALSO_SHARED = Random(42)  # same, via the imported class


def pick_tenant(num_tenants):
    return random.randrange(num_tenants)  # module-global stream


def burst_jitter(limit):
    return randint(0, limit)  # module-global stream


def make_stream():
    return random.Random()  # unseeded
