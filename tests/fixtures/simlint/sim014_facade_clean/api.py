# simlint-fixture-module: repro.api
"""Clean half of the SIM014 pair: every export bound, no shims."""


class Experiment:
    pass


def run_experiment(experiment):
    return experiment


__all__ = ["Experiment", "run_experiment"]
