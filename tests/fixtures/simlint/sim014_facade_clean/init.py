# simlint-fixture-module: repro
"""Clean half of the SIM014 pair: front door mirrors repro.api exactly."""

from repro.api import Experiment, run_experiment

__all__ = ["Experiment", "run_experiment"]
