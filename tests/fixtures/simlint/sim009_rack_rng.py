# simlint-fixture-module: repro.rack.fake
"""SIM009 fixture: shared / module-level RNG in rack code (5 violations)."""
import random
from random import Random, randint

_SHARED = random.Random(1234)  # module-level: one stream for every server
_ALSO_SHARED = Random(99)  # same, via the imported class


def pick_server(num_servers):
    return random.randrange(num_servers)  # module-global stream


def assign_flow(num_servers):
    return randint(0, num_servers - 1)  # module-global stream


def make_stream():
    return random.Random()  # unseeded
