# simlint-fixture-module: repro.tenants.fake_clean
"""SIM016 clean control: per-tenant seeded streams built inside functions."""
import random


def _mix(seed, tenant):
    return (seed * 0x9E3779B97F4A7C15 + tenant + 1) & 0xFFFF_FFFF_FFFF_FFFF


def tenant_stream(seed, tenant):
    return random.Random(_mix(seed, tenant))


def traffic_seed(seed, tenant):
    return tenant_stream(seed, tenant).getrandbits(32)
