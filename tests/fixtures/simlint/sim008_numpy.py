# simlint-fixture-module: repro.mem.fake
"""SIM008 fixture: unguarded top-level numpy imports (3 violations).

The guarded import, the function-local import, and the suppressed line
must all stay silent; only the three bare top-level forms trip.
"""
import numpy
import numpy as np
from numpy import ndarray

import numpy as suppressed  # simlint: disable=SIM008

try:
    import numpy as guarded
except ImportError:
    guarded = None


def lazy_user():
    import numpy as local_np

    return local_np.zeros(4)


def touch():
    return (numpy, np, ndarray, suppressed, guarded)
