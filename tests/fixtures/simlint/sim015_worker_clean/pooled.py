# simlint-fixture-module: repro.harness.fix_pool
"""Clean half of the SIM015 pair: _worker* convention + atomic swap."""

import json
import multiprocessing
import os

_worker_results = []


def _bump_counter(task):
    global _worker_results  # documented process-local convention
    _worker_results = _worker_results + [task]
    return task


def run_tasks(tasks):
    with multiprocessing.Pool(2) as pool:
        return pool.map(_bump_counter, tasks)


def spill_manifest(path, rows):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(rows, fh)
    os.replace(tmp, path)
