# simlint-fixture-module: repro.harness.fix_pool
"""SIM015 fixture: worker-path shared-state illusion + torn writes."""

import json
import multiprocessing

_results = []


def _bump_counter(task):
    global _results  # workers mutate a per-process copy, not shared state
    _results = _results + [task]
    return task


def run_tasks(tasks):
    with multiprocessing.Pool(2) as pool:
        return pool.map(_bump_counter, tasks)


def spill_manifest(path, rows):
    with open(path, "w") as fh:  # concurrent path, no atomic swap
        json.dump(rows, fh)
