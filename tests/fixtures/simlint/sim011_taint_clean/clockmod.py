# simlint-fixture-module: repro.harness.fix_clock
"""Clean half of the SIM011 pair: same helpers, no hazardous flow."""

import time


def stamp():
    return time.time()


def passthrough(value):
    return value
