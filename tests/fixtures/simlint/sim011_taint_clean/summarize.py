# simlint-fixture-module: repro.harness.fix_summarize
"""Clean half of the SIM011 pair: taint stays in allowlisted fields.

Wall-clock values land only in the diagnostic fields the fingerprint
deliberately excludes, and unordered iteration is laundered through
``sorted()`` before anything fingerprint-relevant sees it.
"""

from repro.harness.fix_clock import passthrough, stamp


def build_summary(total_ticks):
    started = stamp()
    elapsed = passthrough(started)
    return ExperimentSummary(
        total_ticks=total_ticks, wall_seconds=elapsed, status="ok"
    )


def fingerprint(values):
    total = 0.0
    for item in sorted(set(values)):  # sorted() launders iteration order
        total = total + item
    return total
