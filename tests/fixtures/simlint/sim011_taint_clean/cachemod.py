# simlint-fixture-module: repro.harness.fix_cache
"""Clean half of the SIM011 pair: only config-derived values are stored."""

from repro.cache import ResultCache


def stash(cache: ResultCache, key, summary):
    cache.put(key, summary)
