# simlint-fixture-module: repro.sim.fake
"""A well-behaved simulation module: zero violations expected."""
from random import Random


class Model:
    __slots__ = ("rng", "pending")

    def __init__(self, seed):
        self.rng = Random(seed)
        self.pending = set()

    def drain(self):
        for addr in sorted(self.pending):
            yield addr
