# simlint-fixture-module: repro.obs.fake
"""SIM006 fixture: subscriber signatures vs event types (3 violations)."""


class CacheFill:
    pass


class EvictionEvent:
    pass


class Recorder:
    def on_txn(self, txn, extra):
        return txn, extra


def on_fill(event: CacheFill):
    return event


def wire(bus, recorder):
    bus.subscribe(CacheFill, recorder.on_txn)  # arity: two required args
    bus.subscribe(EvictionEvent, on_fill)  # annotated CacheFill, wrong topic
    bus.subscribe(EvictionEvent, lambda a, b: None)  # lambda arity
    bus.subscribe(CacheFill, on_fill)  # fine
