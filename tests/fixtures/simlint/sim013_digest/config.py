# simlint-fixture-module: repro.harness.fix_config
"""SIM013 fixture: config fields the canonical digest walk cannot see."""

from dataclasses import dataclass
from typing import Set


class PolicyKnobs:
    """Not a dataclass: canonical() raises TypeError on instances."""

    def __init__(self, window=4):
        self.window = window


@dataclass
class ServerConfig:
    lanes: int
    tags: Set[str]  # unordered: canonical() cannot order it stably
    policy: "PolicyKnobs"  # plain class: uncacheable under canonical()
