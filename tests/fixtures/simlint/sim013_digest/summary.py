# simlint-fixture-module: repro.harness.fix_summary
"""SIM013 fixture: a summary field the fingerprint never reads."""

from dataclasses import dataclass


@dataclass
class ExperimentSummary:
    total_ticks: int
    dropped: int  # never read by fingerprint(), not exempt

    def fingerprint(self):
        return ("v1", self.total_ticks)
