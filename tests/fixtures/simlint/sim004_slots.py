# simlint-fixture-module: repro.mem.cache
"""SIM004 fixture: hot-path classes without __slots__ (2 violations)."""
from dataclasses import dataclass


class HotLine:
    def __init__(self, addr):
        self.addr = addr


@dataclass
class HotConfig:
    ways: int = 8


@dataclass(frozen=True, slots=True)
class GoodConfig:  # fine: slots=True
    ways: int = 8


class GoodLine:  # fine: explicit __slots__
    __slots__ = ("addr",)

    def __init__(self, addr):
        self.addr = addr


class PoolError(RuntimeError):  # fine: exceptions are exempt
    pass
