# simlint-fixture-module: repro.core.fake
"""SIM005 fixture: legacy per-kind wrapper calls (3 violations)."""


def touch(hierarchy, core, addr, now):
    hierarchy.cpu_access(core, addr, False, now)
    hierarchy.pcie_write(addr, now)
    hierarchy.invalidate(addr, now)
    hierarchy.access(None)  # fine: the unified entry point
