# simlint-fixture-module: repro.harness.fix_summary
"""Clean half of the SIM013 pair: full fingerprint coverage."""

from dataclasses import dataclass


@dataclass
class ExperimentSummary:
    total_ticks: int
    dropped: int
    wall_seconds: float  # exempt: wall-clock diagnostic by design

    def fingerprint(self):
        return ("v1", self.total_ticks, self.dropped)
