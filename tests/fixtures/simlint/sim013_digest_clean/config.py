# simlint-fixture-module: repro.harness.fix_config
"""Clean half of the SIM013 pair: every field canonicalizes."""

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class PolicyKnobs:
    window: int = 4
    decay: float = 0.5


@dataclass
class ServerConfig:
    lanes: int
    tags: Tuple[str, ...]  # ordered: canonical() walks it stably
    policy: "PolicyKnobs"  # nested dataclass: walked field by field
    label: Optional[str] = None
