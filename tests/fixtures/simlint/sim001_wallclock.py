# simlint-fixture-module: repro.sim.fake
"""SIM001 fixture: host-clock reads inside simulation code (3 violations)."""
import time
from datetime import datetime
from time import perf_counter


def stamp():
    started = time.time()
    elapsed = perf_counter()
    wall = datetime.now()
    return started, elapsed, wall
