# simlint-fixture-module: repro.obs.fix_wiring
"""SIM012 fixture: mispaired bus wiring across module boundaries.

Three hazards: an event published with no subscriber anywhere, a
subscription to an event nothing publishes, and a cross-module handler
whose arity a per-file rule (SIM006) cannot see.
"""

from repro.obs.fix_events import LonelyEvent, OrphanEvent, PairedEvent
from repro.obs.fix_handlers import log_event


def attach(bus, recorder):
    bus.publish(OrphanEvent(1))  # no typed subscriber anywhere
    bus.subscribe(LonelyEvent, recorder.on_event)  # nothing publishes it
    bus.publish(PairedEvent(2))
    bus.subscribe(PairedEvent, log_event)  # handler takes two required args
