# simlint-fixture-module: repro.obs.fix_events
"""SIM012 fixture event types (shared by the wiring fixtures)."""


class OrphanEvent:
    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value


class LonelyEvent:
    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value


class PairedEvent:
    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value
