# simlint-fixture-module: repro.obs.fix_handlers
"""SIM012 fixture: a handler with the wrong arity, imported elsewhere."""


def log_event(event, sink):
    sink.append(event)
