# simlint-fixture-module: repro.rack.fake_clean
"""SIM009 clean control: per-server seeded streams built inside functions."""
import random


def _mix(seed, server):
    return (seed * 0x9E3779B97F4A7C15 + server + 1) & 0xFFFF_FFFF_FFFF_FFFF


def server_stream(seed, server):
    return random.Random(_mix(seed, server))


def traffic_seed(seed, server):
    return server_stream(seed, server).getrandbits(32)
