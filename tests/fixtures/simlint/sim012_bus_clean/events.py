# simlint-fixture-module: repro.obs.fix_events
"""Clean half of the SIM012 pair: event types with paired wiring."""


class PairedEvent:
    __slots__ = ("value",)

    def __init__(self, value=0):
        self.value = value
