# simlint-fixture-module: repro.obs.fix_wiring
"""Clean half of the SIM012 pair: every publisher has a typed subscriber.

Covers both publish shapes: the plain ``publish(event)`` call and the
hot-path ``live(T)`` subscriber-list cache.
"""

from repro.obs.fix_events import PairedEvent
from repro.obs.fix_handlers import on_paired


def attach(bus):
    bus.subscribe(PairedEvent, on_paired)
    bus.publish(PairedEvent(1))
    fan = bus.live(PairedEvent)
    return fan
