# simlint-fixture-module: repro.obs.fix_handlers
"""Clean half of the SIM012 pair: a correctly-shaped imported handler."""

from repro.obs.fix_events import PairedEvent


def on_paired(event: PairedEvent):
    return event.value
