# simlint-fixture-module: repro.cache.fake_clean
"""SIM010 clean control: the blessed atomic path, plus legal reads/evicts."""
import os
import pickle
import tempfile
from pathlib import Path


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    fd, staged = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    with os.fdopen(fd, "wb") as fh:
        fh.write(payload)
    os.replace(staged, path)


def store(path: Path, entry: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write_bytes(path, pickle.dumps(entry))


def load(path: Path) -> dict:
    with open(path, "rb") as fh:  # read mode is always legal
        return pickle.load(fh)


def evict(path: Path) -> None:
    os.unlink(path)
