# simlint-fixture-module: repro.nic.fake
"""SIM002 fixture: unseeded / module-global randomness (4 violations)."""
import random
from random import Random, randint


def jitter():
    a = random.random()
    rng = random.Random()
    b = randint(0, 7)
    rng2 = Random()
    seeded = Random(42)  # fine: explicit seed
    return a, rng, b, rng2, seeded
