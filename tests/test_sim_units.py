"""Unit tests for time/bandwidth unit conversions."""

import pytest

from repro.sim import units


class TestTimeConversions:
    def test_nanosecond_is_thousand_picoseconds(self):
        assert units.nanoseconds(1) == 1000 * units.picoseconds(1)

    def test_microsecond_chain(self):
        assert units.microseconds(1) == units.nanoseconds(1000)
        assert units.milliseconds(1) == units.microseconds(1000)
        assert units.seconds(1) == units.milliseconds(1000)

    def test_roundtrip_to_ns(self):
        assert units.to_nanoseconds(units.nanoseconds(123.0)) == pytest.approx(123.0)

    def test_roundtrip_to_us(self):
        assert units.to_microseconds(units.microseconds(7.5)) == pytest.approx(7.5)

    def test_roundtrip_to_ms_and_s(self):
        assert units.to_milliseconds(units.milliseconds(3)) == pytest.approx(3.0)
        assert units.to_seconds(units.seconds(2)) == pytest.approx(2.0)

    def test_fractional_nanoseconds_round(self):
        assert units.nanoseconds(0.5) == 500


class TestCycles:
    def test_one_cycle_at_3ghz_is_333ps(self):
        assert units.cycles(1, 3.0) == 333

    def test_twelve_cycles_mlc_latency(self):
        # Table I: MLC latency is 12 cycles = 4 ns at 3 GHz.
        assert units.cycles(12, 3.0) == pytest.approx(4000, abs=10)

    def test_cycles_at_1ghz(self):
        assert units.cycles(1, 1.0) == 1000

    def test_invalid_frequency_raises(self):
        with pytest.raises(ValueError):
            units.cycles(1, 0)
        with pytest.raises(ValueError):
            units.cycles(1, -2.5)


class TestBandwidth:
    def test_transfer_time_100gbps_line(self):
        # 64 B at 100 Gbps = 5.12 ns.
        assert units.transfer_time(64, 100.0) == pytest.approx(5120, rel=1e-3)

    def test_transfer_time_mtu_at_10gbps(self):
        # 1538 B wire frame at 10 Gbps = 1230.4 ns.
        assert units.transfer_time(1538, 10.0) == pytest.approx(1_230_400, rel=1e-3)

    def test_transfer_time_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time(64, 0)

    def test_bytes_to_gbps_roundtrip(self):
        ticks = units.transfer_time(10_000, 25.0)
        assert units.bytes_to_gbps(10_000, ticks) == pytest.approx(25.0, rel=1e-3)

    def test_bytes_to_gbps_zero_window(self):
        assert units.bytes_to_gbps(100, 0) == 0.0

    def test_gbps_to_bytes_per_tick(self):
        # 8 Gbps = 1 GB/s = 1e9 bytes / 1e12 ticks.
        assert units.gbps_to_bytes_per_tick(8.0) == pytest.approx(1e-3)
