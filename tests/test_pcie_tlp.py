"""Unit + property tests for the TLP reserved-bit encoding (Fig. 7)."""

import pytest
from hypothesis import given, strategies as st

from repro.pcie.tlp import (
    APP_CLASS1_CORE_CODE,
    BURST_FLAG_BIT,
    DEST_CORE_BITS,
    HEADER_FLAG_BIT,
    MAX_DEST_CORE,
    IdioTag,
    MemWriteTLP,
    decode_idio_bits,
    encode_idio_bits,
    tlp_is_idio_tagged,
)


class TestBitLayout:
    def test_reserved_bit_positions(self):
        # Fig. 7: destCore in bits 23, [19:16], 11; header 31; burst 10.
        assert HEADER_FLAG_BIT == 31
        assert BURST_FLAG_BIT == 10
        assert DEST_CORE_BITS == (23, 19, 18, 17, 16, 11)

    def test_supports_up_to_63_cores(self):
        assert MAX_DEST_CORE == 62
        assert APP_CLASS1_CORE_CODE == 63

    def test_bits_do_not_overlap_tlp_fmt_type(self):
        # Format/type live in bits [31:24]; IDIO only uses bit 31 there
        # (documented reserved for MWr) and otherwise stays below bit 24.
        word = encode_idio_bits(IdioTag(dest_core=62, is_header=False, is_burst=True))
        assert word & 0x7F00_0000 == 0  # bits 30..24 untouched


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        tag = IdioTag(dest_core=5, app_class=0, is_header=True, is_burst=False)
        assert decode_idio_bits(encode_idio_bits(tag)) == tag

    def test_class1_encodes_all_core_bits(self):
        word = encode_idio_bits(IdioTag(app_class=1))
        for bit in DEST_CORE_BITS:
            assert (word >> bit) & 1 == 1

    def test_class1_decodes_regardless_of_flags(self):
        tag = IdioTag(app_class=1, is_header=True, is_burst=True)
        decoded = decode_idio_bits(encode_idio_bits(tag))
        assert decoded.app_class == 1
        assert decoded.is_header and decoded.is_burst

    def test_zero_word_is_core0_class0(self):
        decoded = decode_idio_bits(0)
        assert decoded == IdioTag(dest_core=0, app_class=0)

    def test_invalid_core_rejected(self):
        with pytest.raises(ValueError):
            IdioTag(dest_core=63, app_class=0)
        with pytest.raises(ValueError):
            IdioTag(dest_core=-1, app_class=0)

    def test_invalid_app_class_rejected(self):
        with pytest.raises(ValueError):
            IdioTag(app_class=2)

    @given(
        st.integers(min_value=0, max_value=62),
        st.booleans(),
        st.booleans(),
    )
    def test_roundtrip_property(self, core, header, burst):
        tag = IdioTag(dest_core=core, app_class=0, is_header=header, is_burst=burst)
        assert decode_idio_bits(encode_idio_bits(tag)) == tag

    @given(st.integers(min_value=0, max_value=62), st.integers(min_value=0, max_value=62))
    def test_distinct_cores_distinct_words(self, a, b):
        wa = encode_idio_bits(IdioTag(dest_core=a))
        wb = encode_idio_bits(IdioTag(dest_core=b))
        assert (wa == wb) == (a == b)


class TestMemWriteTLP:
    def test_header_word_contains_mwr_type(self):
        tlp = MemWriteTLP(address=0x1000, tag=IdioTag(dest_core=1))
        assert (tlp.header_word() >> 24) & 0x7F == 0x40

    def test_header_word_roundtrips_tag(self):
        tag = IdioTag(dest_core=7, is_header=True)
        tlp = MemWriteTLP(address=0x1000, tag=tag)
        assert decode_idio_bits(tlp.header_word()) == tag

    def test_untagged_word_not_idio_tagged(self):
        assert not tlp_is_idio_tagged(0x4000_0000)

    def test_tagged_word_detected(self):
        word = encode_idio_bits(IdioTag(dest_core=1))
        assert tlp_is_idio_tagged(word)
