"""Tests for the ``repro serve`` daemon and its JSON-lines protocol.

The daemon runs in a background thread against a tmp-path socket and
cache; a client submits the same sweep twice and the second pass must be
answered entirely from the warm cache with byte-identical fingerprints —
the in-process version of the ``make serve-smoke`` CI gate.
"""

import threading

import pytest

from repro.cache import ResultCache
from repro.cache.serve import (
    ServeDaemon,
    experiment_from_spec,
    submit,
)
from repro.harness.runner import shutdown_pool

SWEEP = {
    "op": "sweep",
    "experiments": [
        {"name": "t-ddio", "policy": "ddio", "ring": 128, "rate": 25.0},
        {"name": "t-idio", "policy": "idio", "ring": 128, "rate": 25.0},
    ],
}


class TestExperimentFromSpec:
    def test_defaults(self):
        exp = experiment_from_spec({})
        assert exp.server.policy.name == "ddio"
        assert exp.server.app == "touchdrop"
        assert exp.name == "serve-ddio"

    def test_cli_vocabulary_maps_through(self):
        exp = experiment_from_spec(
            {"name": "x", "policy": "idio", "workload": "l2fwd",
             "ring": 256, "rate": 40.0, "seed": 3, "antagonist": True}
        )
        assert exp.name == "x"
        assert exp.server.policy.name == "idio"
        assert exp.server.app == "l2fwd"
        assert exp.server.ring_size == 256
        assert exp.server.antagonist is True
        assert exp.burst_rate_gbps == 40.0
        assert exp.traffic_seed == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment spec keys"):
            experiment_from_spec({"policy": "idio", "rign": 256})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            experiment_from_spec({"workload": "memcached"})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            experiment_from_spec(["policy"])

    def test_same_spec_same_digest(self):
        cache = ResultCache.__new__(ResultCache)  # digest only, no disk
        cache.version = "test"
        a = experiment_from_spec(dict(SWEEP["experiments"][0]))
        b = experiment_from_spec(dict(SWEEP["experiments"][0]))
        assert cache.digest_for(a) == cache.digest_for(b)


@pytest.fixture()
def daemon(tmp_path):
    """A bound daemon serving on a background thread until shutdown."""
    cache = ResultCache(tmp_path / "cache")
    d = ServeDaemon(tmp_path / "serve.sock", cache)
    d.bind()
    thread = threading.Thread(target=d.serve_forever, daemon=True)
    thread.start()
    yield d
    if thread.is_alive():
        try:
            submit(d.socket_path, {"op": "shutdown"}, timeout=10.0)
        except OSError:
            pass
    thread.join(timeout=30)
    assert not thread.is_alive()
    shutdown_pool()


def _results(lines):
    return {l["name"]: l for l in lines if l.get("event") == "result"}


class TestServeDaemon:
    def test_ping(self, daemon):
        lines = submit(daemon.socket_path, {"op": "ping"})
        assert lines == [{"event": "pong", "version": daemon.cache.version}]

    def test_unknown_op_reports_error(self, daemon):
        lines = submit(daemon.socket_path, {"op": "frobnicate"})
        assert lines[-1]["event"] == "error"
        assert "frobnicate" in lines[-1]["message"]

    def test_bad_spec_reports_error_and_daemon_survives(self, daemon):
        lines = submit(
            daemon.socket_path,
            {"op": "sweep", "experiments": [{"rign": 1}]},
        )
        assert lines[-1]["event"] == "error"
        assert submit(daemon.socket_path, {"op": "ping"})[0]["event"] == "pong"

    def test_second_sweep_served_from_warm_cache(self, daemon):
        n = len(SWEEP["experiments"])

        cold = submit(daemon.socket_path, SWEEP)
        done = cold[-1]
        assert done["event"] == "done"
        assert done["misses"] == n and done["hits"] == 0
        # Live cache progress was streamed before the results.
        cache_kinds = [
            l["kind"] for l in cold if l.get("event") == "cache"
        ]
        assert cache_kinds.count("miss") == n
        assert cache_kinds.count("store") == n

        warm = submit(daemon.socket_path, SWEEP)
        done = warm[-1]
        assert done["hits"] == n and done["misses"] == 0
        assert [
            l["kind"] for l in warm if l.get("event") == "cache"
        ] == ["hit"] * n

        cold_fp = {k: v["fingerprint"] for k, v in _results(cold).items()}
        warm_fp = {k: v["fingerprint"] for k, v in _results(warm).items()}
        assert cold_fp == warm_fp and len(cold_fp) == n

    def test_stats_op(self, daemon):
        submit(daemon.socket_path, SWEEP)
        lines = submit(daemon.socket_path, {"op": "stats"})
        stats = lines[-1]["stats"]
        assert stats["entries"] == len(SWEEP["experiments"])
        assert stats["stores"] == len(SWEEP["experiments"])

    def test_shutdown_op(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        d = ServeDaemon(tmp_path / "s.sock", cache, max_requests=10)
        d.bind()
        thread = threading.Thread(target=d.serve_forever, daemon=True)
        thread.start()
        lines = submit(d.socket_path, {"op": "shutdown"})
        assert lines[-1]["event"] == "bye"
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert not d.socket_path.exists()  # socket cleaned up

    def test_max_requests_backstop(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        d = ServeDaemon(tmp_path / "s.sock", cache, max_requests=2)
        d.bind()
        thread = threading.Thread(target=d.serve_forever, daemon=True)
        thread.start()
        submit(d.socket_path, {"op": "ping"})
        submit(d.socket_path, {"op": "ping"})
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert d.requests_served == 2
