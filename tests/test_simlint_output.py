"""Output-layer tests: baseline, JSON, SARIF, annotations, and the CLI.

The baseline and the machine-readable formats are load-bearing CI
surface (the analyze job uploads the SARIF artifact and gates on the
exit code), so their shapes are pinned here rather than trusted.
"""

import json
from pathlib import Path

import pytest

from tools.simlint import ALL_RULES
from tools.simlint.cli import main as simlint_main
from tools.simlint.output import (
    apply_baseline,
    github_annotations,
    load_baseline,
    to_json,
    to_sarif,
    violation_key,
    write_baseline,
)
from tools.simlint.rules import Violation

FIXTURES = Path(__file__).parent / "fixtures" / "simlint"
TAINT_PKG = str(FIXTURES / "sim011_taint")

V1 = Violation("src/a.py", 10, 4, "SIM011", "taint reaches a sink")
V2 = Violation("src/b.py", 3, 0, "SIM012", "orphan publisher")


def test_violation_key_is_line_free():
    moved = Violation("src/a.py", 99, 0, "SIM011", "taint reaches a sink")
    assert violation_key(V1) == violation_key(moved)
    assert violation_key(V1) != violation_key(V2)


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [V1, V2])
    assert load_baseline(path) == sorted([violation_key(V1), violation_key(V2)])


def test_baseline_rejects_unknown_format(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ValueError):
        load_baseline(path)


def test_apply_baseline_splits_reported_suppressed_stale():
    entries = [violation_key(V1), "src/gone.py::SIM013::fixed long ago"]
    reported, suppressed, stale = apply_baseline([V1, V2], entries)
    assert reported == [V2]
    assert suppressed == [V1]
    assert stale == ["src/gone.py::SIM013::fixed long ago"]


def test_to_json_shape():
    data = json.loads(to_json([V1, V2], suppressed=[V2]))
    assert data["count"] == 2
    assert data["suppressed"] == 1
    assert data["violations"][0] == {
        "path": "src/a.py", "line": 10, "col": 4,
        "rule": "SIM011", "message": "taint reaches a sink",
    }


def test_to_sarif_shape():
    doc = json.loads(to_sarif([V1], ALL_RULES))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    assert {r["id"] for r in run["tool"]["driver"]["rules"]} == set(ALL_RULES)
    result = run["results"][0]
    assert result["ruleId"] == "SIM011"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 10, "startColumn": 5}  # 1-based column


def test_github_annotations_shape():
    (line,) = github_annotations([V1])
    assert line == (
        "::error file=src/a.py,line=10,col=5,"
        "title=simlint SIM011::taint reaches a sink"
    )


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


def test_cli_json_on_bad_fixture(capsys):
    code = simlint_main([TAINT_PKG, "--json", "--no-cache"])
    assert code == 1
    data = json.loads(capsys.readouterr().out)
    assert data["count"] == 4
    assert {v["rule"] for v in data["violations"]} == {"SIM011"}


def test_cli_clean_fixture_exits_zero(capsys):
    code = simlint_main([str(FIXTURES / "sim011_taint_clean"), "--no-cache"])
    assert code == 0
    assert "simlint: clean" in capsys.readouterr().out


def test_cli_sarif_file(tmp_path, capsys):
    out = tmp_path / "report.sarif"
    code = simlint_main([TAINT_PKG, "--no-cache", "--sarif", str(out), "--json"])
    assert code == 1
    doc = json.loads(out.read_text())
    assert len(doc["runs"][0]["results"]) == 4


def test_cli_write_baseline_then_suppress(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert simlint_main(
        [TAINT_PKG, "--no-cache", "--write-baseline", "--baseline", str(baseline)]
    ) == 0
    assert len(load_baseline(baseline)) == 4
    capsys.readouterr()
    # With every finding baselined the gate passes and says so.
    code = simlint_main([TAINT_PKG, "--no-cache", "--baseline", str(baseline)])
    assert code == 0
    assert "4 finding(s) suppressed by baseline" in capsys.readouterr().out


def test_cli_stale_baseline_noted_on_stderr(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, [V1])  # not a real finding in the fixture
    code = simlint_main(
        [str(FIXTURES / "sim011_taint_clean"), "--no-cache", "--baseline", str(baseline)]
    )
    assert code == 0
    assert "stale baseline entr" in capsys.readouterr().err


def test_cli_github_annotations(capsys):
    code = simlint_main([TAINT_PKG, "--no-cache", "--github"])
    assert code == 1
    out = capsys.readouterr().out
    assert out.count("::error file=") == 4


def test_cli_no_program_skips_whole_program_rules(capsys):
    code = simlint_main([TAINT_PKG, "--no-cache", "--no-program"])
    assert code == 0  # the taint fixtures are per-file clean by design
    assert "simlint: clean" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert simlint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule in out
